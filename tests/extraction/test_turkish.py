"""Tests for the Turkish (SporX) language port of the IE module.

The paper's portability claim (§3.3): switching languages requires
only new templates — NER, the two-level analyzer, population and
indexing are untouched.
"""

import pytest

from repro.extraction import InformationExtractor
from repro.extraction.templates_tr import (TURKISH_TEMPLATES,
                                           TURKISH_TRIGGERS)
from repro.soccer import EventKind, SimulatedCrawler, build_teams
from repro.soccer.turkish import TURKISH_TEMPLATES as NARRATION_TEMPLATES


@pytest.fixture(scope="module")
def crawled_tr():
    crawler = SimulatedCrawler(build_teams(), seed=5, language="tr")
    return crawler.crawl_match("Barcelona", "Chelsea", "2009-05-06")


class TestTurkishNarrations:
    def test_every_event_kind_covered(self):
        for kind in EventKind.ALL:
            assert kind in NARRATION_TEMPLATES, kind

    def test_goal_lines_in_turkish(self, crawled_tr):
        goal_lines = [n.text for n in crawled_tr.narrations
                      if "golü attı" in n.text]
        # only when the match has goals; the facts box tells us
        plain_goals = [g for g in crawled_tr.goals if g.kind == "goal"]
        assert len(goal_lines) >= len(plain_goals)

    def test_unknown_language_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCrawler(build_teams(), language="de")


class TestTurkishExtraction:
    def test_full_recovery_like_english(self, crawled_tr):
        """100% extraction on event narrations, as for UEFA text."""
        extractor = InformationExtractor(crawled_tr, language="tr")
        extracted = extractor.extract_all()
        for narration, event in zip(crawled_tr.narrations, extracted):
            if narration.event_id is None:
                assert event.is_unknown, narration.text
            else:
                assert not event.is_unknown, narration.text

    def test_roles_recovered(self, crawled_tr):
        extractor = InformationExtractor(crawled_tr, language="tr")
        extracted = extractor.extract_all()
        fouls = [e for e in extracted if e.kind == EventKind.FOUL]
        assert fouls
        for foul in fouls:
            assert foul.subject and foul.object

    def test_english_analyzer_fails_on_turkish(self, crawled_tr):
        """Cross-language sanity: English templates extract nothing
        from Turkish narrations."""
        extractor = InformationExtractor(crawled_tr, language="en")
        extracted = extractor.extract_all()
        assert all(e.is_unknown for e in extracted)

    def test_unknown_language_rejected(self, crawled_tr):
        with pytest.raises(ValueError):
            InformationExtractor(crawled_tr, language="fr")

    def test_template_kinds_align_with_narration_kinds(self):
        narration_kinds = set(NARRATION_TEMPLATES)
        template_kinds = {t.kind for t in TURKISH_TEMPLATES}
        assert narration_kinds == template_kinds

    def test_turkish_pipeline_end_to_end(self, crawled_tr):
        """The whole pipeline (population, reasoning, indexing,
        search) is language-agnostic downstream of IE."""
        from repro.core import IndexName, SemanticRetrievalPipeline
        from repro.core.indexer import SemanticIndexer
        from repro.population import OntologyPopulator
        from repro.ontology import soccer_ontology
        from repro.reasoning import Reasoner
        from repro.reasoning.rules import soccer_rules
        from repro.core.retrieval import KeywordSearchEngine

        ontology = soccer_ontology()
        extractor = InformationExtractor(crawled_tr, language="tr")
        model = OntologyPopulator(ontology).populate_full(
            crawled_tr, extractor.extract_all())
        inferred = Reasoner(ontology, soccer_rules()).infer(
            model, check_consistency=False)
        index = SemanticIndexer(ontology).build_semantic(
            [inferred.abox], "TR_INF", inferred=True)
        engine = KeywordSearchEngine(index)
        # semantic fields are ontology-derived (English labels), so
        # English keywords work over Turkish-crawled data
        hits = engine.search("goal", limit=5)
        assert hits
        assert "goal" in hits[0].event_type
        # and the stored narration is the Turkish original
        assert any("golü attı" in (h.narration or "")
                   for h in hits)
