"""Tests for NER, the two-level lexical analyzer and the extractor."""

import pytest

from repro.extraction import (DOMAIN_TRIGGERS, InformationExtractor,
                              LexicalAnalyzer, NamedEntityRecognizer,
                              TEMPLATES)
from repro.soccer import EventKind, SimulatedCrawler, build_teams


@pytest.fixture(scope="module")
def crawled():
    return SimulatedCrawler(build_teams(), seed=11).crawl_match(
        "Barcelona", "Chelsea", "2009-05-06")


@pytest.fixture(scope="module")
def ner(crawled):
    return NamedEntityRecognizer(crawled)


class TestNER:
    def test_player_replaced_with_positional_tag(self, ner):
        """The paper's §3.3.1 example: "Iniesta scores!" becomes a
        positional tag of the owning team."""
        tagged = ner.tag("Iniesta scores!")
        assert "Iniesta" not in tagged.text
        assert tagged.text.endswith("scores!")
        tag = tagged.text.split()[0]
        entity = ner.entity(tag)
        assert entity.name == "Iniesta"
        assert entity.team == "Barcelona"

    def test_team_replaced(self, ner):
        tagged = ner.tag("Barcelona take the lead")
        assert tagged.text.startswith("<team1>")

    def test_home_team_is_team1(self, ner):
        tagged = ner.tag("Barcelona against Chelsea")
        assert "<team1>" in tagged.text
        assert "<team2>" in tagged.text
        assert tagged.text.index("<team1>") < tagged.text.index("<team2>")

    def test_possessive_handled(self, ner):
        tagged = ner.tag("Cech saves well from Messi's low drive")
        assert "Messi" not in tagged.text
        assert "'s low drive" in tagged.text

    def test_apostrophe_names(self, ner):
        tagged = ner.tag("Eto'o scores!")
        assert "Eto'o" not in tagged.text

    def test_full_names_recognized(self, ner):
        tagged = ner.tag("Lionel Messi scores!")
        assert "Messi" not in tagged.text
        # full name maps to the same entity as the display name
        tag = tagged.text.split()[0]
        assert ner.entity(tag).name == "Messi"

    def test_unknown_names_left_alone(self, ner):
        tagged = ner.tag("Zidane watches from the stands")
        assert "Zidane" in tagged.text

    def test_lowercase_words_not_tagged(self, ner):
        # "Alex" the Chelsea player must not fire inside other words,
        # and common nouns stay untouched
        tagged = ner.tag("the midfield complex is congested")
        assert "<" not in tagged.text

    def test_substring_names_do_not_shadow_longer(self, ner):
        tagged = ner.tag("Daniel Alves bursts forward")
        # "Daniel Alves" is one mention, not "Daniel" + "Alves"
        assert tagged.text.count("<") == 1


class TestLexicalAnalyzer:
    @pytest.fixture(scope="class")
    def analyzer(self):
        return LexicalAnalyzer()

    def test_level_one_rejects_color_comment(self, ner, analyzer):
        tagged = ner.tag("The fans are in full voice here today.")
        assert not analyzer.passes_level_one(tagged)

    def test_level_one_accepts_event_text(self, ner, analyzer):
        tagged = ner.tag("Messi scores! What a moment.")
        assert analyzer.passes_level_one(tagged)

    def test_keywords_in_order(self, ner, analyzer):
        tagged = ner.tag("Xavi delivers the corner.")
        keywords = analyzer.recognize_keywords(tagged)
        assert keywords.index(tagged.text.split()[0]) \
            < keywords.index("corner")

    def test_level_two_matches_template(self, ner, analyzer):
        tagged = ner.tag("Messi (Barcelona) scores!")
        match = analyzer.analyze(tagged)
        assert match is not None
        assert match.kind == EventKind.GOAL

    def test_level_two_none_for_unmatched(self, ner, analyzer):
        tagged = ner.tag("A corner-ish situation develops slowly")
        # passes level 1 ("corner") but matches no template
        assert analyzer.match_template(tagged) is None

    def test_card_template_beats_foul_wording(self, ner, analyzer):
        tagged = ner.tag("Yellow card for Alex after persistent fouling.")
        match = analyzer.analyze(tagged)
        assert match.kind == EventKind.YELLOW_CARD

    def test_triggers_cover_all_templates(self):
        # every template's surface form must contain at least one
        # level-1 trigger, otherwise level 1 would hide it
        for template in TEMPLATES:
            pattern_text = template.pattern.pattern.lower()
            assert any(
                trigger.split()[0] in pattern_text
                or trigger.replace("-", "\\-").split()[0] in pattern_text
                for trigger in DOMAIN_TRIGGERS), template.pattern.pattern


class TestExtractor:
    @pytest.fixture(scope="class")
    def events(self, crawled):
        return InformationExtractor(crawled).extract_all()

    def test_one_event_per_narration(self, crawled, events):
        assert len(events) == len(crawled.narrations)

    def test_extraction_recovers_ground_truth_100_percent(self):
        """The paper reports 100% extraction success on UEFA text
        (§3.3.2); our templates achieve the same on generated text."""
        crawler = SimulatedCrawler(build_teams(), seed=23)
        crawled = crawler.crawl_match("Real Madrid", "Liverpool",
                                      "2009-02-25")
        extractor = InformationExtractor(crawled)
        extracted = extractor.extract_all()
        for narration, event in zip(crawled.narrations, extracted):
            if narration.event_id is None:
                assert event.is_unknown, narration.text
            else:
                assert not event.is_unknown, narration.text

    def test_roles_filled_for_fouls(self, events):
        fouls = [e for e in events if e.kind == EventKind.FOUL]
        assert fouls
        for foul in fouls:
            assert foul.subject is not None
            assert foul.object is not None
            assert foul.subject_team != foul.object_team

    def test_unknown_events_keep_narration(self, events):
        unknowns = [e for e in events if e.is_unknown]
        assert unknowns
        for unknown in unknowns:
            assert unknown.narration

    def test_subject_position_attribute(self, events):
        saves = [e for e in events if e.kind == EventKind.SAVE]
        assert saves
        for save in saves:
            assert save.attributes.get("subject_position") == "Goalkeeper"

    def test_narration_ids_unique_and_stable(self, events):
        ids = [e.narration_id for e in events]
        assert len(ids) == len(set(ids))
        assert all(id_.split("_n")[-1].isdigit() for id_ in ids)

    def test_minutes_propagated(self, crawled, events):
        for narration, event in zip(crawled.narrations, events):
            assert event.minute == narration.minute
