"""Tests for word sense disambiguation (§8 extension)."""

import pytest

from repro.extraction.wsd import (LeskDisambiguator, Sense,
                                  SenseInventory, default_inventory)
from repro.rdf import SOCCER


@pytest.fixture(scope="module")
def wsd():
    return LeskDisambiguator()


class TestInventory:
    def test_default_covers_classic_traps(self):
        inventory = default_inventory()
        for word in ("cross", "book", "goal", "save", "corner"):
            assert inventory.is_ambiguous(word), word

    def test_signatures_are_normalized(self):
        inventory = SenseInventory({
            "kick": [Sense("kick/1", "kicking the ball",
                           ("Kicks", "BALLS"))],
        })
        [signature] = inventory.signature_sets("kick")
        assert "kick" in signature          # stemmed + lowercased
        assert "ball" in signature

    def test_lookup_matches_inflections(self):
        inventory = default_inventory()
        # "crosses" and "cross" hit the same entry via stemming
        assert inventory.senses("crosses") == inventory.senses("cross")

    def test_unknown_word_has_no_senses(self):
        assert default_inventory().senses("xylophone") == []


class TestDisambiguation:
    def test_cross_as_pass(self, wsd):
        sense = wsd.disambiguate(
            "cross", "he delivers a cross into the box for the header")
        assert sense.sense_id == "cross/pass"
        assert sense.ontology_class == SOCCER.Cross

    def test_cross_as_mood(self, wsd):
        sense = wsd.disambiguate(
            "cross", "the manager was cross and angry with the referee")
        assert sense.sense_id == "cross/angry"
        assert not sense.is_domain_sense

    def test_book_as_caution(self, wsd):
        sense = wsd.disambiguate(
            "book", "the referee will book him, a yellow card surely")
        assert sense.ontology_class == SOCCER.YellowCard

    def test_goal_as_score(self, wsd):
        sense = wsd.disambiguate("goal", "he scores a goal past the keeper")
        assert sense.ontology_class == SOCCER.Goal

    def test_goal_as_ambition(self, wsd):
        sense = wsd.disambiguate(
            "goal", "the club's goal this season is a target of top four")
        assert sense.sense_id == "goal/aim"

    def test_zero_overlap_falls_back_to_first_sense(self, wsd):
        sense = wsd.disambiguate("corner", "lorem ipsum dolor")
        assert sense.sense_id == "corner/kick"   # domain-first ordering

    def test_unknown_word_returns_none(self, wsd):
        assert wsd.disambiguate("xylophone", "any context") is None

    def test_domain_class_helper(self, wsd):
        assert wsd.domain_class(
            "save", "great save by the goalkeeper to deny the shot") \
            == SOCCER.Save
        assert wsd.domain_class(
            "save", "they save money and time") is None

    def test_annotate_query(self, wsd):
        annotated = wsd.annotate_query("great save by the keeper")
        by_word = dict(annotated)
        assert by_word["save"].ontology_class == SOCCER.Save
        assert by_word["keeper"] is None    # not in the inventory

    def test_single_sense_word_short_circuits(self):
        inventory = SenseInventory({
            "offside": [Sense("offside/1", "offside position", ())],
        })
        wsd = LeskDisambiguator(inventory)
        assert wsd.disambiguate("offside", "").sense_id == "offside/1"
