"""Tests for the standard evaluation corpus (paper §4)."""

import pytest

from repro.soccer import (EventKind, PAPER_EVENT_COUNT,
                          PAPER_NARRATION_COUNT, corpus_statistics,
                          standard_corpus)


class TestPublishedTotals:
    """The corpus reproduces the paper's §4 statistics exactly."""

    def test_ten_matches(self, corpus):
        assert len(corpus.matches) == 10

    def test_1182_narrations(self, corpus):
        assert corpus.narration_count == PAPER_NARRATION_COUNT == 1182

    def test_902_events(self, corpus):
        assert corpus.event_count == PAPER_EVENT_COUNT == 902

    def test_statistics_report(self, corpus):
        stats = corpus_statistics(corpus)
        assert stats["matches"] == 10
        assert stats["narrations"] == 1182
        assert stats["events"] == 902
        assert stats["kind_Goal"] > 0


class TestQueryEntities:
    """Every Table 3 / Table 6 query has relevant events (pinned by
    the scripted events + seed choice)."""

    def _count(self, corpus, predicate):
        return sum(1 for m in corpus.matches for e in m.events
                   if predicate(e))

    def test_messi_scores_three(self, corpus):
        # the paper's Q-3 has exactly 3 relevant goals
        count = self._count(
            corpus,
            lambda e: e.kind in (EventKind.GOAL, EventKind.PENALTY_GOAL)
            and e.subject and e.subject.name == "Messi")
        assert count == 3

    def test_alex_booked_twice(self, corpus):
        # the paper's Q-5 has exactly 2 relevant cards
        count = self._count(
            corpus,
            lambda e: e.kind == EventKind.YELLOW_CARD
            and e.subject and e.subject.name == "Alex")
        assert count == 2

    def test_daniel_fouls_florent_and_vice_versa(self, corpus):
        def pair(subject, object_):
            return self._count(
                corpus,
                lambda e: e.kind == EventKind.FOUL
                and e.subject and e.subject.name == subject
                and e.object and e.object.name == object_)
        assert pair("Daniel", "Florent") >= 1
        assert pair("Florent", "Daniel") >= 1

    def test_henry_has_negative_moves(self, corpus):
        negative = (EventKind.MISSED_GOAL, EventKind.OFFSIDE,
                    EventKind.YELLOW_CARD, EventKind.RED_CARD,
                    EventKind.FOUL, EventKind.OWN_GOAL)
        count = self._count(
            corpus,
            lambda e: e.kind in negative
            and e.subject and e.subject.name == "Henry")
        assert count >= 3

    def test_goals_conceded_by_real_madrid(self, corpus):
        goals = (EventKind.GOAL, EventKind.PENALTY_GOAL,
                 EventKind.OWN_GOAL)
        count = self._count(
            corpus,
            lambda e: e.kind in goals and e.object_team == "Real Madrid")
        assert count >= 3

    def test_defence_players_shoot(self, corpus):
        shoots = (EventKind.SHOOT, EventKind.MISSED_GOAL, EventKind.GOAL,
                  EventKind.PENALTY_GOAL, EventKind.OWN_GOAL)
        count = self._count(
            corpus,
            lambda e: e.kind in shoots and e.subject
            and e.subject.position_group == "DefencePlayer")
        assert count >= 10

    def test_barcelona_scores(self, corpus):
        count = self._count(
            corpus,
            lambda e: e.kind in (EventKind.GOAL, EventKind.PENALTY_GOAL)
            and e.team == "Barcelona")
        assert count >= 3


class TestDeterminism:
    def test_same_seed_same_corpus(self, corpus):
        again = standard_corpus()
        assert again.event_count == corpus.event_count
        first_texts = [n.text for c in corpus.crawled
                       for n in c.narrations]
        second_texts = [n.text for c in again.crawled
                        for n in c.narrations]
        assert first_texts == second_texts

    def test_custom_fixtures(self):
        from repro.soccer.names import FIXTURES
        small = standard_corpus(fixtures=FIXTURES[:2],
                                total_narrations=240)
        assert len(small.matches) == 2
        assert small.narration_count == 240

    def test_match_lookup(self, corpus):
        match = corpus.matches[0]
        assert corpus.match_by_id(match.match_id) is match
        with pytest.raises(KeyError):
            corpus.match_by_id("nope")


class TestRoundRobinFixtures:
    def test_requested_count(self):
        from repro.soccer.names import round_robin_fixtures
        assert len(round_robin_fixtures(25)) == 25

    def test_no_team_plays_itself(self):
        from repro.soccer.names import round_robin_fixtures
        for home, away, _, __ in round_robin_fixtures(120):
            assert home != away

    def test_dates_advance_weekly(self):
        from repro.soccer.names import round_robin_fixtures
        fixtures = round_robin_fixtures(3, start_date="2009-09-15")
        dates = [date for _, __, date, ___ in fixtures]
        assert dates == ["2009-09-15", "2009-09-22", "2009-09-29"]

    def test_scales_into_a_corpus(self):
        from repro.soccer.names import round_robin_fixtures
        corpus = standard_corpus(fixtures=round_robin_fixtures(12),
                                 total_narrations=12 * 100)
        assert len(corpus.matches) == 12
        assert corpus.narration_count == 1200

    def test_home_advantage_rotates(self):
        from repro.soccer.names import round_robin_fixtures
        fixtures = round_robin_fixtures(56)   # one full cycle
        pairs = {(home, away) for home, away, _, __ in fixtures}
        # each ordered pairing appears exactly once per cycle
        assert len(pairs) == 56
