"""Tests for the simulator, narration generator and crawler."""

import pytest

from repro.soccer import (EventKind, MatchSimulator, NarrationGenerator,
                          SimulatedCrawler, build_teams)
from repro.soccer.simulator import ScriptedEvent


@pytest.fixture(scope="module")
def teams():
    return build_teams()


def _simulate(teams, seed=1):
    return MatchSimulator(teams, seed=seed).simulate(
        "Barcelona", "Chelsea", "2009-05-06")


class TestSimulator:
    def test_deterministic_for_seed(self, teams):
        a = _simulate(teams, seed=5)
        b = _simulate(build_teams(), seed=5)
        assert [e.kind for e in a.events] == [e.kind for e in b.events]
        assert [e.minute for e in a.events] == [e.minute for e in b.events]

    def test_different_seeds_differ(self, teams):
        a = _simulate(teams, seed=1)
        b = _simulate(teams, seed=2)
        assert [e.event_id for e in a.events] != [e.event_id for e in b.events] \
            or [e.minute for e in a.events] != [e.minute for e in b.events]

    def test_phase_events_present(self, teams):
        match = _simulate(teams)
        kinds = [e.kind for e in match.events]
        assert kinds.count(EventKind.KICK_OFF) == 1
        assert kinds.count(EventKind.HALF_TIME) == 1
        assert kinds.count(EventKind.FULL_TIME) == 1

    def test_events_sorted_by_minute(self, teams):
        match = _simulate(teams)
        minutes = [e.minute for e in match.events]
        assert minutes == sorted(minutes)

    def test_saves_made_by_goalkeepers(self, teams):
        match = _simulate(teams)
        for save in match.events_of_kind(EventKind.SAVE):
            assert save.subject.is_goalkeeper

    def test_goalkeepers_never_score(self, teams):
        for seed in range(5):
            match = _simulate(teams, seed=seed)
            for goal in match.events_of_kind(EventKind.GOAL,
                                             EventKind.PENALTY_GOAL):
                assert not goal.subject.is_goalkeeper

    def test_fouls_cross_team_lines(self, teams):
        match = _simulate(teams)
        for foul in match.events_of_kind(EventKind.FOUL):
            assert foul.subject is not None and foul.object is not None
            subject_team = foul.team
            home, away = match.teams
            object_side = (home if away.name == subject_team
                           else away)
            assert object_side.player_by_name(foul.object.name)

    def test_substitutions_bring_bench_players_on(self, teams):
        match = _simulate(teams)
        for sub in match.events_of_kind(EventKind.SUBSTITUTION):
            team = match.team_by_name(sub.team)
            assert sub.subject in team.substitutes
            assert sub.object in team.starters

    def test_passes_stay_within_team(self, teams):
        match = _simulate(teams)
        for pass_ in match.events_of_kind(EventKind.PASS,
                                          EventKind.LONG_PASS,
                                          EventKind.CROSS):
            team = match.team_by_name(pass_.team)
            assert team.player_by_name(pass_.subject.name)
            assert team.player_by_name(pass_.object.name)
            assert pass_.subject.name != pass_.object.name

    def test_event_ids_unique(self, teams):
        match = _simulate(teams)
        ids = [e.event_id for e in match.events]
        assert len(ids) == len(set(ids))

    def test_scripted_events_injected(self, teams):
        script = [ScriptedEvent(EventKind.FOUL, 38, "Barcelona",
                                subject="Daniel", object_="Florent")]
        match = MatchSimulator(teams, seed=1).simulate(
            "Barcelona", "Chelsea", "2009-05-06", scripted=script)
        fouls = [e for e in match.events_of_kind(EventKind.FOUL)
                 if e.subject.name == "Daniel"
                 and e.object and e.object.name == "Florent"]
        assert len(fouls) == 1
        assert fouls[0].minute == 38

    def test_scripted_unknown_player_raises(self, teams):
        script = [ScriptedEvent(EventKind.FOUL, 38, "Barcelona",
                                subject="Zidane")]
        with pytest.raises(KeyError):
            MatchSimulator(teams, seed=1).simulate(
                "Barcelona", "Chelsea", "2009-05-06", scripted=script)


class TestNarrations:
    def test_goal_narrations_use_scores_not_goal(self, teams):
        """The paper's central lexical gap (§4)."""
        match = _simulate(teams)
        narrator = NarrationGenerator(seed=0)
        for goal in match.events_of_kind(EventKind.GOAL):
            text = narrator.narrate_event(match, goal).text
            assert "scores!" in text

    def test_every_event_kind_has_a_template(self, teams):
        match = _simulate(teams, seed=3)
        narrator = NarrationGenerator(seed=0)
        for event in match.events:
            narration = narrator.narrate_event(match, event)
            assert narration.text
            assert narration.event_id == event.event_id

    def test_padding_to_target(self, teams):
        match = _simulate(teams)
        narrator = NarrationGenerator(seed=0)
        target = len(match.events) + 25
        narrations = narrator.narrate_match(match, total_narrations=target)
        assert len(narrations) == target
        color = [n for n in narrations if n.event_id is None]
        assert len(color) == 25

    def test_narrations_sorted_by_minute(self, teams):
        match = _simulate(teams)
        narrations = NarrationGenerator(seed=0).narrate_match(match)
        minutes = [n.minute for n in narrations]
        assert minutes == sorted(minutes)

    def test_deterministic(self, teams):
        match = _simulate(teams)
        first = NarrationGenerator(seed=9).narrate_match(match, 120)
        second = NarrationGenerator(seed=9).narrate_match(match, 120)
        assert [n.text for n in first] == [n.text for n in second]


class TestCrawler:
    @pytest.fixture(scope="class")
    def crawled(self, teams):
        return SimulatedCrawler(teams, seed=4).crawl_match(
            "Barcelona", "Chelsea", "2009-05-06")

    def test_basic_structure(self, crawled):
        assert crawled.home_team == "Barcelona"
        assert crawled.away_team == "Chelsea"
        assert crawled.stadium == "Camp Nou"

    def test_lineups_complete(self, crawled):
        for team in crawled.teams:
            lineup = crawled.lineup(team)
            assert len(lineup) == 16
            assert sum(1 for e in lineup if e.starter) == 11

    def test_goal_facts_match_score(self, crawled):
        home_goals = sum(
            1 for g in crawled.goals
            if (g.kind != "own goal" and g.team == crawled.home_team)
            or (g.kind == "own goal" and g.team == crawled.away_team))
        assert home_goals == crawled.home_score

    def test_bookings_have_colors(self, crawled):
        for booking in crawled.bookings:
            assert booking.color in ("yellow", "red")

    def test_facts_carry_provenance(self, crawled):
        for fact in (*crawled.goals, *crawled.substitutions,
                     *crawled.bookings):
            assert fact.source_id

    def test_narrations_cover_all_events(self, crawled):
        covered = {n.event_id for n in crawled.narrations
                   if n.event_id is not None}
        fact_ids = {g.source_id for g in crawled.goals}
        assert fact_ids <= covered
