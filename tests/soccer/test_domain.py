"""Tests for the ground-truth domain model and rosters."""

import pytest

from repro.soccer import (EventKind, GroundTruthEvent, Match, Player,
                          Position, POSITION_GROUPS, Team, build_teams)


class TestPlayer:
    def test_goalkeeper_flag(self):
        keeper = Player("Cech", "Petr Cech", Position.GOALKEEPER, 1)
        outfield = Player("Messi", "Lionel Messi", Position.RIGHT_WINGER,
                          10)
        assert keeper.is_goalkeeper
        assert not outfield.is_goalkeeper

    def test_position_groups_cover_all_positions(self):
        positions = [getattr(Position, name) for name in dir(Position)
                     if not name.startswith("_")]
        for position in positions:
            assert position in POSITION_GROUPS

    @pytest.mark.parametrize("position,group", [
        (Position.LEFT_BACK, "DefencePlayer"),
        (Position.CENTRE_BACK, "DefencePlayer"),
        (Position.CENTRAL_MIDFIELDER, "MidfieldPlayer"),
        (Position.STRIKER, "ForwardPlayer"),
        (Position.GOALKEEPER, "Goalkeeper"),
    ])
    def test_position_group(self, position, group):
        player = Player("X", "X Y", position, 7)
        assert player.position_group == group


class TestRosters:
    @pytest.fixture(scope="class")
    def teams(self):
        return build_teams()

    def test_eight_teams(self, teams):
        assert len(teams) == 8

    def test_sixteen_players_each(self, teams):
        for team in teams.values():
            assert len(team.squad) == 16

    def test_eleven_starters_with_one_goalkeeper(self, teams):
        for team in teams.values():
            starters = team.starters
            assert len(starters) == 11
            keepers = [p for p in starters if p.is_goalkeeper]
            assert len(keepers) == 1, team.name

    def test_goalkeeper_accessor(self, teams):
        assert teams["Real Madrid"].goalkeeper.name == "Casillas"
        assert teams["Barcelona"].goalkeeper.name == "Valdes"

    def test_query_entities_present(self, teams):
        """Every player the paper's queries name must exist."""
        assert teams["Barcelona"].player_by_name("Messi")
        assert teams["Barcelona"].player_by_name("Henry")
        assert teams["Barcelona"].player_by_name("Daniel")
        assert teams["Real Madrid"].player_by_name("Ronaldo")
        assert teams["Real Madrid"].player_by_name("Casillas")
        assert teams["Chelsea"].player_by_name("Alex")
        assert teams["Chelsea"].player_by_name("Florent")

    def test_player_lookup_by_full_name(self, teams):
        player = teams["Barcelona"].player_by_name("Lionel Messi")
        assert player is not None and player.name == "Messi"

    def test_unknown_player_is_none(self, teams):
        assert teams["Barcelona"].player_by_name("Zidane") is None

    def test_display_names_unique_within_team(self, teams):
        for team in teams.values():
            names = [p.name for p in team.squad]
            assert len(names) == len(set(names)), team.name

    def test_alex_is_a_defender(self, teams):
        """Q-5/Q-10 interplay: Alex's cards come from a centre back."""
        alex = teams["Chelsea"].player_by_name("Alex")
        assert alex.position_group == "DefencePlayer"


class TestMatchScores:
    def _team(self, name):
        return Team(name=name, city="", stadium="", country="",
                    squad=[Player(f"{name}{i}", f"{name} {i}",
                                  Position.GOALKEEPER if i == 0
                                  else Position.STRIKER, i)
                           for i in range(16)])

    def test_score_computation(self):
        home, away = self._team("H"), self._team("A")
        match = Match("m", home, away, "2009-01-01", "20:45", "S", "R",
                      "Cup")
        scorer_h = home.squad[1]
        scorer_a = away.squad[1]
        match.events = [
            GroundTruthEvent("e1", EventKind.GOAL, 10, team="H",
                             subject=scorer_h, object_team="A"),
            GroundTruthEvent("e2", EventKind.PENALTY_GOAL, 20, team="A",
                             subject=scorer_a, object_team="H"),
            # own goal by home player credits the away side
            GroundTruthEvent("e3", EventKind.OWN_GOAL, 30, team="H",
                             subject=scorer_h, object_team="H"),
        ]
        assert match.home_score == 1
        assert match.away_score == 2

    def test_events_of_kind(self):
        home, away = self._team("H"), self._team("A")
        match = Match("m", home, away, "2009-01-01", "20:45", "S", "R",
                      "Cup")
        match.events = [
            GroundTruthEvent("e1", EventKind.FOUL, 10),
            GroundTruthEvent("e2", EventKind.GOAL, 20),
        ]
        assert [e.event_id for e in match.events_of_kind(EventKind.FOUL)] \
            == ["e1"]

    def test_involves(self):
        player = Player("Messi", "Lionel Messi", Position.STRIKER, 10)
        event = GroundTruthEvent("e", EventKind.FOUL, 5, object=player)
        assert event.involves("Messi")
        assert event.involves("Lionel Messi")
        assert not event.involves("Xavi")
