"""Tests for the rule parser, builtins and forward-chaining engine."""

import pytest

from repro.errors import ParseError, RuleError
from repro.rdf import RDF, Graph, Literal, Namespace, NamespaceManager
from repro.reasoning.rules import (ASSIST_RULE_TEXT, BuiltinCall, Rule,
                                   RuleEngine, TriplePattern, parse_rule,
                                   parse_rules, soccer_namespaces)
from repro.reasoning.rules.ast import RuleTerm
from repro.rdf.term import Variable

EX = Namespace("http://example.org/ns#")


def _ns() -> NamespaceManager:
    manager = NamespaceManager()
    manager.bind("ex", EX)
    return manager


class TestParser:
    def test_simple_rule(self):
        rule = parse_rule(
            "[r1: (?x rdf:type ex:Goal) -> (?x rdf:type ex:Event)]",
            _ns())
        assert rule.name == "r1"
        assert len(rule.body) == 1
        assert len(rule.head) == 1
        assert rule.body[0].predicate == RDF.type

    def test_builtin_call(self):
        rule = parse_rule(
            "[r: noValue(?x rdf:type ex:Assist) (?x rdf:type ex:Pass) "
            "-> (?x ex:flag ex:yes)]", _ns())
        assert isinstance(rule.body[0], BuiltinCall)
        assert rule.body[0].name == "noValue"
        assert len(rule.body[0].args) == 3

    def test_multiple_rules(self):
        rules = parse_rules(
            "[a: (?x ex:p ?y) -> (?y ex:q ?x)]\n"
            "[b: (?x ex:p ?y) -> (?x ex:r ?y)]", _ns())
        assert [r.name for r in rules] == ["a", "b"]

    def test_comments_allowed(self):
        rules = parse_rules(
            "# a comment\n[a: (?x ex:p ?y) -> (?y ex:q ?x)]", _ns())
        assert len(rules) == 1

    def test_literals_in_rules(self):
        rule = parse_rule(
            '[r: (?x ex:minute 10) (?x ex:note "hot") '
            "-> (?x ex:flag 1)]", _ns())
        assert rule.body[0].obj == Literal(10)
        assert rule.body[1].obj == Literal("hot")

    def test_full_iri_terms(self):
        rule = parse_rule(
            "[r: (?x <http://e.org/p> ?y) -> (?y <http://e.org/q> ?x)]")
        assert str(rule.body[0].predicate) == "http://e.org/p"

    def test_assist_rule_parses_verbatim(self):
        """Fig. 6 is executable as printed."""
        rule = parse_rule(ASSIST_RULE_TEXT, soccer_namespaces())
        assert rule.name == "assistRule"
        builtin_names = [a.name for a in rule.body
                         if isinstance(a, BuiltinCall)]
        assert builtin_names == ["noValue", "makeTemp"]
        assert len(rule.head) == 6

    @pytest.mark.parametrize("bad", [
        "[r: (?x ex:p ?y) -> ]",                    # empty head
        "[r: (?x ex:p ?y) (?y ex:q ?x)]",           # no arrow
        "[r: (?x ex:p) -> (?x ex:q ?y)]",           # 2-term triple
        "[r (?x ex:p ?y) -> (?x ex:q ?y)]",         # missing colon
        "[r: (?x ex:p ?y) -> (?x ex:q ?y)",         # missing bracket
        "[r: (?x bareword ?y) -> (?x ex:q ?y)]",    # bare name term
    ])
    def test_malformed_rules_raise(self, bad):
        with pytest.raises(ParseError):
            parse_rules(bad, _ns())


class TestEngine:
    def test_simple_derivation(self):
        rules = parse_rules(
            "[r: (?x rdf:type ex:Goal) -> (?x rdf:type ex:Event)]", _ns())
        g = Graph([(EX.g1, RDF.type, EX.Goal)])
        record = RuleEngine(rules).run(g)
        assert (EX.g1, RDF.type, EX.Event) in g
        assert record.triples_added == 1

    def test_chained_derivation_reaches_fixpoint(self):
        rules = parse_rules(
            "[a: (?x rdf:type ex:A) -> (?x rdf:type ex:B)]\n"
            "[b: (?x rdf:type ex:B) -> (?x rdf:type ex:C)]", _ns())
        g = Graph([(EX.x, RDF.type, EX.A)])
        RuleEngine(rules).run(g)
        assert (EX.x, RDF.type, EX.C) in g

    def test_join_across_patterns(self):
        rules = parse_rules(
            "[r: (?e ex:subject ?p) (?p ex:playsFor ?t) "
            "-> (?e ex:team ?t)]", _ns())
        g = Graph([(EX.e1, EX.subject, EX.messi),
                   (EX.messi, EX.playsFor, EX.barca),
                   (EX.e2, EX.subject, EX.kaka)])
        RuleEngine(rules).run(g)
        assert (EX.e1, EX.team, EX.barca) in g
        assert not list(g.triples((EX.e2, EX.team, None)))

    def test_no_value_guard(self):
        rules = parse_rules(
            "[r: (?x rdf:type ex:Goal) noValue(?x ex:checked ?v) "
            "-> (?x ex:checked ex:yes)]", _ns())
        g = Graph([(EX.g1, RDF.type, EX.Goal),
                   (EX.g2, RDF.type, EX.Goal),
                   (EX.g2, EX.checked, EX.no)])
        RuleEngine(rules).run(g)
        assert (EX.g1, EX.checked, EX.yes) in g
        assert (EX.g2, EX.checked, EX.yes) not in g

    def test_make_temp_deterministic(self):
        rules = parse_rules(
            "[r: (?x rdf:type ex:Goal) makeTemp(?t) "
            "-> (?t ex:derivedFrom ?x)]", _ns())
        g1 = Graph([(EX.g1, RDF.type, EX.Goal)])
        g2 = Graph([(EX.g1, RDF.type, EX.Goal)])
        RuleEngine(rules).run(g1)
        RuleEngine(rules).run(g2)
        assert g1 == g2         # identical temp labels across runs

    def test_make_temp_reaches_fixpoint_without_guard(self):
        rules = parse_rules(
            "[r: (?x rdf:type ex:Goal) makeTemp(?t) "
            "-> (?t rdf:type ex:Marker) (?t ex:derivedFrom ?x)]", _ns())
        g = Graph([(EX.g1, RDF.type, EX.Goal)])
        record = RuleEngine(rules).run(g)
        markers = list(g.subjects(RDF.type, EX.Marker))
        assert len(markers) == 1
        assert record.iterations <= 3

    def test_equal_not_equal(self):
        rules = parse_rules(
            "[r: (?m ex:home ?h) (?m ex:away ?a) (?g ex:team ?t) "
            "equal(?t ?h) -> (?g ex:conceding ?a)]", _ns())
        g = Graph([(EX.m, EX.home, EX.barca),
                   (EX.m, EX.away, EX.chelsea),
                   (EX.goal, EX.team, EX.barca)])
        RuleEngine(rules).run(g)
        assert (EX.goal, EX.conceding, EX.chelsea) in g

    def test_less_than(self):
        rules = parse_rules(
            "[r: (?x ex:minute ?m) lessThan(?m 46) "
            "-> (?x ex:half 1)]", _ns())
        g = Graph([(EX.a, EX.minute, Literal(30)),
                   (EX.b, EX.minute, Literal(80))])
        RuleEngine(rules).run(g)
        assert (EX.a, EX.half, Literal(1)) in g
        assert not list(g.triples((EX.b, EX.half, None)))

    def test_unknown_builtin_raises(self):
        rules = parse_rules(
            "[r: (?x rdf:type ex:Goal) frobnicate(?x) "
            "-> (?x ex:flag 1)]", _ns())
        g = Graph([(EX.g1, RDF.type, EX.Goal)])
        with pytest.raises(RuleError):
            RuleEngine(rules).run(g)

    def test_unbindable_head_variable_rejected_at_construction(self):
        rules = parse_rules(
            "[r: (?x rdf:type ex:Goal) -> (?x ex:p ?never)]", _ns())
        with pytest.raises(RuleError):
            RuleEngine(rules)

    def test_firing_statistics(self):
        rules = parse_rules(
            "[r: (?x rdf:type ex:Goal) -> (?x rdf:type ex:Event)]", _ns())
        g = Graph([(EX.g1, RDF.type, EX.Goal),
                   (EX.g2, RDF.type, EX.Goal)])
        record = RuleEngine(rules).run(g)
        assert record.triples_added == 2
        # two bindings, each adding a triple: two firings, not one
        # per-pass tally (the pre-fix behavior capped every rule at
        # one firing per pass)
        assert record.firings_per_rule.get("r") == 2

    def test_firing_counts_each_productive_instantiation(self):
        """Regression: a rule matching three bindings in ONE pass must
        report three firings (the old counter recorded
        passes-with-additions, i.e. 1)."""
        rules = parse_rules(
            "[r: (?x rdf:type ex:Goal) -> (?x rdf:type ex:Event)]", _ns())
        g = Graph([(EX.g1, RDF.type, EX.Goal),
                   (EX.g2, RDF.type, EX.Goal),
                   (EX.g3, RDF.type, EX.Goal),
                   # already entailed: this binding adds nothing and
                   # must not count as a firing
                   (EX.g3, RDF.type, EX.Event)])
        for runner in (lambda: RuleEngine(rules).run(
                Graph(g)), lambda: RuleEngine(rules).run_naive(Graph(g))):
            record = runner()
            assert record.firings_per_rule.get("r") == 2
            assert record.triples_added == 2
        # and with nothing pre-entailed, all three count
        g2 = Graph([(EX.g1, RDF.type, EX.Goal),
                    (EX.g2, RDF.type, EX.Goal),
                    (EX.g3, RDF.type, EX.Goal)])
        record = RuleEngine(rules).run(g2)
        assert record.firings_per_rule.get("r") == 3
        assert record.iterations == 2  # fire pass + fixpoint pass

    def test_runaway_rule_detected(self):
        # a genuinely unbounded generator: each pass adds a new link
        rules = [Rule(
            name="runaway",
            body=[TriplePattern(Variable("x"), EX.next, Variable("y"))],
            head=[TriplePattern(Variable("y"), EX.next, Variable("y"))],
        )]
        # y next y is idempotent; craft a truly growing one instead:
        rules = parse_rules(
            "[grow: (?x ex:next ?y) makeTemp(?t) -> (?y ex:next ?t)]",
            _ns())
        g = Graph([(EX.a, EX.next, EX.b)])
        with pytest.raises(RuleError):
            RuleEngine(rules, max_iterations=10).run(g)
