"""Parity suite: semi-naive evaluation ≡ naive evaluation.

The semi-naive engine and the worklist realizer are pure
optimizations; the contract (docs/reasoning.md) is that they are
**bit-identical** to their naive oracles — not just the same final
triple set, but the same triple *assertion order*, the same firing
statistics and the same inferred ABoxes down to the append order of
every property-value list.  These tests hold them to it with random
rule bases, random graphs and real simulator match models.
"""

import random
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.extraction import InformationExtractor
from repro.ontology import Individual, soccer_ontology
from repro.population import OntologyPopulator
from repro.rdf import RDF, SOCCER, Graph, Literal, Namespace
from repro.rdf.term import Variable
from repro.reasoning import Reasoner, schema_rules
from repro.reasoning.realization import Realizer
from repro.reasoning.rules import RuleEngine, soccer_rules
from repro.reasoning.rules.ast import BuiltinCall, Rule, TriplePattern

EX = Namespace("http://example.org/ns#")

_PREDICATES = [EX.term(f"p{i}") for i in range(4)]
_CONSTANTS = [EX.term(f"c{i}") for i in range(5)]
_VARIABLES = [Variable(name) for name in "xyz"]


def _random_rules(rng: random.Random, count: int):
    """A terminating random rule base (no makeTemp, so the Herbrand
    universe is finite and every run reaches a fixpoint)."""
    rules = []
    for index in range(count):
        body = []
        bound = []
        for _ in range(rng.randint(1, 3)):
            subject = rng.choice(_VARIABLES + _CONSTANTS[:2])
            obj = rng.choice(_VARIABLES + _CONSTANTS)
            body.append(TriplePattern(subject,
                                      rng.choice(_PREDICATES), obj))
            bound.extend(t for t in (subject, obj)
                         if isinstance(t, Variable))
        if bound and rng.random() < 0.3:
            # anti-monotone guard: exercises the delta re-check rules
            body.append(BuiltinCall("noValue", (
                rng.choice(bound), rng.choice(_PREDICATES))))
        head = []
        for _ in range(rng.randint(1, 2)):
            subject = rng.choice(bound) if bound \
                else rng.choice(_CONSTANTS[:2])
            head.append(TriplePattern(
                subject, rng.choice(_PREDICATES),
                rng.choice(bound + _CONSTANTS)))
        rules.append(Rule(name=f"r{index}", body=body, head=head))
    return rules


def _random_graph(rng: random.Random, size: int) -> Graph:
    graph = Graph()
    for _ in range(size):
        graph.add((rng.choice(_CONSTANTS), rng.choice(_PREDICATES),
                   rng.choice(_CONSTANTS)))
    return graph


def _run_both(rules, graph: Graph):
    """Run both strategies from the same start state; return
    (journal, record) per mode.  The outer journals capture the exact
    assertion sequence — the bit-identity witness."""
    semi_graph, naive_graph = Graph(graph), Graph(graph)
    with semi_graph.journal() as semi_journal:
        semi_record = RuleEngine(rules).run(semi_graph)
    with naive_graph.journal() as naive_journal:
        naive_record = RuleEngine(rules).run_naive(naive_graph)
    assert semi_graph == naive_graph
    assert semi_journal == naive_journal
    assert semi_record.iterations == naive_record.iterations
    assert semi_record.triples_added == naive_record.triples_added
    assert semi_record.firings_per_rule == naive_record.firings_per_rule
    return semi_record, naive_record


class TestRandomizedEngineParity:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_rulebases_match_naive_exactly(self, seed):
        rng = random.Random(seed)
        rules = _random_rules(rng, rng.randint(1, 6))
        graph = _random_graph(rng, rng.randint(0, 25))
        _run_both(rules, graph)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_semi_naive_attempts_no_more_matches(self, seed):
        """The optimization must actually optimize: the delta engine
        never enumerates more candidate bindings than naive."""
        rng = random.Random(seed)
        rules = _random_rules(rng, rng.randint(1, 6))
        graph = _random_graph(rng, rng.randint(5, 25))
        semi, naive = _run_both(rules, graph)
        assert semi.matches_attempted <= naive.matches_attempted


class TestSoccerModelParity:
    """Parity on the real rule base over real simulator models."""

    def _models(self, ontology, corpus):
        populator = OntologyPopulator(ontology)
        models = []
        for crawled in corpus.crawled:
            extracted = InformationExtractor(crawled).extract_all()
            models.append(populator.populate_full(crawled, extracted))
        return models

    def test_full_reasoner_parity_on_simulator_matches(
            self, ontology, small_corpus):
        semi = Reasoner(ontology, soccer_rules())
        naive = Reasoner(ontology, soccer_rules())
        for model in self._models(ontology, small_corpus):
            semi_result = semi.infer(model)
            naive_result = naive.infer(model, naive=True)
            assert semi_result.stats.mode == "semi_naive"
            assert naive_result.stats.mode == "naive"
            # same triples, same assertion order
            assert list(semi_result.graph) == list(naive_result.graph)
            assert semi_result.firing.firings_per_rule \
                == naive_result.firing.firings_per_rule
            assert semi_result.firing.iterations \
                == naive_result.firing.iterations
            assert _abox_snapshot(semi_result.abox) \
                == _abox_snapshot(naive_result.abox)
            assert [str(v) for v in semi_result.violations] \
                == [str(v) for v in naive_result.violations]

    def test_schema_rules_engine_journal_parity(self, ontology):
        rules = list(soccer_rules()) + schema_rules(ontology)
        graph = Graph([
            (SOCCER.term("g1"), RDF.type, SOCCER.Goal),
            (SOCCER.term("g1"), SOCCER.scorerPlayer,
             SOCCER.term("messi")),
            (SOCCER.term("messi"), RDF.type, SOCCER.RightWinger),
            (SOCCER.term("messi"), SOCCER.playsFor,
             SOCCER.term("barca")),
            (SOCCER.term("barca"), RDF.type, SOCCER.Team),
        ])
        semi, _ = _run_both(rules, graph)
        # the delta engine must actually skip work on this input
        assert semi.rules_skipped > 0

    def test_pipeline_output_identical_under_naive_inference(
            self, small_corpus):
        from repro.core import IndexName, SemanticRetrievalPipeline
        default = SemanticRetrievalPipeline().run(small_corpus.crawled)
        naive = SemanticRetrievalPipeline().run(small_corpus.crawled,
                                                naive_inference=True)
        for name in IndexName.BUILT:
            assert default.index(name).to_json() \
                == naive.index(name).to_json()


def _abox_snapshot(abox):
    """Everything order-sensitive downstream consumers can see."""
    return [(individual.uri,
             sorted(str(t) for t in individual.types),
             [(prop, list(values))
              for prop, values in individual.properties.items()])
            for individual in abox.individuals()]


class TestRealizerParity:
    def _abox(self, ontology):
        abox = ontology.spawn_abox("parity")
        match = Individual(SOCCER.term("m1"), {SOCCER.Match})
        barca = Individual(SOCCER.term("Barca"), {SOCCER.Team})
        keeper = Individual(SOCCER.term("GK"), {SOCCER.Goalkeeper})
        scorer = Individual(SOCCER.term("S9"), {SOCCER.Striker})
        goal = Individual(SOCCER.term("g1"), {SOCCER.Goal})
        match.add(SOCCER.homeTeam, barca.uri)
        barca.add(SOCCER.hasGoalkeeper, keeper.uri)
        keeper.add(SOCCER.playsFor, barca.uri)
        scorer.add(SOCCER.playsFor, barca.uri)
        goal.add(SOCCER.scorerPlayer, scorer.uri)
        goal.add(SOCCER.inMatch, match.uri)
        goal.add(SOCCER.inMinute, Literal(10))
        for individual in (match, barca, keeper, scorer, goal):
            abox.add_individual(individual)
        return abox

    def test_worklist_matches_naive_bit_for_bit(self, ontology):
        worklist_abox = self._abox(ontology)
        naive_abox = self._abox(ontology)
        worklist_added = Realizer(ontology).realize(worklist_abox)
        naive_added = Realizer(ontology).realize_naive(naive_abox)
        assert worklist_added == naive_added
        assert _abox_snapshot(worklist_abox) == _abox_snapshot(naive_abox)

    def test_worklist_is_idempotent(self, ontology):
        abox = self._abox(ontology)
        realizer = Realizer(ontology)
        first = realizer.realize(abox)
        assert first > 0
        assert realizer.realize(abox) == 0

    def test_worklist_expands_less_after_first_sweep(self, ontology):
        abox = self._abox(ontology)
        realizer = Realizer(ontology)
        realizer.realize(abox)
        stats = realizer.last_stats
        individuals = len(list(abox.individuals()))
        assert stats["sweeps"] >= 2
        # strictly fewer expansions than naive's sweeps × individuals
        naive = Realizer(ontology)
        naive.realize_naive(self._abox(ontology))
        assert stats["expansions"] \
            < naive.last_stats["sweeps"] * individuals


class TestNoValueDeltaSemantics:
    def test_guard_flip_during_run_matches_naive(self):
        """A noValue guard invalidated mid-run must behave identically
        in both modes (the anti-monotonicity argument in
        builtins.py)."""
        x = Variable("x")
        rules = [
            Rule(name="mark",
                 body=[TriplePattern(x, RDF.type, EX.Goal)],
                 head=[TriplePattern(x, EX.checked, EX.yes)]),
            Rule(name="guarded",
                 body=[TriplePattern(x, RDF.type, EX.Goal),
                       BuiltinCall("noValue", (x, EX.checked))],
                 head=[TriplePattern(x, EX.flagged, EX.yes)]),
        ]
        graph = Graph([(EX.g1, RDF.type, EX.Goal)])
        _run_both(rules, graph)

    def test_chained_derivation_through_guard(self):
        x = Variable("x")
        rules = [
            Rule(name="step1",
                 body=[TriplePattern(x, EX.p, EX.c0)],
                 head=[TriplePattern(x, EX.q, EX.c1)]),
            Rule(name="step2",
                 body=[TriplePattern(x, EX.q, EX.c1),
                       BuiltinCall("noValue", (x, EX.stop))],
                 head=[TriplePattern(x, EX.r, EX.c2)]),
        ]
        graph = Graph([(EX.a, EX.p, EX.c0), (EX.b, EX.p, EX.c0),
                       (EX.b, EX.stop, EX.c0)])
        _run_both(rules, graph)


class TestBuiltinDiagnostics:
    def _rules(self):
        return [Rule(
            name="cmp",
            body=[TriplePattern(Variable("x"), EX.minute, Variable("m")),
                  BuiltinCall("lessThan", (Variable("m"), Literal(46)))],
            head=[TriplePattern(Variable("x"), EX.half, Literal(1))])]

    def _graph(self):
        # two non-numeric objects: still only ONE warning per (rule,
        # builtin) pair
        return Graph([(EX.a, EX.minute, EX.notANumber),
                      (EX.b, EX.minute, EX.alsoNotANumber),
                      (EX.c, EX.minute, Literal(30))])

    def test_non_numeric_argument_warns_once_and_continues(self):
        from repro.reasoning.rules.builtins import RuleWarning
        graph = self._graph()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            RuleEngine(self._rules()).run(graph)
        rule_warnings = [w for w in caught
                         if issubclass(w.category, RuleWarning)]
        assert len(rule_warnings) == 1
        assert "lessThan" in str(rule_warnings[0].message)
        # the numeric binding still fired; the offenders did not
        assert (EX.c, EX.half, Literal(1)) in graph
        assert not list(graph.triples((EX.a, EX.half, None)))

    def test_warning_bumps_observability_counter(self):
        from repro.core.observability import (Observability,
                                              get_observability,
                                              install_observability)
        previous = get_observability()
        install_observability(Observability(metrics=True))
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                RuleEngine(self._rules()).run(self._graph())
            exported = get_observability().metrics.to_json()
            entries = exported["counters"][
                "reason_builtin_warnings_total"]
            flagged = [entry for entry in entries
                       if entry["labels"] == {"rule": "cmp",
                                              "builtin": "lessThan"}]
            assert flagged and flagged[0]["value"] == 1
        finally:
            install_observability(previous)

    def test_strict_mode_raises(self):
        from repro.errors import RuleError
        engine = RuleEngine(self._rules(), strict_builtins=True)
        with pytest.raises(RuleError, match="lessThan"):
            engine.run(self._graph())

    def test_strict_mode_raises_under_naive_too(self):
        from repro.errors import RuleError
        engine = RuleEngine(self._rules(), strict_builtins=True)
        with pytest.raises(RuleError, match="lessThan"):
            engine.run_naive(self._graph())

    def test_unbound_comparison_stays_silent(self):
        rules = [Rule(
            name="opt",
            body=[TriplePattern(Variable("x"), RDF.type, EX.Goal),
                  BuiltinCall("lessThan",
                              (Variable("unbound"), Literal(1)))],
            head=[TriplePattern(Variable("x"), EX.flag, Literal(1))])]
        graph = Graph([(EX.g, RDF.type, EX.Goal)])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            RuleEngine(rules, strict_builtins=True).run(graph)
        assert not caught
        assert not list(graph.triples((EX.g, EX.flag, None)))
