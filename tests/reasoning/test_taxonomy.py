"""Tests for classification (taxonomy closure)."""

import pytest

from repro.errors import OntologyError
from repro.ontology import OntologyBuilder, soccer_ontology
from repro.rdf import SOCCER, Namespace
from repro.reasoning import Taxonomy

EX = Namespace("http://example.org/ns#")


@pytest.fixture
def diamond():
    """A diamond-shaped hierarchy: D ⊑ B, C; B, C ⊑ A."""
    b = OntologyBuilder(EX)
    a = b.klass("A")
    bb = b.klass("B", a)
    cc = b.klass("C", a)
    b.klass("D", bb, cc)
    return Taxonomy(b.build())


class TestClassClosure:
    def test_transitive_superclasses(self, diamond):
        assert diamond.superclasses(EX.D) == {EX.A, EX.B, EX.C}

    def test_include_self(self, diamond):
        assert EX.D in diamond.superclasses(EX.D, include_self=True)

    def test_subclasses(self, diamond):
        assert diamond.subclasses(EX.A) == {EX.B, EX.C, EX.D}

    def test_is_subclass_reflexive(self, diamond):
        assert diamond.is_subclass_of(EX.A, EX.A)

    def test_is_subclass_not_symmetric(self, diamond):
        assert diamond.is_subclass_of(EX.D, EX.A)
        assert not diamond.is_subclass_of(EX.A, EX.D)

    def test_root_has_no_superclasses(self, diamond):
        assert diamond.superclasses(EX.A) == set()

    def test_cycle_detected(self):
        b = OntologyBuilder(EX)
        a = b.klass("A")
        bb = b.klass("B", a)
        # introduce a cycle manually
        b.ontology.get_class(a.uri).parents.add(bb.uri)
        with pytest.raises(OntologyError):
            Taxonomy(b.ontology)


class TestPropertyClosure:
    def test_superproperties(self):
        b = OntologyBuilder(EX)
        b.klass("Thing")
        top = b.object_property("top")
        mid = b.object_property("mid", parents=[top])
        b.object_property("leaf", parents=[mid])
        taxonomy = Taxonomy(b.build())
        assert taxonomy.superproperties(EX.leaf) == {EX.mid, EX.top}
        assert taxonomy.subproperties(EX.top) == {EX.mid, EX.leaf}
        assert taxonomy.is_subproperty_of(EX.leaf, EX.top)
        assert not taxonomy.is_subproperty_of(EX.top, EX.leaf)


class TestLineage:
    """Fig. 5: the inferred class hierarchy of 'Long Pass'."""

    def test_long_pass_lineage(self):
        taxonomy = Taxonomy(soccer_ontology())
        lineage = taxonomy.lineage(SOCCER.LongPass)
        assert lineage[0] == SOCCER.LongPass
        assert SOCCER.Pass in lineage
        assert SOCCER.BallEvent in lineage
        assert lineage[-1] == SOCCER.Event

    def test_lineage_deterministic(self, diamond):
        assert diamond.lineage(EX.D) == diamond.lineage(EX.D)
        # first parent alphabetically: B
        assert diamond.lineage(EX.D) == [EX.D, EX.B, EX.A]
