"""Property-based tests on reasoning invariants (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ontology import Individual, OntClass, Ontology
from repro.rdf import RDF, Graph, Namespace
from repro.reasoning import Realizer, Taxonomy, realize
from repro.reasoning.rules import RuleEngine, parse_rules
from repro.rdf.namespace import NamespaceManager

EX = Namespace("http://example.org/ns#")

_CLASS_NAMES = [f"C{i}" for i in range(8)]


@st.composite
def class_dags(draw):
    """A random acyclic subclass hierarchy over 8 classes.

    Acyclicity by construction: class i may only have parents with a
    smaller index.
    """
    edges = {}
    for index, name in enumerate(_CLASS_NAMES):
        candidates = _CLASS_NAMES[:index]
        parents = draw(st.sets(st.sampled_from(candidates))
                       if candidates else st.just(set()))
        edges[name] = parents
    return edges


def _build_ontology(edges) -> Ontology:
    onto = Ontology()
    for name, parents in edges.items():
        onto.add_class(OntClass(EX.term(name),
                                parents={EX.term(p) for p in parents}))
    return onto


class TestTaxonomyProperties:
    @given(class_dags())
    @settings(max_examples=50)
    def test_closure_is_transitive(self, edges):
        taxonomy = Taxonomy(_build_ontology(edges))
        for name in _CLASS_NAMES:
            uri = EX.term(name)
            for parent in taxonomy.superclasses(uri):
                # every ancestor of my ancestor is my ancestor
                assert taxonomy.superclasses(parent) \
                    <= taxonomy.superclasses(uri)

    @given(class_dags())
    @settings(max_examples=50)
    def test_sub_and_super_are_inverse(self, edges):
        taxonomy = Taxonomy(_build_ontology(edges))
        for name in _CLASS_NAMES:
            uri = EX.term(name)
            for ancestor in taxonomy.superclasses(uri):
                assert uri in taxonomy.subclasses(ancestor)

    @given(class_dags())
    @settings(max_examples=50)
    def test_no_class_is_its_own_strict_ancestor(self, edges):
        taxonomy = Taxonomy(_build_ontology(edges))
        for name in _CLASS_NAMES:
            uri = EX.term(name)
            assert uri not in taxonomy.superclasses(uri)


class TestRealizationProperties:
    @given(class_dags(),
           st.lists(st.sampled_from(_CLASS_NAMES), min_size=1,
                    max_size=4, unique=True))
    @settings(max_examples=50)
    def test_realization_matches_taxonomy_closure(self, edges,
                                                  asserted):
        onto = _build_ontology(edges)
        taxonomy = Taxonomy(onto)
        abox = onto.spawn_abox("t")
        individual = Individual(EX.x,
                                {EX.term(name) for name in asserted})
        abox.add_individual(individual)
        realize(abox, onto, taxonomy)
        expected = set()
        for name in asserted:
            expected |= taxonomy.superclasses(EX.term(name),
                                              include_self=True)
        assert individual.types == expected

    @given(class_dags(),
           st.lists(st.sampled_from(_CLASS_NAMES), min_size=1,
                    max_size=4, unique=True))
    @settings(max_examples=30)
    def test_realization_idempotent(self, edges, asserted):
        onto = _build_ontology(edges)
        abox = onto.spawn_abox("t")
        abox.add_individual(
            Individual(EX.x, {EX.term(name) for name in asserted}))
        realize(abox, onto)
        assert realize(abox, onto) == 0


def _ns() -> NamespaceManager:
    manager = NamespaceManager()
    manager.bind("ex", EX)
    return manager


class TestRuleEngineProperties:
    RULES = parse_rules(
        "[up: (?x ex:linked ?y) -> (?y ex:reachable ?x)]\n"
        "[close: (?x ex:reachable ?y) (?y ex:reachable ?z) "
        "-> (?x ex:reachable ?z)]", _ns())

    @st.composite
    @staticmethod
    def link_graphs(draw):
        nodes = "abcdef"
        edge_list = draw(st.lists(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
            max_size=10))
        g = Graph()
        for source, target in edge_list:
            g.add((EX.term(source), EX.linked, EX.term(target)))
        return g

    @given(link_graphs())
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_input(self, graph):
        """Conclusions over a subgraph are a subset of conclusions
        over the full graph (forward chaining is monotone)."""
        full = graph.copy()
        RuleEngine(self.RULES).run(full)
        # drop one input triple and re-run
        triples = list(graph)
        if not triples:
            return
        reduced_input = Graph(triples[1:])
        reduced = reduced_input.copy()
        RuleEngine(self.RULES).run(reduced)
        inferred_full = {t for t in full
                         if t[1] == EX.reachable}
        inferred_reduced = {t for t in reduced
                            if t[1] == EX.reachable}
        assert inferred_reduced <= inferred_full

    @given(link_graphs())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, graph):
        first = graph.copy()
        second = graph.copy()
        RuleEngine(self.RULES).run(first)
        RuleEngine(self.RULES).run(second)
        assert first == second

    @given(link_graphs())
    @settings(max_examples=40, deadline=None)
    def test_rerun_is_noop(self, graph):
        engine = RuleEngine(self.RULES)
        working = graph.copy()
        engine.run(working)
        record = engine.run(working)
        assert record.triples_added == 0
