"""Tests for realization (type/property closure over individuals)."""

import pytest

from repro.ontology import Individual, OntologyBuilder
from repro.rdf import Literal, Namespace
from repro.reasoning import realize

EX = Namespace("http://example.org/ns#")


@pytest.fixture
def onto():
    b = OntologyBuilder(EX)
    event = b.klass("Event")
    goal = b.klass("Goal", event)
    agent = b.klass("Agent")
    player = b.klass("Player", agent)
    keeper = b.klass("Goalkeeper", player)
    team = b.klass("Team", agent)
    subject = b.object_property("subjectPlayer", domain=event,
                                range=player)
    b.object_property("scorerPlayer", parents=[subject], domain=goal,
                      range=player)
    b.object_property("beatenGoalkeeper", domain=goal, range=keeper)
    plays = b.object_property("playsFor", domain=player, range=team)
    b.object_property("hasPlayer", domain=team, range=player,
                      inverse_of=plays)
    b.has_value(goal, "scorerPlayer", EX.pele)
    b.some_values_from(event, "subjectPlayer", keeper)
    return b.build()


def _abox(onto):
    return onto.spawn_abox("test")


class TestTypeClosure:
    def test_supertypes_added(self, onto):
        abox = _abox(onto)
        abox.add_individual(Individual(EX.cech, {EX.Goalkeeper}))
        realize(abox, onto)
        types = abox.individual(EX.cech).types
        assert types == {EX.Goalkeeper, EX.Player, EX.Agent}

    def test_idempotent(self, onto):
        abox = _abox(onto)
        abox.add_individual(Individual(EX.cech, {EX.Goalkeeper}))
        first = realize(abox, onto)
        second = realize(abox, onto)
        assert first > 0
        assert second == 0


class TestPropertyClosure:
    def test_subproperty_values_propagate(self, onto):
        abox = _abox(onto)
        goal = Individual(EX.goal1, {EX.Goal})
        goal.add(EX.scorerPlayer, EX.messi)
        abox.add_individual(goal)
        abox.add_individual(Individual(EX.messi, {EX.Player}))
        realize(abox, onto)
        assert EX.messi in goal.get(EX.subjectPlayer)


class TestDomainRangeInference:
    def test_domain_types_subject(self, onto):
        abox = _abox(onto)
        thing = Individual(EX.mystery, set())
        thing.add(EX.scorerPlayer, EX.messi)
        abox.add_individual(thing)
        abox.add_individual(Individual(EX.messi, set()))
        realize(abox, onto)
        # scorerPlayer's domain is Goal → the subject is a Goal
        assert EX.Goal in thing.types

    def test_range_types_object(self, onto):
        """The paper's §3.5 example: infer the type of an individual
        that is the value of a range-restricted property."""
        abox = _abox(onto)
        goal = Individual(EX.goal1, {EX.Goal})
        goal.add(EX.beatenGoalkeeper, EX.cech)
        abox.add_individual(goal)
        abox.add_individual(Individual(EX.cech, set()))
        realize(abox, onto)
        cech = abox.individual(EX.cech)
        assert EX.Goalkeeper in cech.types
        assert EX.Player in cech.types       # closure continues upward


class TestInverseCompletion:
    def test_forward_to_inverse(self, onto):
        abox = _abox(onto)
        player = Individual(EX.messi, {EX.Player})
        player.add(EX.playsFor, EX.barca)
        abox.add_individual(player)
        abox.add_individual(Individual(EX.barca, {EX.Team}))
        realize(abox, onto)
        assert EX.messi in abox.individual(EX.barca).get(EX.hasPlayer)

    def test_inverse_to_forward(self, onto):
        abox = _abox(onto)
        team = Individual(EX.barca, {EX.Team})
        team.add(EX.hasPlayer, EX.messi)
        abox.add_individual(team)
        abox.add_individual(Individual(EX.messi, {EX.Player}))
        realize(abox, onto)
        assert EX.barca in abox.individual(EX.messi).get(EX.playsFor)


class TestRestrictionEntailment:
    def test_has_value_recognition(self, onto):
        abox = _abox(onto)
        thing = Individual(EX.event1, set())
        thing.add(EX.scorerPlayer, EX.pele)
        abox.add_individual(thing)
        realize(abox, onto)
        assert EX.Goal in thing.types

    def test_some_values_from_recognition(self, onto):
        abox = _abox(onto)
        thing = Individual(EX.event1, set())
        thing.add(EX.subjectPlayer, EX.cech)
        abox.add_individual(thing)
        abox.add_individual(Individual(EX.cech, {EX.Goalkeeper}))
        realize(abox, onto)
        assert EX.Event in thing.types

    def test_some_values_from_not_triggered_by_wrong_filler(self, onto):
        abox = _abox(onto)
        thing = Individual(EX.event1, set())
        thing.add(EX.subjectPlayer, EX.messi)
        abox.add_individual(thing)
        abox.add_individual(Individual(EX.messi, {EX.Player}))
        realize(abox, onto)
        # messi is not a Goalkeeper, so the someValuesFrom(Event) class
        # is not entailed *by the restriction* — but subjectPlayer's
        # domain being Event still types it.  Check the restriction
        # itself did not fire by removing the domain effect: Player
        # individuals must not become Events.
        assert EX.Event not in abox.individual(EX.messi).types
