"""Tests for the reasoner facade + the soccer rule base (§3.5)."""

import pytest

from repro.ontology import Individual, soccer_ontology
from repro.rdf import RDF, SOCCER, Graph, Literal, URIRef
from repro.reasoning import Reasoner, schema_rules
from repro.reasoning.rules import RuleEngine, soccer_rules


@pytest.fixture(scope="module")
def onto():
    return soccer_ontology()


def _base_match(onto):
    """A minimal match: two teams with keepers, one goal, one pass."""
    abox = onto.spawn_abox("test-match")
    match = Individual(SOCCER.term("m1"), {SOCCER.Match})
    barca = Individual(SOCCER.term("Barca"), {SOCCER.Team})
    chelsea = Individual(SOCCER.term("ChelseaFC"), {SOCCER.Team})
    valdes = Individual(SOCCER.term("ValdesGK"), {SOCCER.Goalkeeper})
    cech = Individual(SOCCER.term("CechGK"), {SOCCER.Goalkeeper})
    messi = Individual(SOCCER.term("Messi10"), {SOCCER.RightWinger})
    xavi = Individual(SOCCER.term("Xavi6"), {SOCCER.CentralMidfielder})
    match.add(SOCCER.homeTeam, barca.uri)
    match.add(SOCCER.awayTeam, chelsea.uri)
    barca.add(SOCCER.hasGoalkeeper, valdes.uri)
    chelsea.add(SOCCER.hasGoalkeeper, cech.uri)
    for player, team in ((valdes, barca), (messi, barca), (xavi, barca),
                         (cech, chelsea)):
        player.add(SOCCER.playsFor, team.uri)
    goal = Individual(SOCCER.term("g1"), {SOCCER.Goal})
    goal.add(SOCCER.scorerPlayer, messi.uri)
    goal.add(SOCCER.inMatch, match.uri)
    goal.add(SOCCER.inMinute, Literal(10))
    pass_ = Individual(SOCCER.term("p1"), {SOCCER.Pass})
    pass_.add(SOCCER.passingPlayer, xavi.uri)
    pass_.add(SOCCER.passReceiver, messi.uri)
    pass_.add(SOCCER.inMatch, match.uri)
    pass_.add(SOCCER.inMinute, Literal(10))
    for individual in (match, barca, chelsea, valdes, cech, messi, xavi,
                       goal, pass_):
        abox.add_individual(individual)
    return abox


@pytest.fixture(scope="module")
def inferred(onto):
    reasoner = Reasoner(onto, soccer_rules())
    return reasoner.infer(_base_match(onto))


class TestSchemaRules:
    def test_rule_count_matches_schema_size(self, onto):
        rules = schema_rules(onto)
        # at least one rule per subclass link + per property with
        # parents/domain/range
        assert len(rules) > 150

    def test_subclass_rule_works(self, onto):
        engine = RuleEngine(schema_rules(onto))
        g = Graph([(SOCCER.term("x"), RDF.type, SOCCER.LongPass)])
        engine.run(g)
        assert (SOCCER.term("x"), RDF.type, SOCCER.Pass) in g
        assert (SOCCER.term("x"), RDF.type, SOCCER.Event) in g


class TestAssistInference:
    """The Fig. 6 rule in context."""

    def test_assist_created(self, inferred):
        assists = list(inferred.abox.individuals(SOCCER.Assist))
        assert len(assists) == 1

    def test_assist_carries_roles(self, inferred):
        [assist] = list(inferred.abox.individuals(SOCCER.Assist))
        passers = assist.get(SOCCER.passingPlayer)
        receivers = assist.get(SOCCER.passReceiver)
        assert any("Xavi" in str(p) for p in passers)
        assert any("Messi" in str(r) for r in receivers)

    def test_assist_links_goal(self, inferred):
        [assist] = list(inferred.abox.individuals(SOCCER.Assist))
        assert assist.get(SOCCER.assistedGoal)

    def test_assist_classified_upward(self, inferred):
        [assist] = list(inferred.abox.individuals(SOCCER.Assist))
        assert SOCCER.PositiveEvent in assist.types
        assert SOCCER.Event in assist.types


class TestScoredToGoalkeeper:
    """Q-6's machinery: which goal was scored past which keeper."""

    def test_beaten_goalkeeper_inferred(self, inferred):
        goal = inferred.abox.individual(SOCCER.term("g1"))
        beaten = goal.get(SOCCER.beatenGoalkeeper)
        assert [str(b) for b in beaten] == [str(SOCCER.term("CechGK"))]

    def test_conceding_team_inferred(self, inferred):
        goal = inferred.abox.individual(SOCCER.term("g1"))
        assert goal.get(SOCCER.concedingTeam) \
            == [SOCCER.term("ChelseaFC")]

    def test_beaten_goalkeeper_is_object_player(self, inferred):
        # beatenGoalkeeper ⊑ objectPlayer: the generic role is closed
        goal = inferred.abox.individual(SOCCER.term("g1"))
        assert SOCCER.term("CechGK") in goal.get(SOCCER.objectPlayer)


class TestOwnGoalAttribution:
    """Own goals invert team credit: the scorer's own side concedes."""

    @pytest.fixture(scope="class")
    def own_goal_inferred(self, onto):
        reasoner = Reasoner(onto, soccer_rules())
        abox = _base_match(onto)
        # Xavi (Barcelona) puts it into his own net in the same match
        own = Individual(SOCCER.term("og1"), {SOCCER.OwnGoal})
        own.add(SOCCER.scorerPlayer, SOCCER.term("Xavi6"))
        own.add(SOCCER.inMatch, SOCCER.term("m1"))
        own.add(SOCCER.inMinute, Literal(70))
        abox.add_individual(own)
        return reasoner.infer(abox)

    def test_conceding_team_is_scorers_team(self, own_goal_inferred):
        own = own_goal_inferred.abox.individual(SOCCER.term("og1"))
        assert own.get(SOCCER.concedingTeam) == [SOCCER.term("Barca")]

    def test_scoring_team_is_opponent(self, own_goal_inferred):
        own = own_goal_inferred.abox.individual(SOCCER.term("og1"))
        assert own.get(SOCCER.scoringTeam) == [SOCCER.term("ChelseaFC")]

    def test_beaten_goalkeeper_is_own_keeper(self, own_goal_inferred):
        own = own_goal_inferred.abox.individual(SOCCER.term("og1"))
        assert own.get(SOCCER.beatenGoalkeeper) \
            == [SOCCER.term("ValdesGK")]

    def test_regular_goal_unaffected(self, own_goal_inferred):
        goal = own_goal_inferred.abox.individual(SOCCER.term("g1"))
        assert goal.get(SOCCER.concedingTeam) \
            == [SOCCER.term("ChelseaFC")]
        assert goal.get(SOCCER.scoringTeam) == [SOCCER.term("Barca")]


class TestTeamAttribution:
    def test_subject_team_from_plays_for(self, inferred):
        goal = inferred.abox.individual(SOCCER.term("g1"))
        assert SOCCER.term("Barca") in goal.get(SOCCER.subjectTeam)

    def test_scoring_team(self, inferred):
        goal = inferred.abox.individual(SOCCER.term("g1"))
        assert SOCCER.term("Barca") in goal.get(SOCCER.scoringTeam)


class TestActorAssertions:
    def test_actor_of_goal(self, inferred):
        messi = inferred.abox.individual(SOCCER.term("Messi10"))
        assert SOCCER.term("g1") in messi.get(SOCCER.actorOfGoal)

    def test_actor_hierarchy_closed(self, inferred):
        messi = inferred.abox.individual(SOCCER.term("Messi10"))
        assert SOCCER.term("g1") in messi.get(SOCCER.actorOfPositiveMove)
        assert SOCCER.term("g1") in messi.get(SOCCER.actorOfMove)


class TestReasonerServices:
    def test_classify(self, onto):
        reasoner = Reasoner(onto)
        supers = reasoner.classify(SOCCER.LongPass)
        assert SOCCER.Pass in supers
        assert SOCCER.Event in supers

    def test_consistent_model(self, inferred):
        assert inferred.consistent

    def test_input_abox_not_mutated(self, onto):
        reasoner = Reasoner(onto, soccer_rules())
        abox = _base_match(onto)
        before = abox.individual(SOCCER.term("g1")).properties.copy()
        reasoner.infer(abox)
        after = abox.individual(SOCCER.term("g1")).properties
        assert set(before) == set(after)

    def test_inference_is_deterministic(self, onto):
        reasoner = Reasoner(onto, soccer_rules())
        first = reasoner.infer(_base_match(onto))
        second = reasoner.infer(_base_match(onto))
        assert first.graph == second.graph
