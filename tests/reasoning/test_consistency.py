"""Tests for the consistency checker (§3.5)."""

import pytest

from repro.errors import ConsistencyError
from repro.ontology import Individual, OntologyBuilder
from repro.rdf import Literal, Namespace
from repro.reasoning import ConsistencyChecker, check_consistency

EX = Namespace("http://example.org/ns#")


@pytest.fixture
def onto():
    b = OntologyBuilder(EX)
    agent = b.klass("Agent")
    person = b.klass("Person", agent)
    team = b.klass("Team", agent)
    player = b.klass("Player", person)
    keeper = b.klass("Goalkeeper", player)
    forward = b.klass("ForwardPlayer", player)
    match = b.klass("Match")
    b.disjoint(person, team)
    b.disjoint(keeper, forward)
    b.object_property("hasGoalkeeper", domain=team, range=keeper)
    b.object_property("homeTeam", domain=match, range=team,
                      functional=True)
    b.data_property("name", domain=agent)
    b.max_cardinality(team, "hasGoalkeeper", 1)
    b.cardinality(match, "homeTeam", 1)
    return b.build()


def _check(onto, *individuals):
    abox = onto.spawn_abox("test")
    for individual in individuals:
        abox.add_individual(individual)
    return check_consistency(abox, onto)


class TestDisjointness:
    def test_direct_violation(self, onto):
        violations = _check(onto, Individual(EX.x, {EX.Person, EX.Team}))
        assert any(v.kind == "disjoint" for v in violations)

    def test_inherited_violation(self, onto):
        # Player ⊑ Person, so Player ∩ Team is also inconsistent
        violations = _check(onto, Individual(EX.x, {EX.Player, EX.Team}))
        assert any(v.kind == "disjoint" for v in violations)

    def test_clean(self, onto):
        assert _check(onto, Individual(EX.x, {EX.Player})) == []


class TestFunctional:
    def test_two_values_flagged(self, onto):
        match = Individual(EX.m, {EX.Match})
        match.add(EX.homeTeam, EX.a)
        match.add(EX.homeTeam, EX.b)
        violations = _check(onto, match,
                            Individual(EX.a, {EX.Team}),
                            Individual(EX.b, {EX.Team}))
        kinds = {v.kind for v in violations}
        assert "functional" in kinds

    def test_single_value_ok(self, onto):
        match = Individual(EX.m, {EX.Match})
        match.add(EX.homeTeam, EX.a)
        violations = _check(onto, match, Individual(EX.a, {EX.Team}))
        assert violations == []


class TestCardinality:
    def test_max_cardinality_violated(self, onto):
        team = Individual(EX.t, {EX.Team})
        team.add(EX.hasGoalkeeper, EX.gk1)
        team.add(EX.hasGoalkeeper, EX.gk2)
        violations = _check(onto, team,
                            Individual(EX.gk1, {EX.Goalkeeper}),
                            Individual(EX.gk2, {EX.Goalkeeper}))
        assert any(v.kind == "maxCardinality" for v in violations)

    def test_exact_cardinality_missing_value(self, onto):
        violations = _check(onto, Individual(EX.m, {EX.Match}))
        assert any(v.kind == "cardinality" for v in violations)


class TestValueConstraints:
    def test_all_values_from_wrong_filler(self, onto):
        """Only goalkeepers allowed in the goalkeeping position."""
        team = Individual(EX.t, {EX.Team})
        team.add(EX.hasGoalkeeper, EX.striker)
        violations = _check(onto, team,
                            Individual(EX.striker, {EX.ForwardPlayer}))
        kinds = {v.kind for v in violations}
        assert "allValuesFrom" in kinds or "range" in kinds

    def test_range_violation_with_literal(self, onto):
        team = Individual(EX.t, {EX.Team})
        team.add(EX.hasGoalkeeper, Literal("not a player"))
        violations = _check(onto, team)
        assert any(v.kind == "range" for v in violations)

    def test_untyped_value_not_flagged(self, onto):
        # a value with no asserted types cannot be proven wrong
        team = Individual(EX.t, {EX.Team})
        team.add(EX.hasGoalkeeper, EX.unknown_person)
        abox = onto.spawn_abox("t")
        abox.add_individual(team)
        assert check_consistency(abox, onto) == []


class TestRaising:
    def test_raise_on_error(self, onto):
        abox = onto.spawn_abox("t")
        abox.add_individual(Individual(EX.x, {EX.Person, EX.Team}))
        with pytest.raises(ConsistencyError):
            ConsistencyChecker(onto).check(abox, raise_on_error=True)

    def test_violation_str_is_informative(self, onto):
        violations = _check(onto, Individual(EX.x, {EX.Person, EX.Team}))
        text = str(violations[0])
        assert "disjoint" in text
        assert "x" in text
