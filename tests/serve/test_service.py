"""Endpoint tests for the HTTP serving layer.

One small segmented build, one :class:`ReproService` on an ephemeral
port, real sockets — these are the contract tests for every endpoint,
error shape and metric the service exposes (docs/serving.md)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import IndexName
from repro.serve import ReproService, ServiceConfig


@pytest.fixture(scope="module")
def service(pipeline, small_corpus, tmp_path_factory):
    directory = tmp_path_factory.mktemp("serve_endpoints")
    pipeline.run_segmented(small_corpus.crawled, directory).close()
    config = ServiceConfig(directory, maintenance=False)
    with ReproService(config) as running:
        yield running


def request(service, method, path, payload=None, timeout=10.0):
    """(status, parsed body) for one request; non-2xx included."""
    data = (json.dumps(payload).encode()
            if payload is not None else None)
    req = urllib.request.Request(
        service.url + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, (json.loads(body) if body else {})


class TestSearch:
    def test_full_application_path(self, service):
        status, body = request(service, "POST", "/search",
                               {"query": "messi goal", "limit": 5})
        assert status == 200
        assert body["count"] == 5
        assert len(body["hits"]) == 5
        assert len(body["snippets"]) == 5
        for hit in body["hits"]:
            assert hit["doc_key"]
            assert isinstance(hit["score"], float)

    def test_spell_correction_surfaces(self, service):
        status, body = request(service, "POST", "/search",
                               {"query": "mesi goal", "limit": 3})
        assert status == 200
        assert body["corrected"]
        assert body["query"] == "messi goal"
        assert body["original_query"] == "mesi goal"

    def test_raw_index_path(self, service):
        status, body = request(
            service, "POST", "/search",
            {"query": "goal", "index": IndexName.TRAD, "limit": 3})
        assert status == 200
        assert body["index"] == IndexName.TRAD
        assert "snippets" not in body

    def test_query_exp_engine_served(self, service):
        status, body = request(
            service, "POST", "/search",
            {"query": "goal", "index": IndexName.QUERY_EXP})
        assert status == 200
        assert body["hits"]

    def test_null_limit_is_unlimited(self, service):
        _, capped = request(service, "POST", "/search",
                            {"query": "goal", "index": IndexName.TRAD,
                             "limit": 1})
        _, full = request(service, "POST", "/search",
                          {"query": "goal", "index": IndexName.TRAD,
                           "limit": None})
        assert capped["count"] == 1
        assert full["count"] > capped["count"]

    def test_unknown_index_rejected(self, service):
        status, body = request(service, "POST", "/search",
                               {"query": "goal", "index": "NOPE"})
        assert status == 400
        assert "NOPE" in body["error"]

    def test_empty_query_rejected(self, service):
        status, _ = request(service, "POST", "/search",
                            {"query": "   "})
        assert status == 400

    def test_bad_limit_rejected(self, service):
        status, _ = request(service, "POST", "/search",
                            {"query": "goal", "limit": 0})
        assert status == 400


class TestErrorShapes:
    def test_invalid_json_body(self, service):
        req = urllib.request.Request(
            service.url + "/search", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(req, timeout=10)
        assert caught.value.code == 400

    def test_unknown_path_404(self, service):
        status, _ = request(service, "POST", "/nope",
                            {"query": "x"})
        assert status == 404

    def test_wrong_method_on_get_endpoint(self, service):
        status, _ = request(service, "POST", "/healthz",
                            {"query": "x"})
        assert status == 404

    def test_put_not_allowed(self, service):
        status, _ = request(service, "PUT", "/search",
                            {"query": "x"})
        assert status == 405


class TestFeedback:
    def test_click_recorded(self, service):
        _, found = request(service, "POST", "/search",
                           {"query": "goal", "limit": 1})
        doc_key = found["hits"][0]["doc_key"]
        status, body = request(service, "POST", "/feedback",
                               {"query": "goal", "doc_key": doc_key})
        assert status == 200
        assert body["recorded"]
        assert body["clicks"] >= 1

    def test_malformed_feedback_rejected(self, service):
        status, _ = request(service, "POST", "/feedback",
                            {"query": "goal"})
        assert status == 400


class TestHealthAndMetrics:
    def test_healthz_shape(self, service):
        status, body = request(service, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0
        for name in IndexName.BUILT:
            assert body["indexes"][name]["doc_count"] > 0
            assert body["indexes"][name]["generation"] >= 1
        assert body["ingest"]["failed"] == 0

    def test_metrics_prometheus_text(self, service):
        with urllib.request.urlopen(service.url + "/metrics",
                                    timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith(
                "text/plain")
            text = resp.read().decode()
        assert "serve_requests_total" in text
        assert "serve_request_seconds" in text


class TestLifecycle:
    def test_start_twice_rejected(self, service):
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="already started"):
            service.start()

    def test_missing_full_inf_rejected(self, tmp_path):
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="FULL_INF"):
            ReproService(ServiceConfig(tmp_path))

    def test_stop_is_graceful_and_idempotent(self, pipeline,
                                             small_corpus, tmp_path):
        pipeline.run_segmented(small_corpus.crawled, tmp_path).close()
        running = ReproService(ServiceConfig(tmp_path,
                                             maintenance=False))
        running.start()
        url = running.url
        status, _ = request(running, "GET", "/healthz")
        assert status == 200
        running.stop()
        running.stop()               # second stop is a no-op
        with pytest.raises((urllib.error.URLError, OSError)):
            urllib.request.urlopen(url + "/healthz", timeout=2.0)


class TestWorkerPool:
    def test_fixed_pool_sized_by_config(self, service):
        server = service._server
        assert len(server._workers) == service.config.http_workers
        assert all(worker.is_alive() for worker in server._workers)

    def test_queue_full_sheds_with_503(self):
        import socket

        from repro.core.observability import MetricsRegistry
        from repro.serve.service import _REJECT_BODY, _PooledHTTPServer

        registry = MetricsRegistry(enabled=True)
        server = _PooledHTTPServer(
            ("127.0.0.1", 0), object, workers=1, queue_size=1,
            metrics=registry)
        try:
            # retire the only worker, then occupy the single queue
            # slot: the next accepted connection must be shed
            server._pool.put(None)
            server._workers[0].join(5.0)
            assert not server._workers[0].is_alive()
            server._pool.put(object())
            left, right = socket.socketpair()
            try:
                server.process_request(left, ("127.0.0.1", 0))
                shed = right.recv(65536)
            finally:
                right.close()
            assert shed.startswith(b"HTTP/1.1 503")
            assert _REJECT_BODY in shed
            assert "serve_rejected_total" in registry.to_prometheus()
            server._pool.get()       # drain the dummy before close
        finally:
            server.server_close()

    def test_concurrent_searches_through_the_pool(self, service):
        import threading

        statuses = []
        lock = threading.Lock()

        def hammer(seed: int) -> None:
            for i in range(5):
                status, body = request(
                    service, "POST", "/search",
                    {"query": "goal", "index": IndexName.FULL_INF,
                     "limit": 1 + (seed + i) % 4})
                with lock:
                    statuses.append((status, body["count"]))

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(statuses) == 30
        assert all(status == 200 for status, _ in statuses)


class TestEncodeOnceResponses:
    def test_repeat_raw_query_serves_cached_bytes(self, service):
        payload = {"query": "corner kick",
                   "index": IndexName.FULL_INF, "limit": 4}
        before = service.response_cache.cache_info()
        status_a, body_a = request(service, "POST", "/search", payload)
        status_b, body_b = request(service, "POST", "/search", payload)
        assert status_a == status_b == 200
        assert body_a == body_b
        after = service.response_cache.cache_info()
        assert after.misses >= before.misses + 1
        assert after.hits >= before.hits + 1

    def test_limit_is_part_of_the_byte_cache_key(self, service):
        base = {"query": "free kick", "index": IndexName.FULL_INF}
        _, one = request(service, "POST", "/search",
                         dict(base, limit=1))
        _, three = request(service, "POST", "/search",
                           dict(base, limit=3))
        assert one["count"] == 1
        assert three["count"] == 3

    def test_facade_path_is_never_byte_cached(self, service):
        before = service.response_cache.cache_info()
        request(service, "POST", "/search",
                {"query": "messi goal", "limit": 2})
        after = service.response_cache.cache_info()
        assert (after.hits + after.misses) \
            == (before.hits + before.misses)

    def test_cached_bytes_match_fresh_encode(self, service):
        payload = {"query": "penalty",
                   "index": IndexName.FULL_INF, "limit": 5}
        first = service.handle_search_bytes(payload)
        second = service.handle_search_bytes(payload)
        assert first == second
        assert json.loads(second) == service.handle_search(payload)

    def test_response_cache_metrics_exposed(self, service):
        request(service, "POST", "/search",
                {"query": "header", "index": IndexName.FULL_INF,
                 "limit": 2})
        import urllib.request as _url
        with _url.urlopen(service.url + "/metrics",
                          timeout=10) as resp:
            text = resp.read().decode()
        assert "serve_response_cache_misses_total" in text
        assert "serve_queue_depth" in text


class TestPostingsCacheUnderServing:
    def test_postings_cache_warms_across_queries(self, service):
        index = service.indexes[IndexName.FULL_INF]
        engine = service.engines[IndexName.FULL_INF]
        engine.search("yellow card", limit=3)
        readers = index._state.readers
        misses = sum(reader.postings_cache_info().misses
                     for reader in readers)
        assert misses > 0
        # same terms again with the result cache out of the way:
        # every postings fetch must now be a cache hit
        engine.searcher.cache.clear()
        before_hits = sum(reader.postings_cache_info().hits
                          for reader in readers)
        engine.search("yellow card", limit=3)
        after_hits = sum(reader.postings_cache_info().hits
                         for reader in readers)
        assert after_hits > before_hits
        assert sum(reader.postings_cache_info().misses
                   for reader in readers) == misses
