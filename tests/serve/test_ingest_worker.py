"""Tests for the ingest worker and background maintenance."""

import time

import pytest

from repro.core import IndexName
from repro.core.fields import F
from repro.search.index.segments import SegmentedIndex
from repro.serve.ingest import IngestWorker, MaintenanceThread
from repro.soccer.crawler import SimulatedCrawler


@pytest.fixture
def segmented(pipeline, small_corpus, tmp_path):
    result = pipeline.run_segmented(small_corpus.crawled, tmp_path)
    yield result
    result.close()


@pytest.fixture
def new_match(small_corpus):
    """A match that is NOT in the built corpus."""
    crawler = SimulatedCrawler(small_corpus.teams, seed=4242)
    names = sorted(small_corpus.teams)
    return crawler.crawl_match(names[2], names[3], "2011_04_02")


def wait_for(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestIngestWorker:
    def test_posted_match_becomes_searchable(self, segmented,
                                             new_match):
        worker = IngestWorker(segmented.directories,
                              segmented.indexes)
        index = segmented.index(IndexName.FULL_INF)
        before_docs = index.doc_count
        before_generation = index.generation
        worker.start()
        try:
            worker.submit(new_match)
            assert wait_for(lambda: worker.ingested == 1)
        finally:
            assert worker.stop()
        assert worker.failed == 0
        assert index.generation > before_generation
        assert index.doc_count > before_docs
        # the new match's documents are really there, keyed by its id
        keys = [index.stored_value(doc_id, F.DOC_KEY)
                for doc_id in range(before_docs, index.doc_count)]
        assert all(key.startswith(new_match.match_id) for key in keys)

    def test_every_variant_gets_the_delta(self, segmented, new_match):
        worker = IngestWorker(segmented.directories,
                              segmented.indexes)
        before = {name: segmented.index(name).doc_count
                  for name in IndexName.BUILT}
        worker.start()
        try:
            worker.submit(new_match)
            assert wait_for(lambda: worker.ingested == 1)
        finally:
            assert worker.stop()
        for name in IndexName.BUILT:
            assert segmented.index(name).doc_count > before[name], name

    def test_stop_drains_queued_matches(self, segmented, small_corpus):
        crawler = SimulatedCrawler(small_corpus.teams, seed=77)
        names = sorted(small_corpus.teams)
        worker = IngestWorker(segmented.directories,
                              segmented.indexes)
        worker.start()
        for number in range(3):
            worker.submit(crawler.crawl_match(
                names[number], names[number + 3],
                f"2011_05_0{number + 1}"))
        assert worker.stop(drain=True, timeout=120.0)
        assert worker.ingested == 3
        assert worker.queue_depth == 0

    def test_failure_is_counted_not_fatal(self, segmented, new_match):
        worker = IngestWorker(segmented.directories,
                              segmented.indexes)
        worker.start()
        try:
            worker.submit("not a crawled match")   # type: ignore
            assert wait_for(lambda: worker.failed == 1)
            worker.submit(new_match)               # worker survived
            assert wait_for(lambda: worker.ingested == 1)
        finally:
            assert worker.stop()
        assert worker.stats()["last_error"]


class TestMaintenance:
    def test_run_once_merges_small_segments(self, pipeline,
                                            small_corpus, tmp_path):
        result = pipeline.run_segmented(small_corpus.crawled,
                                        tmp_path, segment_size=1)
        try:
            docs_before = {name: result.index(name).doc_count
                           for name in IndexName.BUILT}
            segments_before = sum(result.index(name).segment_count
                                  for name in IndexName.BUILT)
            maintenance = MaintenanceThread(
                result.directories, result.indexes, merge_factor=2)
            merges = maintenance.run_once()
            # the tiered policy only collapses runs of same-tier
            # neighbours, so not every variant merges — but with
            # per-match segments at factor 2 some run somewhere must.
            assert merges > 0
            assert sum(result.index(name).segment_count
                       for name in IndexName.BUILT) < segments_before
            for name in IndexName.BUILT:
                assert result.index(name).doc_count \
                    == docs_before[name], name
        finally:
            result.close()

    def test_background_thread_refreshes_handles(self, pipeline,
                                                 small_corpus,
                                                 tmp_path, new_match):
        result = pipeline.run_segmented(small_corpus.crawled, tmp_path)
        try:
            # a second handle over the same directory: the committing
            # side refreshes its own handles, maintenance must catch
            # this one up.
            late = SegmentedIndex(
                result.directories[IndexName.FULL_INF])
            generation = late.generation
            worker = IngestWorker(result.directories, result.indexes)
            maintenance = MaintenanceThread(
                result.directories, {IndexName.FULL_INF: late},
                interval=0.1)
            worker.start()
            maintenance.start()
            try:
                worker.submit(new_match)
                assert wait_for(
                    lambda: late.generation > generation, timeout=15.0)
            finally:
                assert worker.stop()
                assert maintenance.stop()
            late.close()
        finally:
            result.close()
