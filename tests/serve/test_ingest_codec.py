"""Tests for the ingest wire codec (CrawledMatch ↔ JSON)."""

import json

import pytest

from repro.errors import CrawlError
from repro.serve import match_from_json, match_to_json


@pytest.fixture(scope="module")
def crawled(small_corpus):
    return small_corpus.crawled[0]


class TestRoundTrip:
    def test_full_round_trip(self, crawled):
        wire = json.loads(json.dumps(match_to_json(crawled)))
        back = match_from_json(wire)
        assert back.match_id == crawled.match_id
        assert back.teams == crawled.teams
        assert (back.home_score, back.away_score) \
            == (crawled.home_score, crawled.away_score)
        assert back.lineups == crawled.lineups
        assert back.goals == crawled.goals
        assert back.substitutions == crawled.substitutions
        assert back.bookings == crawled.bookings
        assert len(back.narrations) == len(crawled.narrations)
        for ours, theirs in zip(back.narrations, crawled.narrations):
            assert (ours.minute, ours.text, ours.event_id) \
                == (theirs.minute, theirs.text, theirs.event_id)

    def test_round_trip_survives_reingestion(self, crawled):
        """The codec is idempotent: to_json(from_json(x)) == x."""
        wire = match_to_json(crawled)
        assert match_to_json(match_from_json(wire)) == wire

    def test_colour_commentary_keeps_null_event_id(self, crawled):
        wire = match_to_json(crawled)
        colour = [line for line in wire["narrations"]
                  if line["event_id"] is None]
        assert colour            # every match has padding lines
        back = match_from_json(wire)
        assert sum(1 for line in back.narrations
                   if line.event_id is None) == len(colour)


class TestRejection:
    def test_non_object_payload(self):
        with pytest.raises(CrawlError):
            match_from_json([1, 2, 3])

    def test_missing_required_key(self, crawled):
        wire = match_to_json(crawled)
        del wire["match_id"]
        with pytest.raises(CrawlError, match="match_id"):
            match_from_json(wire)

    def test_no_narrations_fails_validation(self, crawled):
        wire = match_to_json(crawled)
        wire["narrations"] = []
        with pytest.raises(CrawlError, match="no narrations"):
            match_from_json(wire)

    def test_malformed_fact_minute(self, crawled):
        wire = match_to_json(crawled)
        wire["narrations"][0]["minute"] = "not-a-minute"
        with pytest.raises(CrawlError, match="malformed"):
            match_from_json(wire)

    def test_identical_teams_fails_validation(self, crawled):
        wire = match_to_json(crawled)
        wire["away_team"] = wire["home_team"]
        with pytest.raises(CrawlError, match="identical teams"):
            match_from_json(wire)
