"""Integration tests asserting the paper's headline claims.

These are the reproduction's acceptance tests: the *shape* of every
published result (who wins, where, by how much) must hold on the
simulated corpus.  Exact percentages differ from the paper (different
underlying data); EXPERIMENTS.md records both sides.
"""

import statistics

import pytest

from repro.core import IndexName


@pytest.fixture(scope="module")
def table4(harness):
    return harness.table4()


@pytest.fixture(scope="module")
def table5(harness):
    return harness.table5()


@pytest.fixture(scope="module")
def table6(harness):
    return harness.table6()


def ap(table, query_id, system):
    return table.get(query_id, system).average_precision


class TestTable4Shape:
    """Evaluation results (§4, Table 4)."""

    def test_trad_fails_on_goal_query(self, table4):
        """Narrations say 'scores!', not 'goal' → TRAD near zero."""
        assert ap(table4, "Q-1", "TRAD") < 0.10

    def test_semantic_indexes_perfect_on_goal_query(self, table4):
        for system in ("BASIC_EXT", "FULL_EXT", "FULL_INF"):
            assert ap(table4, "Q-1", system) == pytest.approx(1.0)

    def test_punishment_needs_inference(self, table4):
        """Q-4: only classification knows cards are punishments."""
        assert ap(table4, "Q-4", "TRAD") == 0.0
        assert ap(table4, "Q-4", "BASIC_EXT") == 0.0
        assert ap(table4, "Q-4", "FULL_EXT") == 0.0
        assert ap(table4, "Q-4", "FULL_INF") > 0.95

    def test_scored_to_casillas_needs_rules(self, table4):
        """Q-6: the beaten-goalkeeper rule."""
        assert ap(table4, "Q-6", "FULL_INF") > 0.9
        assert ap(table4, "Q-6", "FULL_INF") \
            > ap(table4, "Q-6", "FULL_EXT") + 0.3

    def test_negative_moves_need_property_hierarchy(self, table4):
        """Q-7: actorOfX ⊑ actorOfNegativeMove."""
        assert ap(table4, "Q-7", "FULL_INF") > 0.85
        assert ap(table4, "Q-7", "FULL_INF") \
            > max(ap(table4, "Q-7", s)
                  for s in ("TRAD", "BASIC_EXT", "FULL_EXT")) + 0.3

    def test_defence_players_need_classification(self, table4):
        """Q-10: LeftBack ⊑ DefencePlayer is inferred knowledge."""
        assert ap(table4, "Q-10", "TRAD") < 0.05
        assert ap(table4, "Q-10", "BASIC_EXT") < 0.05
        assert 0.05 < ap(table4, "Q-10", "FULL_EXT") < 0.7
        assert ap(table4, "Q-10", "FULL_INF") > 0.9

    def test_simple_name_query_similar_everywhere(self, table4):
        """Q-8: a bare player name gains little from semantics, and
        never drops below the traditional baseline."""
        values = [ap(table4, "Q-8", s)
                  for s in ("TRAD", "BASIC_EXT", "FULL_EXT", "FULL_INF")]
        assert max(values) - min(values) < 0.25
        assert ap(table4, "Q-8", "FULL_INF") \
            >= ap(table4, "Q-8", "TRAD") - 0.05

    def test_map_ladder_monotone(self, table4):
        """Each index improves on its predecessor (§4's conclusion)."""
        maps = [table4.mean_ap(s)
                for s in ("TRAD", "BASIC_EXT", "FULL_EXT", "FULL_INF")]
        assert maps[0] < maps[1] < maps[2] < maps[3]

    def test_full_inf_never_below_trad(self, table4):
        """'our approach guarantees at least the performance of
        traditional approach in the worst case' (§4)."""
        for query_id in table4.query_ids():
            assert ap(table4, query_id, "FULL_INF") \
                >= ap(table4, query_id, "TRAD") - 0.05, query_id

    def test_relevant_counts_constant_across_systems(self, table4):
        for query_id in table4.query_ids():
            counts = {table4.get(query_id, s).relevant_count
                      for s in table4.systems}
            assert len(counts) == 1


class TestTable5Shape:
    """Query expansion comparison (§5, Table 5)."""

    def test_expansion_beats_trad_on_expandable_queries(self, table5):
        """Q-1 ('goal'→'scores') and Q-4 ('punishment'→subclasses)."""
        assert ap(table5, "Q-1", "QUERY_EXP") \
            > ap(table5, "Q-1", "TRAD") + 0.1
        assert ap(table5, "Q-4", "QUERY_EXP") \
            > ap(table5, "Q-4", "TRAD") + 0.3

    def test_expansion_never_beats_semantic_indexing(self, table5):
        """'it cannot exceed the performance of semantic indexing'."""
        for query_id in table5.query_ids():
            assert ap(table5, query_id, "QUERY_EXP") \
                <= ap(table5, query_id, "FULL_INF") + 1e-9, query_id

    def test_expansion_map_between_trad_and_full_inf(self, table5):
        assert table5.mean_ap("TRAD") < table5.mean_ap("QUERY_EXP") \
            < table5.mean_ap("FULL_INF")

    def test_some_queries_degrade_under_expansion(self, table5):
        """'Some queries are even deteriorated … because of the false
        positives introduced by the extra query terms.'"""
        degraded = [q for q in table5.query_ids()
                    if ap(table5, q, "QUERY_EXP")
                    < ap(table5, q, "TRAD") - 1e-9]
        assert degraded


class TestTable6Shape:
    """Phrasal expressions (§6, Table 6)."""

    def test_phrasal_index_perfect_on_all_queries(self, table6):
        for query_id in table6.query_ids():
            assert ap(table6, query_id, "PHR_EXP") \
                == pytest.approx(1.0), query_id

    def test_full_inf_confuses_subject_and_object(self, table6):
        """P-2 names both roles; the bag-of-words index cannot tell
        who fouled whom."""
        assert ap(table6, "P-2", "FULL_INF") < 0.9

    def test_phrasal_never_worse(self, table6):
        for query_id in table6.query_ids():
            assert ap(table6, query_id, "PHR_EXP") \
                >= ap(table6, query_id, "FULL_INF") - 1e-9


class TestCorpusClaims:
    def test_published_corpus_statistics(self, corpus):
        """§4: '10 UEFA matches, containing a total of 1182 narrations.
        Out of these narrations, our IE module was able to extract 902
        events.'"""
        assert len(corpus.matches) == 10
        assert corpus.narration_count == 1182
        assert corpus.event_count == 902

    def test_ie_extracts_exactly_the_events(self, corpus):
        from repro.extraction import extract_corpus_events
        extracted = extract_corpus_events(corpus.crawled)
        typed = [e for e in extracted if not e.is_unknown]
        assert len(typed) == 902


class TestScalabilityClaims:
    def test_offline_inference_per_match_independent(self, corpus,
                                                     pipeline_result):
        """§3.5: 'the time needed for the inferencing of a soccer game
        becomes independent of the total number of games' — no trend
        across the ten sequentially-inferred matches.  Medians, not
        means: per-match inference is ~20ms, so a single GC or
        scheduler pause (~100ms, landing on an arbitrary match) would
        dominate a mean and say nothing about a trend."""
        times = pipeline_result.inference_seconds
        first_half = statistics.median(times[:5])
        second_half = statistics.median(times[5:])
        assert second_half < first_half * 3

    def test_query_time_is_milliseconds(self, pipeline_result):
        """§2: 'semantic indexing … makes instant query answering
        possible' (vs the 2-minute dialog systems)."""
        import time
        engine = pipeline_result.engine(IndexName.FULL_INF)
        started = time.perf_counter()
        for _ in range(10):
            engine.search("goal scored to casillas")
        elapsed = (time.perf_counter() - started) / 10
        assert elapsed < 0.25
