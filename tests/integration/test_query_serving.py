"""Serving-path parity on the golden query sets.

The Table 4–6 numbers are pinned in test_golden_numbers.py; these
tests pin the *serving machinery* underneath them: for every golden
query, the pruned top-k path, the query result cache, and the binary
on-disk format must all reproduce the exhaustive-scoring ranking bit
for bit.  Any divergence here would silently corrupt the tables.
"""

from __future__ import annotations

import pytest

from repro.core import IndexName, KeywordSearchEngine
from repro.core.phrasal import PhrasalSearchEngine
from repro.evaluation.queries import TABLE3_QUERIES, TABLE6_QUERIES
from repro.search.index import load_index, save_index


def ranking(hits):
    return [(hit.doc_key, hit.score) for hit in hits]


@pytest.fixture(scope="module")
def keyword_engine(pipeline_result):
    return pipeline_result.engines[IndexName.FULL_INF]


class TestPrunedGoldenParity:
    """search(limit=k) == exhaustive oracle on every Table 3 query."""

    @pytest.mark.parametrize("query_id",
                             [q.query_id for q in TABLE3_QUERIES])
    @pytest.mark.parametrize("limit", [1, 10])
    def test_table3_pruned_matches_exhaustive(self, keyword_engine,
                                              query_id, limit):
        query = next(q for q in TABLE3_QUERIES
                     if q.query_id == query_id)
        tree = keyword_engine.build_query(query.keywords)
        searcher = keyword_engine.searcher
        pruned = searcher.search(tree, limit)
        oracle = searcher.search_exhaustive(tree, limit)
        assert [(h.doc_id, h.score) for h in pruned] \
            == [(h.doc_id, h.score) for h in oracle]
        assert pruned.total_hits == oracle.total_hits

    def test_cache_on_and_off_agree(self, pipeline_result):
        index = pipeline_result.index(IndexName.FULL_INF)
        cached = KeywordSearchEngine(index)
        uncached = KeywordSearchEngine(index, cache_size=0)
        for query in TABLE3_QUERIES:
            first = ranking(cached.search(query.keywords, limit=10))
            second = ranking(cached.search(query.keywords, limit=10))
            cold = ranking(uncached.search(query.keywords, limit=10))
            assert first == second == cold
        info = cached.cache_info()
        assert info.hits == len(TABLE3_QUERIES)
        assert uncached.cache_info().currsize == 0


class TestBinaryFormatGoldenParity:
    """JSON and binary on-disk forms serve identical rankings."""

    @pytest.fixture(scope="class")
    def reloaded(self, pipeline_result, tmp_path_factory):
        directory = tmp_path_factory.mktemp("indexes")
        out = {}
        for name in (IndexName.FULL_INF, IndexName.PHR_EXP):
            index = pipeline_result.index(name)
            save_index(index, directory / "json", format="json")
            save_index(index, directory / "binary", format="binary")
            out[name] = (load_index(directory / "json", name),
                         load_index(directory / "binary", name))
        return out

    def test_table3_rankings_identical(self, reloaded):
        from_json, from_binary = reloaded[IndexName.FULL_INF]
        engine_json = KeywordSearchEngine(from_json)
        engine_binary = KeywordSearchEngine(from_binary)
        for query in TABLE3_QUERIES:
            assert ranking(engine_json.search(query.keywords)) \
                == ranking(engine_binary.search(query.keywords))

    def test_table6_rankings_identical(self, reloaded):
        from_json, from_binary = reloaded[IndexName.PHR_EXP]
        engine_json = PhrasalSearchEngine(from_json)
        engine_binary = PhrasalSearchEngine(from_binary)
        for query in TABLE6_QUERIES:
            assert ranking(engine_json.search(query.keywords)) \
                == ranking(engine_binary.search(query.keywords))

    def test_round_trip_preserves_index_json(self, reloaded):
        from_json, from_binary = reloaded[IndexName.FULL_INF]
        assert from_binary.to_json() == from_json.to_json()
