"""The README's code snippets must actually run."""

import re
from pathlib import Path

import pytest

README = Path(__file__).parents[2] / "README.md"


class TestReadmeSnippets:
    def test_quickstart_snippet_runs(self, corpus, pipeline_result):
        """Execute the README quickstart against the session pipeline
        (substituting the expensive build with the shared fixture)."""
        engine = pipeline_result.engine("FULL_INF")
        hits = list(engine.search("goal scored to casillas", limit=5))
        assert len(hits) == 5
        for hit in hits:
            assert hit.score > 0
            assert hit.event_type

    def test_quickstart_code_block_is_valid_python(self):
        text = README.read_text(encoding="utf-8")
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README lost its python quickstart"
        for block in blocks:
            compile(block, "<README>", "exec")

    def test_documented_cli_commands_parse(self):
        from repro.cli import build_parser
        text = README.read_text(encoding="utf-8")
        parser = build_parser()
        commands = re.findall(r"^python -m repro (.+)$", text,
                              re.MULTILINE)
        assert commands
        import shlex
        for command in commands:
            # drop trailing shell comments from the doc lines
            command = command.split("#")[0].strip()
            args = parser.parse_args(shlex.split(command))
            assert args.command

    def test_documented_examples_exist(self):
        text = README.read_text(encoding="utf-8")
        for match in re.finditer(r"`examples/([\w.]+\.py)`", text):
            path = README.parent / "examples" / match.group(1)
            assert path.exists(), match.group(1)

    def test_mentioned_counts_match_reality(self, corpus):
        text = README.read_text(encoding="utf-8")
        assert "1182" in text and "902" in text
        assert corpus.narration_count == 1182
        assert corpus.event_count == 902
