"""Golden Tables 4–6 through the load harness path.

The paper's numbers were pinned single-threaded (test_golden_numbers)
and already proven backend-invariant (test_segmented_serving).  This
suite closes the last gap: the same tables produced *under
concurrency* — every query replayed through the open-loop driver at
8 threads, repeated so requests genuinely interleave — must come out
cell-for-cell identical on both the monolithic and the segmented
backend.  A thread-safety bug anywhere in the serving stack (cache,
pinning, scatter-gather) shows up here as a moved number.
"""

from __future__ import annotations

import pytest

from repro.core import IndexName
from repro.evaluation import EvaluationHarness
from repro.evaluation.harness import TableResult
from repro.evaluation.queries import TABLE3_QUERIES, TABLE6_QUERIES
from repro.loadgen import OpenLoopDriver, fixed_rate_arrivals

DRIVER_THREADS = 8
REPEAT = 3


@pytest.fixture(scope="module")
def segmented_result(pipeline, corpus, tmp_path_factory):
    result = pipeline.run_segmented(
        corpus.crawled, tmp_path_factory.mktemp("load_parity"),
        segment_size=2)
    yield result
    result.close()


@pytest.fixture(scope="module")
def segmented_harness(corpus, segmented_result):
    return EvaluationHarness(corpus, segmented_result)


def table_via_driver(harness, queries, systems, threads=DRIVER_THREADS,
                     repeat=REPEAT):
    """Reproduce ``harness.run_table`` with every search routed
    through the open-loop driver: each query fired ``repeat`` times
    under ``threads`` concurrent workers, repeats asserted identical
    (a query that raced a neighbour and came back different fails
    right here), then scored with the harness's own judge."""
    table = TableResult(systems=list(systems))
    for system in systems:
        search = harness._search_fn(system)
        keywords = [query.keywords for query in queries] * repeat
        load = OpenLoopDriver(
            search, keywords,
            fixed_rate_arrivals(500.0, len(keywords)),
            threads=threads, limit=None, capture_results=True,
            name=f"parity-{system}").run()
        assert load.errors == 0, load.error_samples
        assert load.completed == len(keywords)

        captured = {}
        for record in load.records:
            hits = [(hit.doc_key, hit.score) for hit in record.result]
            if record.query in captured:
                assert captured[record.query][0] == hits, \
                    f"concurrent repeats diverged for {record.query!r}"
            else:
                captured[record.query] = (hits, record.result)
        for query in queries:
            table.rows.setdefault(query.query_id, {})[system] = \
                harness.evaluate_query(
                    query, system,
                    lambda kw: captured[kw][1])
    return table


def assert_tables_equal(ours, reference):
    assert ours.systems == reference.systems
    assert set(ours.rows) == set(reference.rows)
    for query_id, row in reference.rows.items():
        for system, cell in row.items():
            mine = ours.rows[query_id][system]
            assert mine.average_precision == cell.average_precision, \
                (query_id, system)
            assert mine.recall == cell.recall, (query_id, system)
            assert mine.relevant_count == cell.relevant_count
            assert mine.retrieved_count == cell.retrieved_count


class TestMonolithicUnderLoad:
    def test_table4_survives_concurrency(self, harness):
        assert_tables_equal(
            table_via_driver(harness, TABLE3_QUERIES, IndexName.LADDER),
            harness.table4())

    def test_table5_survives_concurrency(self, harness):
        systems = (IndexName.TRAD, IndexName.QUERY_EXP,
                   IndexName.FULL_INF)
        assert_tables_equal(
            table_via_driver(harness, TABLE3_QUERIES, systems),
            harness.table5())

    def test_table6_survives_concurrency(self, harness):
        systems = (IndexName.FULL_INF, IndexName.PHR_EXP)
        assert_tables_equal(
            table_via_driver(harness, TABLE6_QUERIES, systems),
            harness.table6())


class TestSegmentedUnderLoad:
    def test_table4_matches_monolithic_golden(self, harness,
                                              segmented_harness):
        assert_tables_equal(
            table_via_driver(segmented_harness, TABLE3_QUERIES,
                             IndexName.LADDER),
            harness.table4())

    def test_table6_matches_monolithic_golden(self, harness,
                                              segmented_harness):
        systems = (IndexName.FULL_INF, IndexName.PHR_EXP)
        assert_tables_equal(
            table_via_driver(segmented_harness, TABLE6_QUERIES,
                             systems),
            harness.table6())


class TestConcurrencyInvariance:
    def test_one_thread_and_eight_agree(self, harness):
        serial = table_via_driver(harness, TABLE3_QUERIES,
                                  (IndexName.FULL_INF,), threads=1)
        loaded = table_via_driver(harness, TABLE3_QUERIES,
                                  (IndexName.FULL_INF,), threads=8)
        assert_tables_equal(loaded, serial)
