"""Golden-table parity through the segmented serving path.

The numbers in test_golden_numbers.py are pinned against the
monolithic in-memory indexes.  Here the same corpus is ingested
segment-natively (multiple mmap'd segments per index, scatter-gather
top-k) and every Table 4/5/6 cell must come out bit-identical — the
segment architecture is a serving-layer change and may not move a
single number.
"""

from __future__ import annotations

import pytest

from repro.core import IndexName
from repro.evaluation import EvaluationHarness
from repro.evaluation.queries import TABLE3_QUERIES, TABLE6_QUERIES


@pytest.fixture(scope="module")
def segmented_result(pipeline, corpus, tmp_path_factory):
    """The standard corpus ingested into 2-match segments (5 per
    index variant)."""
    result = pipeline.run_segmented(
        corpus.crawled, tmp_path_factory.mktemp("segmented"),
        segment_size=2)
    yield result
    result.close()


@pytest.fixture(scope="module")
def segmented_harness(corpus, segmented_result):
    return EvaluationHarness(corpus, segmented_result)


def assert_tables_equal(ours, reference):
    assert ours.systems == reference.systems
    assert set(ours.rows) == set(reference.rows)
    for query_id, row in reference.rows.items():
        for system, cell in row.items():
            mine = ours.rows[query_id][system]
            assert mine.average_precision == cell.average_precision, \
                (query_id, system)
            assert mine.recall == cell.recall, (query_id, system)
            assert mine.relevant_count == cell.relevant_count
            assert mine.retrieved_count == cell.retrieved_count


class TestSegmentedGoldenParity:
    def test_segments_really_are_segmented(self, segmented_result):
        for name in IndexName.BUILT:
            assert segmented_result.index(name).segment_count == 5

    def test_doc_ids_match_monolithic(self, pipeline_result,
                                      segmented_result):
        for name in IndexName.BUILT:
            assert segmented_result.index(name).doc_count \
                == pipeline_result.index(name).doc_count

    def test_table4_bit_identical(self, harness, segmented_harness):
        assert_tables_equal(segmented_harness.table4(),
                            harness.table4())

    def test_table5_bit_identical(self, harness, segmented_harness):
        assert_tables_equal(segmented_harness.table5(),
                            harness.table5())

    def test_table6_bit_identical(self, harness, segmented_harness):
        assert_tables_equal(segmented_harness.table6(),
                            harness.table6())

    @pytest.mark.parametrize("query_id",
                             [q.query_id for q in TABLE3_QUERIES])
    def test_rankings_bit_identical(self, pipeline_result,
                                    segmented_result, query_id):
        """Not just the metrics — the raw ranked (doc, score) lists."""
        query = next(q for q in TABLE3_QUERIES
                     if q.query_id == query_id)
        for name in IndexName.LADDER:
            ours = segmented_result.engine(name).search(query.keywords,
                                                        limit=10)
            reference = pipeline_result.engine(name).search(
                query.keywords, limit=10)
            assert [(h.doc_key, h.score) for h in ours] \
                == [(h.doc_key, h.score) for h in reference], name

    def test_phrasal_rankings_bit_identical(self, pipeline_result,
                                            segmented_result):
        for query in TABLE6_QUERIES:
            ours = segmented_result.engine(IndexName.PHR_EXP).search(
                query.keywords, limit=10)
            reference = pipeline_result.engine(IndexName.PHR_EXP).search(
                query.keywords, limit=10)
            assert [(h.doc_key, h.score) for h in ours] \
                == [(h.doc_key, h.score) for h in reference]

    def test_rankings_survive_a_forced_merge(self, segmented_result):
        engine = segmented_result.engine(IndexName.FULL_INF)
        before = [[(h.doc_key, h.score)
                   for h in engine.search(q.keywords, limit=10)]
                  for q in TABLE3_QUERIES]
        directory = segmented_result.directories[IndexName.FULL_INF]
        assert directory.merge(force=True) == 1
        segmented_result.refresh()
        assert segmented_result.index(IndexName.FULL_INF) \
                               .segment_count == 1
        after = [[(h.doc_key, h.score)
                  for h in engine.search(q.keywords, limit=10)]
                 for q in TABLE3_QUERIES]
        assert after == before
