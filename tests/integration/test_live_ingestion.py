"""Live ingestion through the running HTTP service.

The serving layer's three promises, tested end to end over the
standard corpus on an ephemeral port:

1. **Freshness** — a match POSTed to ``/ingest`` is returned by
   ``/search`` within 5 seconds (the ISSUE's bound; in practice one
   refresh cycle).
2. **Fidelity** — golden Tables 4–6 for the pre-existing corpus are
   cell-identical when every search runs over HTTP (JSON floats
   round-trip exactly, so even scores survive the wire).
3. **Stability** — 8 client threads hammering ``/search`` straight
   through ingest commits, refreshes and merges see zero errors.

Ordering inside the module matters: the golden-table assertions run
*before* ingestion (class order = execution order in pytest), because
new documents legitimately shift global document frequencies.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.core import IndexName
from repro.evaluation.harness import TableResult
from repro.evaluation.queries import TABLE3_QUERIES, TABLE6_QUERIES
from repro.loadgen import HttpSearchClient
from repro.serve import ReproService, ServiceConfig, match_to_json
from repro.soccer.crawler import SimulatedCrawler

CLIENT_THREADS = 8
FRESHNESS_BOUND_SECONDS = 5.0


@pytest.fixture(scope="module")
def service(pipeline, corpus, tmp_path_factory):
    directory = tmp_path_factory.mktemp("live_ingestion")
    pipeline.run_segmented(corpus.crawled, directory,
                           segment_size=2).close()
    config = ServiceConfig(directory, maintenance_interval=0.5)
    with ReproService(config) as running:
        yield running


@pytest.fixture(scope="module")
def new_match(corpus):
    """A simulated match not in the standard corpus."""
    crawler = SimulatedCrawler(corpus.teams, seed=20260807)
    names = sorted(corpus.teams)
    return crawler.crawl_match(names[0], names[5], "2026_08_07")


def http_table(service, queries, systems, harness):
    """``harness.run_table`` with every search going over the wire."""
    table = TableResult(systems=list(systems))
    for query in queries:
        row = {}
        for system in systems:
            client = HttpSearchClient(service.url, index=system)
            row[system] = harness.evaluate_query(
                query, system,
                lambda keywords, _c=client: _c.search(keywords,
                                                      limit=None))
        table.rows[query.query_id] = row
    return table


def assert_tables_equal(ours, reference):
    assert ours.systems == reference.systems
    assert set(ours.rows) == set(reference.rows)
    for query_id, row in reference.rows.items():
        for system, cell in row.items():
            mine = ours.rows[query_id][system]
            assert mine.average_precision == cell.average_precision, \
                (query_id, system)
            assert mine.recall == cell.recall, (query_id, system)
            assert mine.relevant_count == cell.relevant_count
            assert mine.retrieved_count == cell.retrieved_count


class TestGoldenTablesOverHttp:
    """Must run before ingestion (see module docstring)."""

    def test_table4_bit_identical(self, service, harness):
        assert_tables_equal(
            http_table(service, TABLE3_QUERIES, IndexName.LADDER,
                       harness),
            harness.table4())

    def test_table5_bit_identical(self, service, harness):
        systems = (IndexName.TRAD, IndexName.QUERY_EXP,
                   IndexName.FULL_INF)
        assert_tables_equal(
            http_table(service, TABLE3_QUERIES, systems, harness),
            harness.table5())

    def test_table6_bit_identical(self, service, harness):
        systems = (IndexName.FULL_INF, IndexName.PHR_EXP)
        assert_tables_equal(
            http_table(service, TABLE6_QUERIES, systems, harness),
            harness.table6())


class TestLiveIngestion:
    def test_ingested_match_searchable_within_bound(self, service,
                                                    new_match):
        client = HttpSearchClient(service.url,
                                  index=IndexName.FULL_INF)
        match_id = new_match.match_id
        # 8 concurrent searchers run right through the commit +
        # refresh + merge window; any error or non-JSON response is a
        # stability failure.
        stop = threading.Event()
        errors = []

        def hammer():
            while not stop.is_set():
                try:
                    client.search("goal scores", limit=10)
                except Exception as error:   # noqa: BLE001
                    errors.append(repr(error))
                    return

        threads = [threading.Thread(target=hammer)
                   for _ in range(CLIENT_THREADS)]
        for thread in threads:
            thread.start()
        try:
            payload = json.dumps(match_to_json(new_match)).encode()
            request = urllib.request.Request(
                service.url + "/ingest", data=payload,
                headers={"Content-Type": "application/json"})
            posted = time.monotonic()
            with urllib.request.urlopen(request, timeout=30) as resp:
                assert resp.status == 202
                body = json.loads(resp.read())
            assert body["match_id"] == match_id

            found = False
            while time.monotonic() - posted < FRESHNESS_BOUND_SECONDS:
                hits = client.search("goal scores", limit=None)
                if any(hit.doc_key.startswith(match_id)
                       for hit in hits):
                    found = True
                    break
                time.sleep(0.05)
            assert found, (f"match {match_id} not searchable within "
                           f"{FRESHNESS_BOUND_SECONDS}s")
            # keep the hammer running across a few maintenance
            # cycles so a merge/vacuum lands under live readers.
            time.sleep(1.5)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert errors == []

    def test_healthz_reflects_the_ingest(self, service, new_match):
        health = HttpSearchClient(service.url).healthz()
        assert health["ingest"]["ingested"] >= 1
        assert health["ingest"]["failed"] == 0
        assert health["indexes"][IndexName.FULL_INF]["generation"] > 1

    def test_new_docs_visible_in_full_application_path(self, service,
                                                       new_match):
        client = HttpSearchClient(service.url)   # full stack, no index
        hits = client.search("goal scores", limit=None)
        assert any(hit.doc_key.startswith(new_match.match_id)
                   for hit in hits)
