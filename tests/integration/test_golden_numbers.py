"""Golden-number regression locks.

The whole pipeline is deterministic (seeded corpus, content-addressed
rule temps, tie-broken ranking), so the measured Table 4/5/6 values
are exact constants.  These tests pin them: any change to analysis,
scoring, rules or the corpus that shifts a number — intentionally or
not — fails here first and forces EXPERIMENTS.md to be re-checked.
"""

import pytest

GOLDEN_TABLE4 = {
    # query: (TRAD, BASIC_EXT, FULL_EXT, FULL_INF) AP in percent
    "Q-1": (0.4, 100.0, 100.0, 100.0),
    "Q-2": (4.1, 76.6, 78.8, 100.0),
    "Q-3": (17.7, 100.0, 100.0, 100.0),
    "Q-4": (0.0, 0.0, 0.0, 100.0),
    "Q-5": (55.0, 100.0, 100.0, 100.0),
    "Q-6": (23.9, 22.2, 33.8, 100.0),
    "Q-7": (41.1, 33.9, 46.8, 100.0),
    "Q-8": (93.4, 93.7, 100.0, 100.0),
    "Q-9": (73.7, 54.6, 67.1, 100.0),
    "Q-10": (0.0, 0.0, 26.3, 100.0),
}

GOLDEN_TABLE6 = {
    "P-1": (100.0, 100.0),
    "P-2": (50.0, 100.0),
    "P-3": (100.0, 100.0),
}

GOLDEN_RELEVANT_COUNTS = {
    "Q-1": 29, "Q-2": 6, "Q-3": 3, "Q-4": 35, "Q-5": 2,
    "Q-6": 5, "Q-7": 8, "Q-8": 27, "Q-9": 7, "Q-10": 35,
}


class TestGoldenTable4:
    @pytest.fixture(scope="class")
    def table(self, harness):
        return harness.table4()

    @pytest.mark.parametrize("query_id", sorted(GOLDEN_TABLE4))
    def test_ap_values_pinned(self, table, query_id):
        expected = GOLDEN_TABLE4[query_id]
        for system, value in zip(table.systems, expected):
            measured = table.get(query_id, system).average_precision
            assert measured * 100 == pytest.approx(value, abs=0.05), \
                (query_id, system)

    @pytest.mark.parametrize("query_id", sorted(GOLDEN_RELEVANT_COUNTS))
    def test_relevant_counts_pinned(self, table, query_id):
        measured = table.get(query_id, "FULL_INF").relevant_count
        assert measured == GOLDEN_RELEVANT_COUNTS[query_id]

    def test_map_values_pinned(self, table):
        expected = {"TRAD": 30.9, "BASIC_EXT": 58.1,
                    "FULL_EXT": 65.3, "FULL_INF": 100.0}
        for system, value in expected.items():
            assert table.mean_ap(system) * 100 \
                == pytest.approx(value, abs=0.1), system


class TestGoldenTable6:
    def test_values_pinned(self, harness):
        table = harness.table6()
        for query_id, expected in GOLDEN_TABLE6.items():
            for system, value in zip(table.systems, expected):
                measured = table.get(query_id, system).average_precision
                assert measured * 100 == pytest.approx(value, abs=0.05), \
                    (query_id, system)


class TestResilienceGoldenParity:
    """Enabling the resilience layer with zero injected faults must
    be a strict no-op on a healthy corpus: identical indexes byte for
    byte, identical Table 4/5/6 numbers, empty quarantine."""

    @pytest.fixture(scope="class")
    def resilient_result(self, pipeline, corpus):
        return pipeline.run(corpus.crawled, degrade=True, workers=2)

    def test_indexes_bit_identical(self, pipeline_result,
                                   resilient_result):
        from repro.core import IndexName
        assert not resilient_result.quarantine
        for name in IndexName.BUILT:
            assert resilient_result.index(name).to_json() \
                == pipeline_result.index(name).to_json(), name

    def test_tables_unchanged(self, corpus, harness, resilient_result):
        from repro.evaluation import EvaluationHarness
        from repro.evaluation.report import render_table
        resilient = EvaluationHarness(corpus, resilient_result)
        for table_name in ("table4", "table5", "table6"):
            baseline = render_table(getattr(harness, table_name)())
            measured = render_table(getattr(resilient, table_name)())
            assert measured == baseline, table_name


class TestGoldenCorpus:
    def test_index_sizes_pinned(self, pipeline_result):
        from repro.core import IndexName
        expected = {IndexName.TRAD: 1182, IndexName.BASIC_EXT: 1296,
                    IndexName.FULL_EXT: 1182, IndexName.FULL_INF: 1198,
                    IndexName.PHR_EXP: 1198}
        for name, count in expected.items():
            assert pipeline_result.index(name).doc_count == count, name

    def test_assist_count_pinned(self, pipeline_result):
        from repro.rdf import SOCCER
        assists = sum(
            1 for model in pipeline_result.inferred_models
            for __ in model.individuals(SOCCER.Assist))
        # FULL_INF (1198) = FULL_EXT (1182) + inferred assists
        assert assists == 16
