"""End-to-end fault-tolerance invariants.

The load-bearing property (ISSUE 2): **for any set of quarantined
matches, the surviving index is bit-identical to a clean run over
only the surviving matches**, at ``workers=1`` and ``workers=4``.
Plus the chaos check — a pool worker killed with ``os._exit``
mid-run never hangs the pipeline — and the 2-of-20 degraded-run
acceptance scenario.
"""

import random
import threading

import pytest

from repro.core import (FaultMode, FaultPlan, FaultSpec, IndexName,
                        ResilienceConfig, RetryPolicy,
                        SemanticRetrievalPipeline)
from repro.soccer import standard_corpus
from repro.soccer.names import FIXTURES, round_robin_fixtures

#: retry budget used throughout: transient faults with times <=
#: MAX_RETRIES recover, permanent faults quarantine after
#: MAX_RETRIES + 1 attempts.
MAX_RETRIES = 1
FAST_RETRY = RetryPolicy(max_retries=MAX_RETRIES, backoff_base=0.001,
                         backoff_max=0.01)

#: fault shapes a poison match can die of (hang kept sub-second so
#: the un-timed attempt fails quickly).
POISON_MODES = (FaultMode.RAISE, FaultMode.CORRUPT, FaultMode.HANG)
#: stages/aliases the generator draws from.
TARGET_STAGES = ("crawler", "extractor", "populator", "reasoner",
                 "indexer", "inference", "extraction")


@pytest.fixture(scope="module")
def res_corpus():
    """Five matches — enough to quarantine some and keep several."""
    return standard_corpus(fixtures=FIXTURES[:5], total_narrations=250)


def run_with_watchdog(func, timeout=180.0):
    """Run ``func`` on a thread and fail loudly if it hangs — the
    chaos tests' no-hang guarantee, independent of any CI timeout."""
    box = {}

    def target():
        try:
            box["result"] = func()
        except BaseException as error:  # noqa: BLE001 - re-raised
            box["error"] = error

    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    worker.join(timeout)
    assert not worker.is_alive(), \
        f"pipeline run hung for more than {timeout}s"
    if "error" in box:
        raise box["error"]
    return box["result"]


def random_plan(rng, match_ids):
    """A seeded random fault plan: 1–2 permanent poison matches plus
    transient faults (recoverable within the retry budget) on some
    survivors.  Returns (plan, expected_quarantined_ids)."""
    shuffled = list(match_ids)
    rng.shuffle(shuffled)
    poison_count = rng.randint(1, 2)
    poison, healthy = shuffled[:poison_count], shuffled[poison_count:]
    specs = []
    for match_id in poison:
        specs.append(FaultSpec(
            stage=rng.choice(TARGET_STAGES),
            mode=rng.choice(POISON_MODES),
            match_ids=frozenset({match_id}),
            hang_seconds=0.01))
    for match_id in rng.sample(healthy, rng.randint(1, len(healthy))):
        specs.append(FaultSpec(
            stage=rng.choice(TARGET_STAGES),
            mode=rng.choice((FaultMode.RAISE, FaultMode.CORRUPT)),
            match_ids=frozenset({match_id}),
            times=rng.randint(1, MAX_RETRIES)))
    return FaultPlan(specs=tuple(specs), seed=rng.randint(0, 9999)), \
        sorted(poison, key=match_ids.index)


class TestSurvivorParityProperty:
    """Seeded random fault plans at workers=1 and workers=4."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_survivors_bit_identical_to_clean_run(self, res_corpus,
                                                  seed):
        ids = [crawled.match_id for crawled in res_corpus.crawled]
        plan, expected_poison = random_plan(random.Random(seed), ids)
        config = ResilienceConfig(retry=FAST_RETRY, fault_plan=plan)
        pipeline = SemanticRetrievalPipeline()

        survivors = [crawled for crawled in res_corpus.crawled
                     if crawled.match_id not in expected_poison]
        clean = pipeline.run(survivors)

        for workers in (1, 4):
            degraded = run_with_watchdog(
                lambda: pipeline.run(res_corpus.crawled,
                                     resilience=config,
                                     workers=workers))
            assert degraded.quarantine.match_ids() == expected_poison, \
                (seed, workers)
            for name in IndexName.BUILT:
                assert degraded.index(name).to_json() \
                    == clean.index(name).to_json(), (seed, workers,
                                                     name)
            assert len(degraded.inferred_models) == len(survivors)

    def test_rankings_match_clean_run(self, res_corpus):
        """Searching the degraded index behaves exactly like the
        clean survivors-only index, not just byte equality."""
        ids = [crawled.match_id for crawled in res_corpus.crawled]
        plan = FaultPlan(specs=(
            FaultSpec(stage="extractor", match_ids={ids[1]}),))
        pipeline = SemanticRetrievalPipeline()
        degraded = pipeline.run(
            res_corpus.crawled,
            resilience=ResilienceConfig(retry=FAST_RETRY,
                                        fault_plan=plan))
        clean = pipeline.run([c for c in res_corpus.crawled
                              if c.match_id != ids[1]])
        for query in ("goal", "yellow card", "penalty save"):
            degraded_hits = [(hit.doc_key, hit.score) for hit in
                             degraded.engine(IndexName.FULL_INF)
                             .search(query, limit=20)]
            clean_hits = [(hit.doc_key, hit.score) for hit in
                          clean.engine(IndexName.FULL_INF)
                          .search(query, limit=20)]
            assert degraded_hits == clean_hits, query


class TestChaosWorkerCrash:
    """A real pool worker dies via os._exit mid-run: the run must
    finish — task recovered or quarantined — and never hang."""

    def _run(self, corpus, plan):
        config = ResilienceConfig(retry=FAST_RETRY, fault_plan=plan)
        pipeline = SemanticRetrievalPipeline()
        return run_with_watchdog(
            lambda: pipeline.run(corpus.crawled, resilience=config,
                                 workers=4, profile=True))

    def test_permanent_crasher_quarantined(self, res_corpus):
        ids = [crawled.match_id for crawled in res_corpus.crawled]
        plan = FaultPlan(specs=(FaultSpec(
            stage="inference", mode=FaultMode.CRASH,
            match_ids={ids[2]}),))
        result = self._run(res_corpus, plan)
        assert result.quarantine.match_ids() == [ids[2]]
        record = result.quarantine.records[0]
        assert record.stage == "worker"
        assert record.error_type == "WorkerCrashError"
        assert record.attempts == MAX_RETRIES + 1
        assert result.profile.counters["worker_crashes"] >= 1
        assert result.profile.counters["pool_rebuilds"] >= 1
        # the survivors are all present and searchable
        assert len(result.inferred_models) == len(ids) - 1
        assert result.engine(IndexName.FULL_INF).search("goal",
                                                        limit=5)

    def test_transient_crasher_recovered(self, res_corpus):
        ids = [crawled.match_id for crawled in res_corpus.crawled]
        plan = FaultPlan(specs=(FaultSpec(
            stage="inference", mode=FaultMode.CRASH,
            match_ids={ids[2]}, times=1),))
        result = self._run(res_corpus, plan)
        assert not result.quarantine
        assert len(result.inferred_models) == len(ids)
        assert result.profile.counters["worker_crashes"] >= 1

    def test_crash_parity_with_serial_simulation(self, res_corpus):
        """workers=1 simulates the crash in-process; the surviving
        corpus must match the real-crash pool run bit for bit."""
        ids = [crawled.match_id for crawled in res_corpus.crawled]
        plan = FaultPlan(specs=(FaultSpec(
            stage="inference", mode=FaultMode.CRASH,
            match_ids={ids[0]}),))
        config = ResilienceConfig(retry=FAST_RETRY, fault_plan=plan)
        pipeline = SemanticRetrievalPipeline()
        serial = pipeline.run(res_corpus.crawled, resilience=config)
        pooled = run_with_watchdog(
            lambda: pipeline.run(res_corpus.crawled, resilience=config,
                                 workers=4))
        assert serial.quarantine.match_ids() \
            == pooled.quarantine.match_ids() == [ids[0]]
        for name in IndexName.BUILT:
            assert serial.index(name).to_json() \
                == pooled.index(name).to_json(), name


class TestDegradedTwentyMatchRun:
    """ISSUE 2 acceptance: permanently fail 2 of 20 matches at
    workers=4 and still get a searchable index over the 18
    survivors plus an exact quarantine report."""

    def test_two_of_twenty(self):
        corpus = standard_corpus(fixtures=round_robin_fixtures(20),
                                 total_narrations=400)
        ids = [crawled.match_id for crawled in corpus.crawled]
        poison = [ids[4], ids[13]]
        plan = FaultPlan(specs=(
            FaultSpec(stage="extractor", match_ids={poison[0]}),
            FaultSpec(stage="reasoner", mode=FaultMode.CORRUPT,
                      match_ids={poison[1]}),
        ))
        pipeline = SemanticRetrievalPipeline()
        result = run_with_watchdog(
            lambda: pipeline.run(
                corpus.crawled,
                resilience=ResilienceConfig(retry=FAST_RETRY,
                                            fault_plan=plan),
                degrade=True, workers=4))

        assert result.quarantine.match_ids() == poison
        by_id = {record.match_id: record
                 for record in result.quarantine}
        assert by_id[poison[0]].stage == "extraction"
        assert by_id[poison[1]].stage == "inference"
        for record in result.quarantine:
            assert record.attempts == MAX_RETRIES + 1

        # 18 survivors, fully indexed and searchable
        assert len(result.inferred_models) == 18
        survivor_narrations = sum(
            len(crawled.narrations) for crawled in corpus.crawled
            if crawled.match_id not in poison)
        assert result.index(IndexName.TRAD).doc_count \
            == survivor_narrations
        hits = result.engine(IndexName.FULL_INF).search("goal",
                                                        limit=10)
        assert hits
        # doc keys are "<match_id>_nNNNN"/"<match_id>_eNNN"; nothing
        # from a quarantined match may surface
        for hit in hits:
            assert not any(hit.doc_key.startswith(match_id)
                           for match_id in poison), hit.doc_key
