"""Tests for the deployable application facade."""

import pytest

from repro.app import SemanticSearchApplication
from repro.core import F, IndexName


@pytest.fixture(scope="module")
def app(pipeline_result):
    return SemanticSearchApplication.from_pipeline(pipeline_result)


class TestSearch:
    def test_plain_keyword_search(self, app):
        response = app.search("messi goal", limit=5)
        assert len(response) == 5
        assert not response.phrasal
        assert response.query == "messi goal"

    def test_spell_correction_applied(self, app):
        response = app.search("mesi goal", limit=3)
        assert response.corrected
        assert response.query == "messi goal"
        assert response.original_query == "mesi goal"
        assert response.hits

    def test_spell_correction_can_be_disabled(self, app):
        response = app.search("mesi goal", spell_correct=False)
        assert not response.corrected
        assert response.query == "mesi goal"

    def test_phrasal_routing(self, app):
        response = app.search("foul by Daniel to Florent", limit=3)
        assert response.phrasal
        assert response.hits
        assert "Daniel" in (response.hits[0].narration or "")

    def test_snippets_highlight_matches(self, app):
        response = app.search("alex yellow card", limit=5)
        assert any("**yellow**" in snippet
                   for snippet in response.snippets if snippet)

    def test_semantic_only_match_has_clean_snippet(self, app):
        """'punishment' matches through the event field, so the
        narration snippet legitimately carries no highlights."""
        response = app.search("punishment", limit=3)
        assert response.hits
        assert all("**" not in snippet for snippet in response.snippets)

    def test_snippets_optional(self, app):
        response = app.search("goal", snippets=False)
        assert response.snippets == []


class TestFeedback:
    def test_click_learning_round_trip(self, pipeline_result):
        app = SemanticSearchApplication.from_pipeline(pipeline_result)
        index = pipeline_result.index(IndexName.FULL_INF)
        clicked = 0
        for doc_id in range(index.doc_count):
            event = index.stored_value(doc_id, F.EVENT) or ""
            if "yellow card" in event:
                app.feedback("booking",
                             index.stored_value(doc_id, F.DOC_KEY))
                clicked += 1
                if clicked == 3:
                    break
        assert app.learned_expansions
        response = app.search("booking", limit=3)
        assert "yellow card" in response.hits[0].event_type


class TestPersistence:
    def test_persist_and_open(self, pipeline_result, tmp_path):
        SemanticSearchApplication.persist(pipeline_result, tmp_path)
        app = SemanticSearchApplication.open(tmp_path)
        response = app.search("save goalkeeper barcelona", limit=3)
        assert response.hits
        assert "save" in response.hits[0].event_type
        # phrasal engine survives the round trip too
        phrasal = app.search("foul by Daniel", limit=3)
        assert phrasal.phrasal


class TestSegmentedBackend:
    """The facade must duck-type the segmented serving index: open()
    on a `build --segmented` directory hands SegmentedIndex to every
    query-time collaborator (spell, feedback, phrasal, caches)."""

    @pytest.fixture(scope="class")
    def segmented_app(self, pipeline, corpus, tmp_path_factory):
        from repro.core import SemanticRetrievalPipeline
        directory = tmp_path_factory.mktemp("app_segmented")
        pipeline.run_segmented(corpus.crawled, directory,
                               segment_size=2).close()
        with SemanticSearchApplication.open(directory) as app:
            yield app

    def test_open_detects_segmented_format(self, segmented_app):
        from repro.search.index import SegmentedIndex
        assert isinstance(segmented_app.index, SegmentedIndex)
        assert isinstance(segmented_app.phrasal_index, SegmentedIndex)

    def test_search_results_match_monolithic(self, app, segmented_app):
        ours = segmented_app.search("messi goal", limit=10)
        reference = app.search("messi goal", limit=10)
        assert [(hit.doc_key, hit.score) for hit in ours.hits] \
            == [(hit.doc_key, hit.score) for hit in reference.hits]

    def test_spell_correction_over_segments(self, segmented_app):
        response = segmented_app.search("mesi goal", limit=3)
        assert response.corrected
        assert response.query == "messi goal"

    def test_phrasal_routing_over_segments(self, segmented_app):
        response = segmented_app.search("foul by Daniel to Florent",
                                        limit=3)
        assert response.phrasal
        assert response.hits

    def test_feedback_learner_accepts_segmented_index(self,
                                                      segmented_app):
        hit = segmented_app.search("yellow card", limit=1).hits[0]
        segmented_app.feedback("booking", hit)
        assert len(segmented_app.feedback_engine.store) >= 1

    def test_generation_and_refresh_exposed(self, segmented_app):
        assert segmented_app.generation >= 1
        assert segmented_app.refresh() is False    # nothing committed
