"""Tests for ontology population (§3.4)."""

import pytest

from repro.extraction import InformationExtractor
from repro.extraction.events import ExtractedEvent
from repro.errors import PopulationError
from repro.ontology import soccer_ontology
from repro.population import (OntologyPopulator, iri_slug, role_mapping)
from repro.rdf import SOCCER, Literal
from repro.soccer import EventKind, SimulatedCrawler, build_teams


@pytest.fixture(scope="module")
def onto():
    return soccer_ontology()


@pytest.fixture(scope="module")
def crawled():
    return SimulatedCrawler(build_teams(), seed=31).crawl_match(
        "Chelsea", "Barcelona", "2009-05-06")


@pytest.fixture(scope="module")
def populator(onto):
    return OntologyPopulator(onto)


class TestRoleMapping:
    def test_goal_uses_scorer(self):
        mapping = role_mapping(EventKind.GOAL)
        assert mapping.subject_property == SOCCER.scorerPlayer
        assert mapping.object_property == SOCCER.objectPlayer

    def test_foul_roles(self):
        mapping = role_mapping(EventKind.FOUL)
        assert mapping.subject_property == SOCCER.foulingPlayer
        assert mapping.object_property == SOCCER.fouledPlayer

    def test_injury_object_only(self):
        mapping = role_mapping(EventKind.INJURY)
        assert mapping.subject_property == SOCCER.subjectPlayer
        assert mapping.object_property == SOCCER.injuredPlayer

    def test_unknown_kind_falls_back_to_generic(self):
        """The paper's loose coupling: unmapped events never fail."""
        mapping = role_mapping("UnknownEvent")
        assert mapping.subject_property == SOCCER.subjectPlayer
        assert mapping.object_property == SOCCER.objectPlayer

    def test_iri_slug(self):
        assert iri_slug("Eto'o (Barcelona)!") == "Eto_o_Barcelona"
        assert iri_slug("") == "x"
        assert " " not in iri_slug("van der Sar")


class TestStructurePopulation:
    @pytest.fixture(scope="class")
    def basic(self, populator, crawled):
        return populator.populate_basic(crawled)

    def test_match_individual(self, basic, crawled):
        matches = list(basic.individuals(SOCCER.Match))
        assert len(matches) == 1
        match = matches[0]
        assert match.first(SOCCER.onDate) == Literal(crawled.date)

    def test_teams_linked(self, basic):
        [match] = list(basic.individuals(SOCCER.Match))
        assert match.first(SOCCER.homeTeam) is not None
        assert match.first(SOCCER.awayTeam) is not None

    def test_players_typed_by_position(self, basic):
        keepers = list(basic.individuals(SOCCER.Goalkeeper))
        # two squads with two goalkeepers each
        assert len(keepers) == 4

    def test_players_play_for_teams(self, basic):
        for player in basic.individuals(SOCCER.LeftBack):
            assert player.get(SOCCER.playsFor)

    def test_team_has_exactly_one_starting_goalkeeper(self, basic):
        for team in basic.individuals(SOCCER.Team):
            assert len(team.get(SOCCER.hasGoalkeeper)) == 1

    def test_stadium_and_referee(self, basic):
        assert list(basic.individuals(SOCCER.Stadium))
        assert list(basic.individuals(SOCCER.Referee))


class TestBasicFacts:
    @pytest.fixture(scope="class")
    def basic(self, populator, crawled):
        return populator.populate_basic(crawled)

    def test_goal_events_from_facts(self, basic, crawled):
        goals = list(basic.individuals(SOCCER.Goal))
        plain = [g for g in crawled.goals if g.kind == "goal"]
        assert len(goals) == len(plain)
        for goal in goals:
            assert goal.get(SOCCER.scorerPlayer)

    def test_bookings_become_cards(self, basic, crawled):
        yellows = list(basic.individuals(SOCCER.YellowCard))
        expected = [b for b in crawled.bookings if b.color == "yellow"]
        assert len(yellows) == len(expected)

    def test_every_narration_is_an_unknown_event(self, basic, crawled):
        unknowns = list(basic.individuals(SOCCER.UnknownEvent))
        assert len(unknowns) == len(crawled.narrations)
        for unknown in unknowns:
            assert unknown.first(SOCCER.hasNarration) is not None

    def test_event_ids_carry_provenance(self, basic, crawled):
        goals = list(basic.individuals(SOCCER.Goal))
        fact_ids = {g.source_id for g in crawled.goals}
        for goal in goals:
            assert str(goal.first(SOCCER.hasEventId)) in fact_ids


class TestFullPopulation:
    @pytest.fixture(scope="class")
    def full(self, populator, crawled):
        extracted = InformationExtractor(crawled).extract_all()
        return populator.populate_full(crawled, extracted)

    def test_typed_events_present(self, full):
        assert list(full.individuals(SOCCER.Foul))
        assert list(full.individuals(SOCCER.Corner))
        assert list(full.individuals(SOCCER.Save))

    def test_event_specific_properties_used(self, full):
        """§3.4: the scorerPlayer property is filled automatically
        from the generic subject via the mapping."""
        for goal in full.individuals(SOCCER.Goal):
            assert goal.get(SOCCER.scorerPlayer)
            # the generic property is NOT asserted here (the reasoner
            # closes it later)
            assert not goal.get(SOCCER.subjectPlayer)

    def test_team_roles_left_to_rules(self, full):
        """Table 1 shows '-' for subjectTeam in the extracted index."""
        for foul in full.individuals(SOCCER.Foul):
            assert not foul.get(SOCCER.subjectTeam)
            assert not foul.get(SOCCER.objectTeam)

    def test_narrations_attached_to_events(self, full):
        for save in full.individuals(SOCCER.Save):
            assert save.first(SOCCER.hasNarration) is not None

    def test_unknown_events_preserved(self, full):
        assert list(full.individuals(SOCCER.UnknownEvent))

    def test_wrong_match_rejected(self, populator, crawled):
        alien = ExtractedEvent(narration_id="x_n0001",
                               match_id="some_other_match",
                               minute=1, narration="text")
        with pytest.raises(PopulationError):
            populator.populate_full(crawled, [alien])

    def test_independent_models(self, populator, crawled):
        """§3.5: each game is a separate model."""
        first = populator.populate_basic(crawled)
        second = populator.populate_basic(crawled)
        assert first is not second
        assert first.individual_count == second.individual_count
