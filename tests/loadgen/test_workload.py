"""Query mixes: zipf shape, determinism, paper queries at the head."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.loadgen import (PAPER_QUERIES, PROFILES, ZipfSampler,
                           build_workload, synthetic_queries)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestSyntheticQueries:
    @given(st.integers(min_value=0, max_value=3000), seeds)
    @settings(max_examples=40, deadline=None)
    def test_distinct_deterministic_and_sized(self, count, seed):
        queries = synthetic_queries(count, seed)
        assert len(queries) == count
        assert len(set(queries)) == count
        assert queries == synthetic_queries(count, seed)

    def test_tail_stays_distinct_past_the_combination_pools(self):
        # name×event + name×team×event ≈ 2160 combinations; well past
        # that the numbered tail must keep the universe collision-free
        queries = synthetic_queries(5000, seed=1)
        assert len(set(queries)) == 5000

    def test_different_seeds_shuffle_differently(self):
        assert synthetic_queries(100, seed=1) \
            != synthetic_queries(100, seed=2)


class TestZipfSampler:
    @given(st.integers(min_value=1, max_value=500),
           st.floats(min_value=0.0, max_value=2.0), seeds)
    @settings(max_examples=60, deadline=None)
    def test_deterministic_and_in_range(self, n, exponent, seed):
        first = ZipfSampler(n, exponent, seed).sample_many(50)
        second = ZipfSampler(n, exponent, seed).sample_many(50)
        assert first == second
        assert all(0 <= rank < n for rank in first)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(40, 1.2, seed=0)
        assert sum(sampler.probability(rank)
                   for rank in range(1, 41)) == pytest.approx(1.0)

    def test_frequencies_match_theory(self):
        # fixed seed → reproducible; each rank's observed frequency
        # must sit within 4 standard errors of its zipf probability
        n, draws = 20, 20000
        sampler = ZipfSampler(n, 1.0, seed=77)
        observed = [0] * n
        for rank in sampler.sample_many(draws):
            observed[rank] += 1
        for rank in range(n):
            p = sampler.probability(rank + 1)
            tolerance = 4 * math.sqrt(p * (1 - p) / draws)
            assert observed[rank] / draws == pytest.approx(
                p, abs=tolerance), f"rank {rank + 1}"

    def test_steeper_exponent_concentrates_the_head(self):
        draws = 5000
        flat = ZipfSampler(100, 0.2, seed=5).sample_many(draws)
        steep = ZipfSampler(100, 1.5, seed=5).sample_many(draws)
        assert steep.count(0) > flat.count(0) * 2

    def test_exponent_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0, seed=0)
        assert sampler.probability(1) == pytest.approx(0.1)
        assert sampler.probability(10) == pytest.approx(0.1)

    def test_bad_parameters_raise(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.5)


class TestWorkloads:
    @given(st.sampled_from(sorted(PROFILES)),
           st.integers(min_value=1, max_value=500), seeds)
    @settings(max_examples=40, deadline=None)
    def test_deterministic_under_seed(self, profile, count, seed):
        first = build_workload(profile, count, seed=seed)
        second = build_workload(profile, count, seed=seed)
        assert first.queries == second.queries
        assert len(first) == count

    def test_universe_sizes_match_profiles(self):
        for name, profile in PROFILES.items():
            workload = build_workload(name, 10, seed=1)
            assert workload.universe_size == profile.universe_size
            assert workload.exponent == profile.exponent

    def test_paper_queries_dominate_the_head(self):
        # the paper queries hold the zipf head, so under the steep
        # cache_friendly profile the single most frequent query must
        # be one of them — the measured workload replays Tables 3/6
        workload = build_workload("cache_friendly", 2000, seed=9)
        frequency: dict = {}
        for query in workload.queries:
            frequency[query] = frequency.get(query, 0) + 1
        hottest = max(frequency, key=frequency.get)
        assert hottest in PAPER_QUERIES

    def test_hostile_profile_spreads_far_wider(self):
        friendly = build_workload("cache_friendly", 2000, seed=3)
        hostile = build_workload("cache_hostile", 2000, seed=3)
        assert len(set(hostile.queries)) \
            > len(set(friendly.queries)) * 4
        assert hostile.universe_size > 256  # default result cache

    def test_unknown_profile_names_the_known_ones(self):
        with pytest.raises(ValueError, match="cache_friendly"):
            build_workload("thundering_herd", 10)
