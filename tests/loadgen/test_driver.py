"""The open-loop driver against stub engines.

A stub with a known service time makes every driver claim checkable
without a real index: completion accounting, error capture, the
response-vs-service split (queue wait is *visible* — the whole point
of open-loop), saturation detection, and the multi-run sweep.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.loadgen import (OpenLoopDriver, build_workload,
                           fixed_rate_arrivals, saturation_sweep)


def instant_search(query, limit):
    return ["hit"] * min(3, limit if limit is not None else 3)


class TestDriverBasics:
    def test_completes_every_request(self):
        queries = [f"q{i}" for i in range(40)]
        driver = OpenLoopDriver(instant_search, queries,
                                fixed_rate_arrivals(2000.0, 40),
                                threads=4, limit=3)
        result = driver.run()
        assert result.completed == result.requests == 40
        assert result.errors == 0
        assert result.answered == 40
        assert result.percentile_source == "reservoir_exact"
        assert result.response["p99"] >= result.service["p50"] >= 0.0

    def test_records_are_kept_only_on_request(self):
        queries = ["a", "b"]
        arrivals = fixed_rate_arrivals(100.0, 2)
        lean = OpenLoopDriver(instant_search, queries, arrivals,
                              threads=1).run()
        assert lean.records is None
        full = OpenLoopDriver(instant_search, queries, arrivals,
                              threads=1, capture_results=True).run()
        assert len(full.records) == 2
        assert all(record.result == ["hit"] * 3
                   for record in full.records)

    def test_every_thread_participates(self):
        seen = set()

        def tracking(query, limit):
            seen.add(threading.current_thread().name)
            time.sleep(0.005)
            return ["hit"]

        OpenLoopDriver(tracking, ["q"] * 32,
                       fixed_rate_arrivals(5000.0, 32),
                       threads=4, name="spread").run()
        assert len(seen) == 4

    def test_errors_are_counted_not_fatal(self):
        def flaky(query, limit):
            if query == "boom":
                raise RuntimeError("engine exploded")
            return ["hit"]

        queries = ["ok", "boom", "ok", "boom", "ok"]
        result = OpenLoopDriver(flaky, queries,
                                fixed_rate_arrivals(1000.0, 5),
                                threads=2).run()
        assert result.completed == 5
        assert result.errors == 2
        assert result.answered == 3
        assert "RuntimeError: engine exploded" in result.error_samples

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="queries"):
            OpenLoopDriver(instant_search, ["a"], [0.0, 0.1])
        with pytest.raises(ValueError, match="thread"):
            OpenLoopDriver(instant_search, ["a"], [0.0], threads=0)

    def test_to_json_is_self_describing(self):
        queries = [f"q{i}" for i in range(50)]
        result = OpenLoopDriver(instant_search, queries,
                                fixed_rate_arrivals(300.0, 50),
                                threads=1, name="shape").run()
        data = result.to_json()
        assert data["name"] == "shape"
        assert data["requests"] == 50
        assert data["utilization"] <= 1.05
        for window in ("response_seconds", "service_seconds"):
            assert set(data[window]) \
                == {"p50", "p95", "p99", "max", "mean"}
            assert data[window]["p99"] <= data[window]["max"]

    def test_offered_rate_equals_configured_rate(self):
        # N arrivals span N-1 gaps: offered must read back as the
        # configured rate, not rate * N/(N-1)
        result = OpenLoopDriver(instant_search, ["q"] * 21,
                                fixed_rate_arrivals(200.0, 21),
                                threads=2).run()
        assert result.offered_qps == pytest.approx(200.0)

    def test_single_request_offered_rate_is_zero(self):
        # one arrival has no inter-arrival gap, hence no rate:
        # defined as 0.0, and utilization serializes as null
        result = OpenLoopDriver(instant_search, ["q"], [0.0],
                                threads=1).run()
        assert result.offered_qps == 0.0
        assert result.to_json()["utilization"] is None

    def test_result_exposes_its_histograms(self):
        result = OpenLoopDriver(instant_search, ["a", "b", "c"],
                                fixed_rate_arrivals(300.0, 3),
                                threads=1).run()
        for histogram in (result.response_histogram,
                          result.service_histogram):
            assert histogram.count == 3
            assert len(histogram.reservoir_values()) == 3
        assert "response_histogram" not in result.to_json()


class TestOpenLoopSemantics:
    def test_queue_wait_shows_in_response_not_service(self):
        # one worker, 5ms of service, offered 10x capacity: a closed
        # loop would report ~5ms everywhere; the open loop must show
        # response time >> service time because requests queue up
        def slow(query, limit):
            time.sleep(0.005)
            return ["hit"]

        result = OpenLoopDriver(slow, ["q"] * 60,
                                fixed_rate_arrivals(2000.0, 60),
                                threads=1).run()
        assert result.service["p50"] == pytest.approx(0.005, rel=0.9)
        assert result.response["p95"] > result.service["p95"] * 3
        assert result.achieved_qps < result.offered_qps * 0.5

    def test_under_capacity_response_tracks_service(self):
        def quick(query, limit):
            time.sleep(0.001)
            return ["hit"]

        result = OpenLoopDriver(quick, ["q"] * 50,
                                fixed_rate_arrivals(100.0, 50),
                                threads=4).run()
        assert result.achieved_qps > result.offered_qps * 0.9
        assert result.response["p50"] < 0.01


class TestSaturationSweep:
    def test_finds_the_knee(self):
        def slow(query, limit):
            time.sleep(0.002)
            return ["hit"]

        def run_at(rate):
            return OpenLoopDriver(
                slow, ["q"] * 100,
                fixed_rate_arrivals(rate, 100), threads=2).run()

        # capacity ≈ 2 threads / 2ms = ~1000 qps; 100 is comfortable,
        # 10000 is far past the knee
        sweep = saturation_sweep(run_at, [100.0, 10000.0])
        assert len(sweep["points"]) == 2
        assert sweep["points"][0]["utilization"] > 0.9
        assert sweep["points"][1]["utilization"] < 0.9
        assert sweep["saturated_at_offered_qps"] \
            == sweep["points"][1]["offered_qps"]
        assert sweep["saturation_qps"] >= sweep["points"][0]["achieved_qps"]

    def test_no_knee_reports_none(self):
        def quick(query, limit):
            return ["hit"]

        sweep = saturation_sweep(
            lambda rate: OpenLoopDriver(
                quick, ["q"] * 30, fixed_rate_arrivals(rate, 30),
                threads=2).run(),
            [50.0, 100.0])
        assert sweep["saturated_at_offered_qps"] is None


class TestWorkloadIntegration:
    def test_driver_replays_a_built_workload(self):
        workload = build_workload("cache_friendly", 30, seed=11)
        result = OpenLoopDriver(
            instant_search, workload.queries,
            fixed_rate_arrivals(3000.0, 30), threads=2,
            capture_results=True).run()
        assert result.completed == 30
        assert {record.query for record in result.records} \
            == set(workload.queries)


class TestMultiprocess:
    def test_shard_counts_preserve_the_total(self):
        from repro.loadgen.driver import _shard_counts

        assert _shard_counts(100, 3) == [34, 33, 33]
        assert _shard_counts(12, 4) == [3, 3, 3, 3]
        # fewer requests than processes: surplus shards get zero,
        # never inflating the run to `processes` requests
        assert _shard_counts(2, 4) == [1, 1, 0, 0]
        for count, processes in [(1, 1), (7, 2), (400, 7), (5, 8)]:
            assert sum(_shard_counts(count, processes)) == count

    def _mini_index_dir(self, tmp_path):
        from repro.search import InvertedIndex, save_index

        index = InvertedIndex("mini")
        for terms in (["goal", "messi"], ["pass", "corner"],
                      ["goal", "foul"]):
            doc_id = index.new_doc_id()
            index.index_terms(doc_id, "narration",
                              list(zip(terms, range(len(terms)))))
            index.store_value(doc_id, "doc_key", f"doc-{doc_id}")
        save_index(index, tmp_path, format="binary")
        return tmp_path

    def test_run_multiprocess_drives_exactly_count_requests(self,
                                                            tmp_path):
        from repro.loadgen import run_multiprocess

        report = run_multiprocess(
            self._mini_index_dir(tmp_path), "mini", "cache_friendly",
            count=10, rate=500.0, processes=3, threads=1)
        # 10 // 3 would silently drive 9; the remainder must survive
        assert report["requests"] == 10
        assert report["completed"] == 10
        assert report["errors"] == 0
        assert report["processes"] == 3
        # shards ship their reservoirs: merged percentiles are exact,
        # and the service window travels too (parity with in-process)
        assert report["percentile_source"] == "reservoir_exact"
        for window in ("response_seconds", "service_seconds"):
            assert set(report[window]) \
                == {"p50", "p95", "p99", "max", "mean"}
            assert report[window]["p50"] <= report[window]["p99"] \
                <= report[window]["max"]

    def test_run_multiprocess_with_fewer_requests_than_processes(
            self, tmp_path):
        from repro.loadgen import run_multiprocess

        report = run_multiprocess(
            self._mini_index_dir(tmp_path), "mini", "cache_friendly",
            count=2, rate=100.0, processes=4, threads=1)
        assert report["requests"] == 2
        assert report["completed"] == 2
        assert report["processes"] == 2
