"""Tests for the HTTP load-target client."""

import pytest

from repro.core import IndexName, KeywordSearchEngine
from repro.loadgen import (HttpSearchClient, HttpSearchError,
                           OpenLoopDriver, fixed_rate_arrivals,
                           wait_healthy)
from repro.serve import ReproService, ServiceConfig


@pytest.fixture(scope="module")
def served(pipeline, small_corpus, tmp_path_factory):
    directory = tmp_path_factory.mktemp("loadgen_http")
    result = pipeline.run_segmented(small_corpus.crawled, directory)
    config = ServiceConfig(directory, maintenance=False)
    with ReproService(config) as running:
        yield running, result
    result.close()


class TestClient:
    def test_hits_match_in_process_engine(self, served):
        service, result = served
        client = HttpSearchClient(service.url,
                                  index=IndexName.FULL_INF)
        engine = KeywordSearchEngine(
            result.index(IndexName.FULL_INF))
        ours = client.search("messi goal", limit=10)
        reference = engine.search("messi goal", limit=10)
        assert [(hit.doc_key, hit.score) for hit in ours] \
            == [(hit.doc_key, hit.score) for hit in reference]

    def test_full_application_path_has_results(self, served):
        service, _ = served
        hits = HttpSearchClient(service.url).search("goal", limit=5)
        assert len(hits) == 5

    def test_error_statuses_raise(self, served):
        service, _ = served
        client = HttpSearchClient(service.url, index="NOPE")
        with pytest.raises(HttpSearchError, match="400"):
            client.search("goal")

    def test_unreachable_server_raises(self):
        client = HttpSearchClient("http://127.0.0.1:9",
                                  timeout=0.5)
        with pytest.raises(HttpSearchError):
            client.search("goal")

    def test_wait_healthy(self, served):
        service, _ = served
        health = wait_healthy(service.url, timeout=5.0)
        assert health["status"] == "ok"

    def test_wait_healthy_times_out(self):
        with pytest.raises(HttpSearchError, match="not healthy"):
            wait_healthy("http://127.0.0.1:9", timeout=0.5)


class TestDriverIntegration:
    def test_open_loop_run_zero_errors(self, served):
        service, _ = served
        client = HttpSearchClient(service.url,
                                  index=IndexName.FULL_INF)
        queries = ["messi goal", "yellow card", "save", "foul"] * 25
        load = OpenLoopDriver(
            client.search, queries,
            fixed_rate_arrivals(200.0, len(queries)),
            threads=8, limit=10, name="http-smoke").run()
        assert load.errors == 0, load.error_samples
        assert load.completed == len(queries)
        assert load.answered > 0
        assert load.response["p99"] > 0
