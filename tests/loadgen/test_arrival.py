"""Arrival processes: seed-determinism and distributional shape.

A load test is only replayable if its schedule is a pure function of
the seed, and only meaningful if the Poisson process actually is
Poisson — both are pinned here, the former as a hypothesis property
over arbitrary (rate, count, seed), the latter statistically under a
fixed seed so the tolerance check can never flake.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.loadgen import (ARRIVAL_PROCESSES, arrival_times,
                           fixed_rate_arrivals, poisson_arrivals)

rates = st.floats(min_value=0.1, max_value=5000.0)
counts = st.integers(min_value=0, max_value=300)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestFixedRate:
    def test_metronome_spacing_is_exact(self):
        assert fixed_rate_arrivals(4.0, 4) == [0.0, 0.25, 0.5, 0.75]

    @given(rates, counts, seeds)
    @settings(max_examples=60, deadline=None)
    def test_deterministic_and_seed_independent(self, rate, count, seed):
        # the metronome ignores the seed — same schedule regardless
        assert fixed_rate_arrivals(rate, count, seed) \
            == fixed_rate_arrivals(rate, count, seed + 1)

    def test_bad_inputs_raise(self):
        with pytest.raises(ValueError):
            fixed_rate_arrivals(0.0, 5)
        with pytest.raises(ValueError):
            fixed_rate_arrivals(1.0, -1)


class TestPoisson:
    @given(rates, counts, seeds)
    @settings(max_examples=60, deadline=None)
    def test_deterministic_under_fixed_seed(self, rate, count, seed):
        first = poisson_arrivals(rate, count, seed)
        second = poisson_arrivals(rate, count, seed)
        assert first == second
        assert len(first) == count

    @given(rates, counts, seeds)
    @settings(max_examples=60, deadline=None)
    def test_starts_at_zero_and_never_goes_backwards(self, rate,
                                                     count, seed):
        offsets = poisson_arrivals(rate, count, seed)
        if count:
            assert offsets[0] == 0.0
        assert all(later >= earlier for earlier, later
                   in zip(offsets, offsets[1:]))

    def test_different_seeds_differ(self):
        assert poisson_arrivals(10.0, 50, seed=1) \
            != poisson_arrivals(10.0, 50, seed=2)

    def test_mean_gap_matches_rate(self):
        # fixed seed: the check is exact-reproducible, never flaky
        rate, count = 100.0, 5000
        offsets = poisson_arrivals(rate, count, seed=1234)
        mean_gap = offsets[-1] / (count - 1)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.05)

    def test_gaps_are_memoryless(self):
        # for an exponential, P(gap > mean) = 1/e ≈ 0.368 and the
        # standard deviation equals the mean — both fail for e.g. a
        # uniform or fixed-rate process
        rate, count = 50.0, 5000
        offsets = poisson_arrivals(rate, count, seed=99)
        gaps = [later - earlier for earlier, later
                in zip(offsets, offsets[1:])]
        mean = sum(gaps) / len(gaps)
        over_mean = sum(1 for gap in gaps if gap > mean) / len(gaps)
        assert over_mean == pytest.approx(1.0 / math.e, abs=0.03)
        variance = sum((gap - mean) ** 2 for gap in gaps) / len(gaps)
        assert math.sqrt(variance) == pytest.approx(mean, rel=0.1)


class TestDispatch:
    def test_registry_routes_both_processes(self):
        assert set(ARRIVAL_PROCESSES) == {"fixed", "poisson"}
        assert arrival_times("fixed", 2.0, 3) \
            == fixed_rate_arrivals(2.0, 3)
        assert arrival_times("poisson", 2.0, 3, seed=5) \
            == poisson_arrivals(2.0, 3, seed=5)

    def test_unknown_process_names_the_known_ones(self):
        with pytest.raises(ValueError, match="fixed.*poisson"):
            arrival_times("uniform", 2.0, 3)
