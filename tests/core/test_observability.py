"""Tests for the tracing + metrics layer.

Covers the span model (nesting, deterministic ids, stitching across
the process boundary), the metrics registry (bucket boundaries, the
Prometheus exporter), the pipeline/query wiring, and the guard that
disabled observability leaves pipeline output byte-identical.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core import IndexName, SemanticRetrievalPipeline
from repro.core.observability import (DEFAULT_LATENCY_BUCKETS, Histogram,
                                      MetricsRegistry, Observability,
                                      Span, Tracer, fold_cache_info,
                                      get_observability, observed,
                                      render_metrics, validate_trace)
from repro.core.resilience import (FaultPlan, FaultSpec, ResilienceConfig,
                                   RetryPolicy)
from repro.soccer import standard_corpus

#: per-match stage spans in a bare (no-resilience) run.
INGEST_STAGES = {"trad_index", "populate_basic", "basic_ext_index",
                 "extraction", "populate_full", "full_ext_index",
                 "inference", "full_inf_index", "phr_exp_index"}


def structure(node):
    """A trace tree reduced to what must be deterministic."""
    return {"name": node["name"], "span_id": node["span_id"],
            "children": [structure(child)
                         for child in node["children"]]}


def find_spans(node, name):
    found = [node] if node["name"] == name else []
    for child in node["children"]:
        found.extend(find_spans(child, name))
    return found


@pytest.fixture(scope="module")
def trace_corpus():
    from repro.soccer.names import FIXTURES
    return standard_corpus(fixtures=FIXTURES[:4], total_narrations=200)


class TestTracer:
    def test_spans_nest_and_time(self):
        tracer = Tracer(name="t")
        with tracer.span("outer", kind="demo") as outer:
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert outer.attributes == {"kind": "demo"}
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert outer.duration >= sum(c.duration
                                     for c in outer.children) >= 0

    def test_disabled_tracer_is_a_no_op(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything") as span:
            assert span is None
        tracer.event("ignored")
        assert tracer.current() is None
        assert tracer.to_json() == {"schema": "repro.trace/v1",
                                    "root": None}

    def test_events_attach_to_the_current_span(self):
        tracer = Tracer()
        with tracer.span("stage") as span:
            tracer.event("retry", attempt=1)
        assert span.events == [{"name": "retry", "attempt": 1}]

    def test_span_ids_are_deterministic_and_unique(self):
        def build():
            tracer = Tracer(name="repro")
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
                with tracer.span("b"):
                    pass
            return tracer.to_json()["root"]

        first, second = build(), build()
        assert structure(first) == structure(second)
        b_ids = [c["span_id"] for c in first["children"][0]["children"]]
        assert len(set(b_ids)) == 2  # same name, distinct path index

    def test_adopted_subtree_has_null_offset(self):
        worker = Tracer(name="match")
        with worker.span("inference"):
            pass
        worker.close()
        parent = Tracer(name="repro")
        with parent.span("ingest") as ingest:
            parent.adopt(worker.root, into=ingest)
        exported = parent.to_json()["root"]
        match = find_spans(exported, "match")[0]
        assert match["offset_seconds"] is None
        # children of the adopted root are same-process: offsets valid
        assert match["children"][0]["offset_seconds"] is not None

    def test_spans_pickle(self):
        tracer = Tracer(name="match")
        with tracer.span("inference"):
            tracer.event("retry", attempt=1)
        tracer.close()
        clone = pickle.loads(pickle.dumps(tracer.root))
        assert isinstance(clone, Span)
        assert clone.children[0].events[0]["name"] == "retry"

    def test_validate_trace_accepts_exports_and_rejects_tampering(self):
        tracer = Tracer(name="repro")
        with tracer.span("a"):
            pass
        data = tracer.to_json()
        validate_trace(data)  # must not raise
        bad = json.loads(json.dumps(data))
        bad["root"]["children"][0]["span_id"] = "not-hex"
        with pytest.raises(ValueError):
            validate_trace(bad)
        with pytest.raises(ValueError):
            validate_trace({"schema": "something/else"})
        missing = json.loads(json.dumps(data))
        del missing["root"]["duration_seconds"]
        with pytest.raises(ValueError):
            validate_trace(missing)


class TestMetrics:
    def test_counter_and_gauge_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "help text").inc()
        registry.counter("hits_total").inc(2)
        registry.gauge("depth", cache="a").set(7)
        data = registry.to_json()
        assert data["counters"]["hits_total"][0]["value"] == 3
        assert data["gauges"]["depth"][0] == {"labels": {"cache": "a"},
                                              "value": 7}

    def test_counters_refuse_to_go_down(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_collisions_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_disabled_registry_hands_out_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc()
        registry.histogram("b").observe(1.0)
        assert registry.to_json()["counters"] == {}

    def test_histogram_bucket_boundaries_are_inclusive(self):
        histogram = Histogram(buckets=(0.1, 0.2, 0.4))
        # a value equal to a bound lands in that bucket (le semantics)
        histogram.observe(0.1)
        histogram.observe(0.15)
        histogram.observe(0.2)
        histogram.observe(0.4)
        histogram.observe(99.0)   # overflow → +Inf slot
        assert histogram.bucket_counts == [1, 2, 1, 1]
        assert histogram.cumulative_counts() == [1, 3, 4, 5]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(99.85)

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("queries_total", "queries served",
                         engine="keyword").inc(4)
        histogram = registry.histogram("latency_seconds",
                                       buckets=(0.1, 0.5))
        histogram.observe(0.05)
        histogram.observe(0.3)
        text = registry.to_prometheus()
        assert "# HELP queries_total queries served" in text
        assert "# TYPE queries_total counter" in text
        assert 'queries_total{engine="keyword"} 4' in text
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="0.5"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert "latency_seconds_count 2" in text
        assert text.endswith("\n")

    def test_fold_cache_info_accepts_counters_and_mappings(self):
        from repro.core.profiling import CacheCounter
        registry = MetricsRegistry()
        counter = CacheCounter(hits=3, misses=1)
        fold_cache_info(registry, "indexer.labels", counter)
        fold_cache_info(registry, "plain", {"hits": 1, "misses": 0})
        gauges = registry.to_json()["gauges"]
        rates = {entry["labels"]["cache"]: entry["value"]
                 for entry in gauges["cache_hit_rate"]}
        assert rates == {"indexer.labels": 0.75, "plain": 1.0}

    def test_render_metrics_is_readable(self):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc(2)
        registry.histogram("latency_seconds", buckets=(1.0,)).observe(0.5)
        text = render_metrics(registry.to_json())
        assert "queries_total" in text
        assert "histogram latency_seconds" in text


class TestSwitchboard:
    def test_default_bundle_is_disabled(self):
        bundle = get_observability()
        assert not bundle.enabled

    def test_observed_installs_and_restores(self):
        before = get_observability()
        with observed() as bundle:
            assert get_observability() is bundle
            assert bundle.tracer.enabled and bundle.metrics.enabled
        assert get_observability() is before


class TestPipelineTracing:
    def run_traced(self, corpus, workers, **kwargs):
        bundle = Observability(tracing=True, metrics=True)
        result = SemanticRetrievalPipeline().run(
            corpus.crawled, workers=workers, observability=bundle,
            **kwargs)
        bundle.tracer.close()
        return result, bundle

    def test_trace_covers_every_ingest_stage(self, trace_corpus):
        result, bundle = self.run_traced(trace_corpus, workers=1)
        root = bundle.tracer.to_json()["root"]
        validate_trace(bundle.tracer.to_json())
        matches = find_spans(root, "match")
        assert len(matches) == len(trace_corpus.crawled)
        for match in matches:
            stages = {child["name"] for child in match["children"]}
            assert stages == INGEST_STAGES
        assert find_spans(root, "merge_indexes")

    def test_worker_spans_stitch_identically_at_workers_4(
            self, trace_corpus):
        serial, serial_bundle = self.run_traced(trace_corpus, workers=1)
        pooled, pooled_bundle = self.run_traced(trace_corpus, workers=4)
        serial_root = serial_bundle.tracer.to_json()["root"]
        pooled_root = pooled_bundle.tracer.to_json()["root"]
        validate_trace(pooled_bundle.tracer.to_json())
        # identical span names and deterministic ids, match order
        # preserved, regardless of which process ran which match
        assert structure(serial_root) == structure(pooled_root)
        assert all(serial.index(name).to_json()
                   == pooled.index(name).to_json()
                   for name in IndexName.BUILT)

    def test_profile_is_a_view_over_span_durations(self, trace_corpus):
        result, bundle = self.run_traced(trace_corpus, workers=1,
                                         profile=True)
        root = bundle.tracer.to_json()["root"]
        for match in find_spans(root, "match"):
            match_id = match["attributes"]["match_id"]
            recorded = result.profile.match_stages[match_id]
            for child in match["children"]:
                assert child["duration_seconds"] == pytest.approx(
                    recorded[child["name"]], abs=1e-6)

    def test_ingest_metrics_are_folded(self, trace_corpus):
        result, bundle = self.run_traced(trace_corpus, workers=1)
        data = bundle.metrics.to_json()
        total = data["counters"]["ingest_matches_total"][0]["value"]
        assert total == len(trace_corpus.crawled)
        stages = {entry["labels"]["stage"]: entry["value"] for entry in
                  data["counters"]["ingest_stage_seconds_total"]}
        assert set(stages) == INGEST_STAGES
        assert all(value > 0 for value in stages.values())
        histogram = data["histograms"]["ingest_match_seconds"][0]
        assert histogram["count"] == len(trace_corpus.crawled)
        caches = {entry["labels"]["cache"]
                  for entry in data["gauges"]["cache_hits"]}
        assert "stemmer.porter" in caches

    def test_retry_and_fault_events_attach_to_stage_spans(
            self, trace_corpus):
        poison = trace_corpus.crawled[1].match_id
        plan = FaultPlan(specs=(FaultSpec(stage="extractor",
                                          times=1,
                                          match_ids=frozenset({poison})),))
        config = ResilienceConfig(
            retry=RetryPolicy(max_retries=1, backoff_base=0.001),
            fault_plan=plan)
        bundle = Observability(tracing=True, metrics=True)
        SemanticRetrievalPipeline().run(
            trace_corpus.crawled, resilience=config,
            observability=bundle)
        root = bundle.tracer.to_json()["root"]
        injected = [match for match in find_spans(root, "match")
                    if match["attributes"]["match_id"] == poison]
        events = [event
                  for child in injected[0]["children"]
                  if child["name"] == "extraction"
                  for event in child["events"]]
        names = [event["name"] for event in events]
        assert "fault_injected" in names
        assert "retry" in names
        retry = events[names.index("retry")]
        assert retry["delay_seconds"] > 0

    def test_quarantine_events_attach_to_the_ingest_span(
            self, trace_corpus):
        poison = trace_corpus.crawled[2].match_id
        plan = FaultPlan(specs=(FaultSpec(stage="reasoner",
                                          mode="corrupt",
                                          match_ids=frozenset({poison})),))
        config = ResilienceConfig(
            retry=RetryPolicy(max_retries=0, backoff_base=0.001),
            degrade=True, fault_plan=plan)
        bundle = Observability(tracing=True, metrics=True)
        result = SemanticRetrievalPipeline().run(
            trace_corpus.crawled, resilience=config,
            observability=bundle)
        assert result.quarantine.match_ids() == [poison]
        root = bundle.tracer.to_json()["root"]
        ingest = find_spans(root, "ingest")[0]
        quarantines = [event for event in ingest["events"]
                       if event["name"] == "quarantine"]
        assert quarantines[0]["match_id"] == poison
        assert quarantines[0]["stage"] == "inference"
        counters = bundle.metrics.to_json()["counters"]
        assert counters["ingest_quarantined_total"][0]["value"] == 1

    def test_disabled_observability_is_byte_identical(self, trace_corpus):
        plain = SemanticRetrievalPipeline().run(trace_corpus.crawled)
        traced, _ = self.run_traced(trace_corpus, workers=1)
        for name in IndexName.BUILT:
            assert plain.index(name).to_json() \
                == traced.index(name).to_json()


class TestQueryPathTracing:
    @pytest.fixture(scope="class")
    def small_result(self, trace_corpus):
        return SemanticRetrievalPipeline().run(trace_corpus.crawled)

    def test_keyword_query_spans_and_metrics(self, small_result):
        with observed() as bundle:
            engine = small_result.engine(IndexName.FULL_INF)
            engine.search("messi goal", limit=3)
        root = bundle.tracer.to_json()["root"]
        queries = find_spans(root, "query")
        assert queries and queries[0]["attributes"]["engine"] == "keyword"
        child_names = [c["name"] for c in queries[0]["children"]]
        assert child_names == ["query.parse", "query.retrieve",
                               "query.score"]
        retrieve = find_spans(root, "query.retrieve")[0]
        assert retrieve["attributes"]["candidates"] > 0
        data = bundle.metrics.to_json()
        assert data["counters"]["queries_total"][0]["value"] == 1
        assert data["counters"]["query_postings_scanned_total"][0][
            "value"] > 0
        assert data["counters"]["query_candidates_scored_total"][0][
            "value"] > 0
        assert data["histograms"]["query_latency_seconds"][0][
            "count"] == 1

    def test_expansion_query_spans(self, small_result):
        with observed() as bundle:
            small_result.engine(IndexName.QUERY_EXP).search(
                "punishment", limit=3)
        root = bundle.tracer.to_json()["root"]
        assert find_spans(root, "query.expand")
        # the expansion wraps a nested keyword query span
        outer = find_spans(root, "query")[0]
        assert outer["attributes"]["engine"] == "query_exp"
        assert find_spans(outer, "query.retrieve")
        counters = bundle.metrics.to_json()["counters"]
        assert counters["query_expansions_total"][0]["value"] == 1

    def test_phrasal_query_spans(self, small_result):
        with observed() as bundle:
            small_result.engine(IndexName.PHR_EXP).search(
                "foul by Daniel", limit=3)
        root = bundle.tracer.to_json()["root"]
        query = find_spans(root, "query")[0]
        assert query["attributes"]["engine"] == "phrasal"
        parse = find_spans(query, "query.parse")[0]
        assert parse["attributes"]["phrasal"] is True

    def test_query_parser_span(self):
        from repro.core.indexer import default_index_analyzer
        from repro.search.query.parser import QueryParser
        parser = QueryParser("narration", default_index_analyzer())
        with observed() as bundle:
            parser.parse("goal -miss")
        root = bundle.tracer.to_json()["root"]
        assert find_spans(root, "query.parse")
        counters = bundle.metrics.to_json()["counters"]
        assert counters["query_parsed_total"][0]["value"] == 1
