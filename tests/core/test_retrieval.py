"""Tests for keyword retrieval, query expansion and phrasal search."""

import pytest

from repro.core import IndexName
from repro.core.expansion import QueryExpander
from repro.core.phrasal import PhrasalQueryParser
from repro.errors import QueryError
from repro.ontology import soccer_ontology


class TestKeywordSearchEngine:
    def test_search_returns_hits_with_keys(self, pipeline_result):
        hits = pipeline_result.engine(IndexName.FULL_INF).search(
            "goal", limit=5)
        assert len(hits) == 5
        for hit in hits:
            assert hit.doc_key
            assert hit.score > 0

    def test_scores_descending(self, pipeline_result):
        hits = pipeline_result.engine(IndexName.FULL_INF).search(
            "messi goal", limit=20)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_event_type_accessible(self, pipeline_result):
        [hit] = pipeline_result.engine(IndexName.FULL_INF).search(
            "goal", limit=1)
        assert "goal" in hit.event_type

    def test_all_goal_hits_before_any_miss(self, pipeline_result):
        """§3.6.2's motivating example: 'Ronaldo misses a goal' must
        rank below real goals for the query 'goal'."""
        hits = pipeline_result.engine(IndexName.FULL_INF).search("goal")
        event_types = [hit.event_type for hit in hits]
        first_miss = next((i for i, t in enumerate(event_types)
                           if "miss" in t), len(event_types))
        last_goal = max(i for i, t in enumerate(event_types)
                        if " goal " in f" {t} ")
        assert last_goal < first_miss

    def test_empty_query_rejected(self, pipeline_result):
        with pytest.raises(QueryError):
            pipeline_result.engine(IndexName.FULL_INF).search("")

    def test_stopword_only_query_rejected(self, pipeline_result):
        with pytest.raises(QueryError):
            pipeline_result.engine(IndexName.FULL_INF).search("the of")

    def test_worst_case_equals_traditional(self, pipeline_result):
        """§3.4/§4: narrations are preserved, so any query answerable
        by TRAD is answerable by the semantic indexes."""
        trad_hits = pipeline_result.engine(IndexName.TRAD).search(
            "scramble")
        inf_hits = pipeline_result.engine(IndexName.FULL_INF).search(
            "scramble")
        assert len(inf_hits) >= len(trad_hits) > 0


class TestQueryExpander:
    @pytest.fixture(scope="class")
    def expander(self):
        return QueryExpander(soccer_ontology())

    def test_verb_expansion(self, expander):
        expanded = expander.expand("goal")
        assert "scores" in expanded.split()

    def test_ontological_expansion(self, expander):
        """§5: 'punishment' is augmented with its subclasses."""
        expanded = expander.expand("punishment").split()
        assert "yellow" in expanded
        assert "red" in expanded
        assert "card" in expanded
        assert "book" in expanded or "booked" in expanded

    def test_original_terms_kept_first(self, expander):
        expanded = expander.expand("barcelona goal").split()
        assert expanded[:2] == ["barcelona", "goal"]

    def test_no_duplicates(self, expander):
        expanded = expander.expand("goal goal").split()
        assert len(expanded) == len(set(expanded)) + 1  # only the
        # literal duplicate from the input survives

    def test_unknown_terms_unchanged(self, expander):
        assert expander.expand("ronaldo") == "ronaldo"

    def test_expansion_search_runs(self, pipeline_result):
        hits = pipeline_result.expansion_engine.search("punishment",
                                                       limit=10)
        assert hits          # TRAD alone finds nothing for this


class TestPhrasalParser:
    @pytest.fixture(scope="class")
    def parser(self):
        return PhrasalQueryParser()

    def test_by_extracted(self, parser):
        plain, roles = parser.parse_parts("foul by Daniel")
        assert plain == ["foul"]
        assert roles == [("subjectPhrase", "by_daniel")]

    def test_by_and_to(self, parser):
        plain, roles = parser.parse_parts("foul by Daniel to florent")
        assert plain == ["foul"]
        assert set(roles) == {("subjectPhrase", "by_daniel"),
                              ("objectPhrase", "to_florent")}

    def test_of_maps_to_subject(self, parser):
        __, roles = parser.parse_parts("saves of Casillas")
        assert roles == [("subjectPhrase", "of_casillas")]

    def test_no_phrases_all_plain(self, parser):
        plain, roles = parser.parse_parts("messi goal")
        assert roles == []
        assert plain == ["messi", "goal"]

    def test_phrasal_search_discriminates_roles(self, pipeline_result,
                                                harness):
        """Table 6: by/to select the right role."""
        by_daniel = pipeline_result.phrasal_engine.search(
            "foul by Daniel to Florent")
        resolve = harness.judge.resolve
        gold = harness.judge.for_query("P-2")
        assert by_daniel
        assert resolve(by_daniel[0].doc_key) in gold

    def test_phrasal_empty_query_rejected(self, pipeline_result):
        with pytest.raises(QueryError):
            pipeline_result.phrasal_engine.search("")
