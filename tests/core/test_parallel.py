"""Parallel batch ingestion: parity with the serial path.

The acceptance bar is bit-identical output: ``workers=N`` must yield
the same indexes, rankings and inference results as ``workers=1``.
"""

import pytest

from repro.core import (IndexName, MatchProcessor, MatchTask,
                        ParallelPipelineExecutor,
                        SemanticRetrievalPipeline)


@pytest.fixture(scope="module")
def serial_result(small_corpus):
    return SemanticRetrievalPipeline().run(small_corpus.crawled, workers=1)


@pytest.fixture(scope="module")
def parallel_result(small_corpus):
    return SemanticRetrievalPipeline().run(small_corpus.crawled, workers=2)


class TestParallelParity:
    def test_indexes_bit_identical(self, serial_result, parallel_result):
        for name in IndexName.BUILT:
            assert serial_result.index(name).to_json() \
                == parallel_result.index(name).to_json(), name

    def test_rankings_identical(self, serial_result, parallel_result):
        for query in ("goal", "penalty save", "yellow card", "corner"):
            serial_hits = [(hit.doc_key, hit.score) for hit in
                           serial_result.engine(IndexName.FULL_INF)
                           .search(query, limit=20)]
            parallel_hits = [(hit.doc_key, hit.score) for hit in
                             parallel_result.engine(IndexName.FULL_INF)
                             .search(query, limit=20)]
            assert serial_hits == parallel_hits, query

    def test_inference_results_identical(self, serial_result,
                                         parallel_result):
        assert serial_result.violations == parallel_result.violations
        assert len(serial_result.inference_seconds) \
            == len(parallel_result.inference_seconds)
        for serial_model, parallel_model in zip(
                serial_result.inferred_models,
                parallel_result.inferred_models):
            assert serial_model.name == parallel_model.name
            assert serial_model.individual_count \
                == parallel_model.individual_count
            for individual in serial_model.individuals():
                other = parallel_model.individual(individual.uri)
                assert individual.types == other.types
                assert individual.properties == other.properties

    def test_persisted_models_identical(self, small_corpus, tmp_path):
        from repro.core import ModelStore
        pipeline = SemanticRetrievalPipeline()
        serial_store = ModelStore(tmp_path / "serial", pipeline.ontology)
        parallel_store = ModelStore(tmp_path / "parallel",
                                    pipeline.ontology)
        pipeline.run(small_corpus.crawled, store=serial_store, workers=1)
        pipeline.run(small_corpus.crawled, store=parallel_store,
                     workers=2)
        for stage in ("initial", "extracted", "inferred"):
            slugs = serial_store.list(stage)
            assert slugs == parallel_store.list(stage)
            for slug in slugs:
                serial_path = serial_store.root / stage / f"{slug}.nt"
                parallel_path = parallel_store.root / stage / f"{slug}.nt"
                assert sorted(serial_path.read_text().splitlines()) \
                    == sorted(parallel_path.read_text().splitlines())


class TestExecutor:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelPipelineExecutor(workers=0)

    def test_results_ordered_by_position(self, small_corpus):
        tasks = [MatchTask(position=index, crawled=crawled)
                 for index, crawled in enumerate(small_corpus.crawled)]
        executor = ParallelPipelineExecutor(workers=2)
        partials = executor.run(list(reversed(tasks)))
        assert [partial.position for partial in partials] \
            == sorted(task.position for task in tasks)

    def test_serial_reuses_one_processor(self, small_corpus):
        executor = ParallelPipelineExecutor(workers=1)
        executor.run([MatchTask(position=0,
                                crawled=small_corpus.crawled[0])])
        first = executor._processor
        executor.run([MatchTask(position=0,
                                crawled=small_corpus.crawled[0])])
        assert executor._processor is first


class TestMatchProcessor:
    def test_partial_contents(self, small_corpus):
        processor = MatchProcessor()
        crawled = small_corpus.crawled[0]
        partial = processor.process(MatchTask(position=3, crawled=crawled))
        assert partial.position == 3
        assert partial.match_id == crawled.match_id
        assert set(partial.indexes) == set(IndexName.BUILT)
        assert partial.indexes[IndexName.TRAD].doc_count \
            == len(crawled.narrations)
        assert partial.inferred_individuals
        assert partial.inference_seconds > 0
        assert "extraction" in partial.stage_seconds
        # intermediates only when asked for (they cost pickling)
        assert partial.basic_individuals is None
        assert partial.full_individuals is None

    def test_keep_intermediate(self, small_corpus):
        processor = MatchProcessor()
        partial = processor.process(MatchTask(
            position=0, crawled=small_corpus.crawled[0],
            keep_intermediate=True))
        assert partial.basic_individuals
        assert partial.full_individuals

    def test_work_unit_and_partial_pickle(self, small_corpus):
        import pickle
        task = MatchTask(position=0, crawled=small_corpus.crawled[0],
                         keep_intermediate=True)
        partial = MatchProcessor().process(pickle.loads(
            pickle.dumps(task)))
        restored = pickle.loads(pickle.dumps(partial))
        assert restored.match_id == partial.match_id
        assert restored.indexes[IndexName.FULL_INF].to_json() \
            == partial.indexes[IndexName.FULL_INF].to_json()
