"""Tests for user-feedback index expansion (§8 extension)."""

import pytest

from repro.core import IndexName
from repro.core.feedback import (Click, FeedbackLearner,
                                 FeedbackSearchEngine, FeedbackStore)
from repro.core.fields import F


@pytest.fixture(scope="module")
def full_inf(pipeline_result):
    return pipeline_result.index(IndexName.FULL_INF)


def _yellow_card_keys(index, count):
    keys = []
    for doc_id in range(index.doc_count):
        event = index.stored_value(doc_id, F.EVENT) or ""
        if "yellow card" in event:
            keys.append(index.stored_value(doc_id, F.DOC_KEY))
            if len(keys) == count:
                break
    return keys


class TestStore:
    def test_record_and_replay(self):
        store = FeedbackStore()
        store.record("booking", "doc1")
        store.record("booking", "doc2")
        assert len(store) == 2
        assert store.clicks()[0] == Click("booking", "doc1")


class TestLearner:
    def test_learns_after_min_support(self, full_inf):
        learner = FeedbackLearner(full_inf, min_support=3)
        store = FeedbackStore()
        for key in _yellow_card_keys(full_inf, 3):
            # "booking" does not occur in any semantic field
            store.record("booking", key)
        learned = learner.learn(store)
        booking_term = learner.analyzer.for_field(F.NARRATION).terms(
            "booking")[0]
        assert booking_term in learned
        assert "yellow" in learned[booking_term]
        assert "card" in learned[booking_term]

    def test_below_support_learns_nothing(self, full_inf):
        learner = FeedbackLearner(full_inf, min_support=3)
        store = FeedbackStore()
        for key in _yellow_card_keys(full_inf, 2):
            store.record("booking", key)
        assert learner.learn(store) == {}

    def test_inconsistent_clicks_learn_nothing(self, full_inf):
        """A term clicked on different event types must not latch onto
        either (the 'held on every click' conservatism)."""
        learner = FeedbackLearner(full_inf, min_support=2)
        store = FeedbackStore()
        yellow = _yellow_card_keys(full_inf, 2)
        # find a foul doc
        foul_key = None
        for doc_id in range(full_inf.doc_count):
            event = full_inf.stored_value(doc_id, F.EVENT) or ""
            if "foul" in event and "yellow" not in event:
                foul_key = full_inf.stored_value(doc_id, F.DOC_KEY)
                break
        for key in (*yellow, foul_key):
            store.record("booking", key)
        learned = learner.learn(store)
        # "yellow" appeared in 2 of 3 clicks → rejected
        for terms in learned.values():
            assert "yellow" not in terms

    def test_already_matching_terms_not_expanded(self, full_inf):
        learner = FeedbackLearner(full_inf, min_support=1)
        store = FeedbackStore()
        for key in _yellow_card_keys(full_inf, 3):
            store.record("yellow", key)      # already in the event field
        assert learner.learn(store) == {}

    def test_invalid_min_support(self, full_inf):
        with pytest.raises(ValueError):
            FeedbackLearner(full_inf, min_support=0)

    def test_unknown_doc_keys_ignored(self, full_inf):
        learner = FeedbackLearner(full_inf, min_support=1)
        store = FeedbackStore()
        store.record("booking", "no-such-doc")
        assert learner.learn(store) == {}


class TestFeedbackSearchEngine:
    def test_vocabulary_gap_closed_by_feedback(self, full_inf, corpus,
                                               harness):
        """The §8 scenario end-to-end: 'booking' finds nothing in the
        semantic fields at first; after three clicks on yellow-card
        events it retrieves cards directly."""
        from repro.evaluation import average_precision
        engine = FeedbackSearchEngine(full_inf, min_support=3)
        judge = harness.judge
        gold = judge.for_query("Q-4")        # all punishments

        def ap():
            hits = engine.search("booking")
            return average_precision([h.doc_key for h in hits], gold,
                                     judge.resolve)

        before = ap()
        # before feedback only the cards *narrated* with "booked…"
        # match (via the free-text field) — the "shown the yellow
        # card" ones are invisible to this vocabulary
        assert before < 0.9

        for key in _yellow_card_keys(full_inf, 3):
            engine.record_click("booking", key)
        learned = engine.refresh()
        assert learned

        after = ap()
        assert after > before + 0.2
        assert "yellow card" in engine.search("booking",
                                              limit=1)[0].event_type

    def test_expand_query_is_additive(self, full_inf):
        engine = FeedbackSearchEngine(full_inf, min_support=1)
        engine._expansions = {"book": ["yellow", "card"]}
        expanded = engine.expand_query("booking alex")
        assert expanded.startswith("booking alex")
        assert "yellow" in expanded

    def test_no_expansions_leaves_query_untouched(self, full_inf):
        engine = FeedbackSearchEngine(full_inf)
        assert engine.expand_query("messi goal") == "messi goal"
