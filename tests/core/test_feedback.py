"""Tests for user-feedback index expansion (§8 extension)."""

import pytest

from repro.core import IndexName
from repro.core.feedback import (Click, FeedbackLearner,
                                 FeedbackSearchEngine, FeedbackStore)
from repro.core.fields import F


@pytest.fixture(scope="module")
def full_inf(pipeline_result):
    return pipeline_result.index(IndexName.FULL_INF)


def _yellow_card_keys(index, count):
    keys = []
    for doc_id in range(index.doc_count):
        event = index.stored_value(doc_id, F.EVENT) or ""
        if "yellow card" in event:
            keys.append(index.stored_value(doc_id, F.DOC_KEY))
            if len(keys) == count:
                break
    return keys


class TestStore:
    def test_record_and_replay(self):
        store = FeedbackStore()
        store.record("booking", "doc1")
        store.record("booking", "doc2")
        assert len(store) == 2
        assert store.clicks()[0] == Click("booking", "doc1")


class TestLearner:
    def test_learns_after_min_support(self, full_inf):
        learner = FeedbackLearner(full_inf, min_support=3)
        store = FeedbackStore()
        for key in _yellow_card_keys(full_inf, 3):
            # "booking" does not occur in any semantic field
            store.record("booking", key)
        learned = learner.learn(store)
        booking_term = learner.analyzer.for_field(F.NARRATION).terms(
            "booking")[0]
        assert booking_term in learned
        assert "yellow" in learned[booking_term]
        assert "card" in learned[booking_term]

    def test_below_support_learns_nothing(self, full_inf):
        learner = FeedbackLearner(full_inf, min_support=3)
        store = FeedbackStore()
        for key in _yellow_card_keys(full_inf, 2):
            store.record("booking", key)
        assert learner.learn(store) == {}

    def test_inconsistent_clicks_learn_nothing(self, full_inf):
        """A term clicked on different event types must not latch onto
        either (the 'held on every click' conservatism)."""
        learner = FeedbackLearner(full_inf, min_support=2)
        store = FeedbackStore()
        yellow = _yellow_card_keys(full_inf, 2)
        # find a foul doc
        foul_key = None
        for doc_id in range(full_inf.doc_count):
            event = full_inf.stored_value(doc_id, F.EVENT) or ""
            if "foul" in event and "yellow" not in event:
                foul_key = full_inf.stored_value(doc_id, F.DOC_KEY)
                break
        for key in (*yellow, foul_key):
            store.record("booking", key)
        learned = learner.learn(store)
        # "yellow" appeared in 2 of 3 clicks → rejected
        for terms in learned.values():
            assert "yellow" not in terms

    def test_already_matching_terms_not_expanded(self, full_inf):
        learner = FeedbackLearner(full_inf, min_support=1)
        store = FeedbackStore()
        for key in _yellow_card_keys(full_inf, 3):
            store.record("yellow", key)      # already in the event field
        assert learner.learn(store) == {}

    def test_invalid_min_support(self, full_inf):
        with pytest.raises(ValueError):
            FeedbackLearner(full_inf, min_support=0)

    def test_unknown_doc_keys_ignored(self, full_inf):
        learner = FeedbackLearner(full_inf, min_support=1)
        store = FeedbackStore()
        store.record("booking", "no-such-doc")
        assert learner.learn(store) == {}


class TestFeedbackSearchEngine:
    def test_vocabulary_gap_closed_by_feedback(self, full_inf, corpus,
                                               harness):
        """The §8 scenario end-to-end: 'booking' finds nothing in the
        semantic fields at first; after three clicks on yellow-card
        events it retrieves cards directly."""
        from repro.evaluation import average_precision
        engine = FeedbackSearchEngine(full_inf, min_support=3)
        judge = harness.judge
        gold = judge.for_query("Q-4")        # all punishments

        def ap():
            hits = engine.search("booking")
            return average_precision([h.doc_key for h in hits], gold,
                                     judge.resolve)

        before = ap()
        # before feedback only the cards *narrated* with "booked…"
        # match (via the free-text field) — the "shown the yellow
        # card" ones are invisible to this vocabulary
        assert before < 0.9

        for key in _yellow_card_keys(full_inf, 3):
            engine.record_click("booking", key)
        learned = engine.refresh()
        assert learned

        after = ap()
        assert after > before + 0.2
        assert "yellow card" in engine.search("booking",
                                              limit=1)[0].event_type

    def test_expand_query_is_additive(self, full_inf):
        engine = FeedbackSearchEngine(full_inf, min_support=1)
        engine._expansions = {"book": ["yellow", "card"]}
        expanded = engine.expand_query("booking alex")
        assert expanded.startswith("booking alex")
        assert "yellow" in expanded

    def test_no_expansions_leaves_query_untouched(self, full_inf):
        engine = FeedbackSearchEngine(full_inf)
        assert engine.expand_query("messi goal") == "messi goal"


class TestStoreThreadSafety:
    def test_concurrent_record_and_snapshot(self):
        """/feedback and /search race in the service; appends and
        snapshots must interleave without loss or error."""
        import threading
        store = FeedbackStore()
        writers = 4
        per_writer = 500
        errors = []

        def write(tag):
            try:
                for number in range(per_writer):
                    store.record(f"q{tag}", f"doc{tag}_{number}")
            except Exception as error:   # noqa: BLE001
                errors.append(repr(error))

        def read():
            try:
                while len(store) < writers * per_writer:
                    snapshot = store.clicks()
                    # the snapshot is independent: iterating it while
                    # writers append must never blow up
                    assert len(list(snapshot)) == len(snapshot)
            except Exception as error:   # noqa: BLE001
                errors.append(repr(error))

        threads = [threading.Thread(target=write, args=(tag,))
                   for tag in range(writers)]
        threads.append(threading.Thread(target=read))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert len(store) == writers * per_writer


class TestDocKeyMapRefresh:
    """The staleness bugfix: documents added after the learner was
    built must be learnable once the index generation moves."""

    def _miniature_index(self):
        from repro.core.indexer import default_index_analyzer
        from repro.search import Document, Field, InvertedIndex
        from repro.search.index import IndexWriter
        index = InvertedIndex(name="mini")
        writer = IndexWriter(index, default_index_analyzer())
        return index, writer

    @staticmethod
    def _event_doc(key, event):
        from repro.search import Document, Field
        return Document([
            Field(F.DOC_KEY, key, indexed=False),
            Field(F.EVENT, event),
            Field(F.NARRATION, "something happens"),
        ])

    def test_late_documents_become_learnable(self):
        index, writer = self._miniature_index()
        writer.add_document(self._event_doc("d0", "goal"))
        learner = FeedbackLearner(index, min_support=2)

        # these documents did not exist when the learner was built
        writer.add_document(self._event_doc("d1", "yellow card"))
        writer.add_document(self._event_doc("d2", "yellow card"))

        store = FeedbackStore()
        store.record("booking", "d1")
        store.record("booking", "d2")
        learned = learner.learn(store)
        term = learner.analyzer.for_field(F.NARRATION).terms(
            "booking")[0]
        assert term in learned
        assert "yellow" in learned[term]

    def test_map_cached_until_generation_moves(self):
        index, writer = self._miniature_index()
        writer.add_document(self._event_doc("d0", "goal"))
        learner = FeedbackLearner(index, min_support=1)
        first = learner._doc_key_map()
        assert learner._doc_key_map() is first       # same generation
        writer.add_document(self._event_doc("d1", "save"))
        second = learner._doc_key_map()
        assert second is not first
        assert "d1" in second

    def test_segmented_backend_duck_typed(self, pipeline,
                                          small_corpus, tmp_path):
        from repro.core import IndexName
        result = pipeline.run_segmented(small_corpus.crawled, tmp_path)
        try:
            index = result.index(IndexName.FULL_INF)
            learner = FeedbackLearner(index, min_support=1)
            mapping = learner._doc_key_map()
            assert len(mapping) == index.doc_count
            key = index.stored_value(0, F.DOC_KEY)
            assert mapping[key] == 0
        finally:
            result.close()
