"""Tests for the end-to-end pipeline (Fig. 1)."""

import pytest

from repro.core import IndexName, SemanticRetrievalPipeline


class TestPipelineOutputs:
    def test_all_indexes_built(self, pipeline_result):
        for name in (*IndexName.LADDER, IndexName.PHR_EXP):
            assert pipeline_result.index(name).doc_count > 0

    def test_engines_for_ladder(self, pipeline_result):
        for name in IndexName.LADDER:
            assert pipeline_result.engine(name) is not None

    def test_engine_resolves_phrasal_and_expansion(self, pipeline_result):
        from repro.core import ExpandedSearchEngine, PhrasalSearchEngine
        assert pipeline_result.engine(IndexName.PHR_EXP) \
            is pipeline_result.phrasal_engine
        assert isinstance(pipeline_result.engine(IndexName.PHR_EXP),
                          PhrasalSearchEngine)
        assert pipeline_result.engine(IndexName.QUERY_EXP) \
            is pipeline_result.expansion_engine
        assert isinstance(pipeline_result.engine(IndexName.QUERY_EXP),
                          ExpandedSearchEngine)

    def test_engine_unknown_name_lists_available(self, pipeline_result):
        with pytest.raises(KeyError) as excinfo:
            pipeline_result.engine("BOGUS")
        message = str(excinfo.value)
        assert "BOGUS" in message
        # every engine the caller could have meant is listed
        for name in (*IndexName.LADDER, IndexName.PHR_EXP,
                     IndexName.QUERY_EXP):
            assert name in message, name

    def test_inferred_models_per_match(self, corpus, pipeline_result):
        assert len(pipeline_result.inferred_models) == len(corpus.matches)

    def test_inference_times_recorded(self, corpus, pipeline_result):
        times = pipeline_result.inference_seconds
        assert len(times) == len(corpus.matches)
        assert all(t > 0 for t in times)

    def test_index_names(self, pipeline_result):
        assert pipeline_result.index(IndexName.TRAD).name == "TRAD"
        assert pipeline_result.index(IndexName.FULL_INF).name == "FULL_INF"

    def test_inferred_models_are_consistent(self, pipeline, small_corpus):
        result = pipeline.run(small_corpus.crawled,
                              check_consistency=True)
        assert result.violations == 0

    def test_full_inf_has_more_docs_than_full_ext(self, pipeline_result):
        """Rules create new individuals (assists), so the inferred
        index grows."""
        full_inf = pipeline_result.index(IndexName.FULL_INF).doc_count
        full_ext = pipeline_result.index(IndexName.FULL_EXT).doc_count
        assert full_inf > full_ext

    def test_deterministic_rebuild(self, pipeline, small_corpus):
        first = pipeline.run(small_corpus.crawled)
        second = pipeline.run(small_corpus.crawled)
        for name in IndexName.LADDER:
            assert first.index(name).to_json() \
                == second.index(name).to_json()

    def test_fresh_pipeline_reuses_shared_tbox(self, small_corpus):
        a = SemanticRetrievalPipeline()
        b = SemanticRetrievalPipeline()
        assert a.ontology is b.ontology      # lru_cached singleton

    def test_staged_models_persisted(self, pipeline, small_corpus,
                                     tmp_path):
        """§3.1 steps 3/5/7: the initial, extracted and inferred OWL
        files are written when a store is provided."""
        from repro.core import ModelStore
        store = ModelStore(tmp_path, pipeline.ontology)
        pipeline.run(small_corpus.crawled, store=store)
        for stage in ("initial", "extracted", "inferred"):
            assert len(store.list(stage)) == len(small_corpus.matches)
        # the inferred model reloads and still contains rule output
        from repro.rdf import SOCCER
        slug = store.list("inferred")[0]
        model = store.load("inferred", slug)
        goals = list(model.individuals(SOCCER.Goal))
        if goals:
            assert goals[0].get(SOCCER.subjectTeam)    # rule-filled


class TestSegmentedPipeline:
    """run_segmented: segment-native ingestion parity with run()."""

    def test_segments_match_monolithic_bit_for_bit(
            self, pipeline, small_corpus, tmp_path):
        mono = pipeline.run(small_corpus.crawled)
        segmented = pipeline.run_segmented(small_corpus.crawled,
                                           tmp_path, segment_size=1)
        with segmented:
            for name in IndexName.BUILT:
                index = segmented.index(name)
                assert index.segment_count == len(small_corpus.matches)
                assert index.to_inverted().to_json() \
                    == mono.index(name).to_json()
            assert segmented.match_ids \
                == [m.match_id for m in small_corpus.crawled]
            assert len(segmented.inference_seconds) \
                == len(small_corpus.matches)

    def test_worker_pool_builds_identical_segments(
            self, pipeline, small_corpus, tmp_path):
        """workers=2 seals the same bytes as workers=1 — the parent
        pre-assigns segment files, workers write them, one commit."""
        serial = pipeline.run_segmented(small_corpus.crawled,
                                        tmp_path / "serial",
                                        workers=1, segment_size=1)
        pooled = pipeline.run_segmented(small_corpus.crawled,
                                        tmp_path / "pooled",
                                        workers=2, segment_size=1)
        with serial, pooled:
            for name in IndexName.BUILT:
                ours = [(info.file,
                         (tmp_path / "pooled"
                          / f"{name}.segd" / info.file).read_bytes())
                        for info in pooled.index(name).segment_infos()]
                reference = [(info.file,
                              (tmp_path / "serial"
                               / f"{name}.segd" / info.file).read_bytes())
                             for info in serial.index(name).segment_infos()]
                assert ours == reference

    def test_appending_a_second_run_bumps_generation(
            self, pipeline, small_corpus, tmp_path):
        first = pipeline.run_segmented(small_corpus.crawled, tmp_path)
        first.close()
        second = pipeline.run_segmented(small_corpus.crawled, tmp_path)
        with second:
            index = second.index(IndexName.TRAD)
            assert index.generation == 2
            assert index.segment_count == 2 * len(small_corpus.matches)

    def test_saved_segments_auto_detected_by_load_index(
            self, pipeline, small_corpus, tmp_path):
        from repro.search.index import SegmentedIndex, list_indexes, \
            load_index
        result = pipeline.run_segmented(small_corpus.crawled, tmp_path)
        result.close()
        assert list_indexes(tmp_path) == sorted(IndexName.BUILT)
        loaded = load_index(tmp_path, IndexName.FULL_INF)
        assert isinstance(loaded, SegmentedIndex)
        assert loaded.doc_count > 0
        loaded.close()

    def test_segment_size_validated(self, pipeline, small_corpus,
                                    tmp_path):
        with pytest.raises(ValueError):
            pipeline.run_segmented(small_corpus.crawled, tmp_path,
                                   segment_size=0)
