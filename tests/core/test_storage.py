"""Tests for model storage and index merging."""

import pytest

from repro.core import IndexName, SemanticIndexer
from repro.core.storage import ModelStore
from repro.errors import ReproError
from repro.extraction import InformationExtractor
from repro.ontology import soccer_ontology
from repro.population import OntologyPopulator
from repro.rdf import SOCCER
from repro.search import IndexSearcher, TermQuery
from repro.soccer import SimulatedCrawler, build_teams


@pytest.fixture(scope="module")
def model_pair():
    """Two independent match models (the per-match 'OWL files')."""
    ontology = soccer_ontology()
    populator = OntologyPopulator(ontology)
    crawler = SimulatedCrawler(build_teams(), seed=77)
    models = {}
    for home, away, date in (("Barcelona", "Chelsea", "2009-05-06"),
                             ("Arsenal", "Liverpool", "2009-04-21")):
        crawled = crawler.crawl_match(home, away, date)
        extractor = InformationExtractor(crawled)
        models[crawled.match_id] = populator.populate_full(
            crawled, extractor.extract_all())
    return ontology, models


class TestModelStore:
    def test_round_trip(self, model_pair, tmp_path):
        ontology, models = model_pair
        store = ModelStore(tmp_path, ontology)
        match_id, model = next(iter(models.items()))
        path = store.save("extracted", match_id, model)
        assert path.exists()
        loaded = store.load("extracted", match_id)
        assert loaded.individual_count == model.individual_count
        # spot-check one individual survives with its properties
        original = next(model.individuals(SOCCER.Goal), None)
        if original is not None:
            reloaded = loaded.individual(original.uri)
            assert reloaded.types == original.types
            assert reloaded.get(SOCCER.scorerPlayer) \
                == original.get(SOCCER.scorerPlayer)

    def test_save_all_and_list(self, model_pair, tmp_path):
        ontology, models = model_pair
        store = ModelStore(tmp_path, ontology)
        paths = store.save_all("initial", models)
        assert len(paths) == 2
        assert len(store.list("initial")) == 2
        assert store.list("inferred") == []

    def test_unknown_stage_rejected(self, model_pair, tmp_path):
        ontology, __ = model_pair
        store = ModelStore(tmp_path, ontology)
        with pytest.raises(ReproError):
            store.save("bogus", "m", ontology.spawn_abox("m"))
        with pytest.raises(ReproError):
            store.list("bogus")

    def test_missing_model_rejected(self, model_pair, tmp_path):
        ontology, __ = model_pair
        store = ModelStore(tmp_path, ontology)
        with pytest.raises(ReproError):
            store.load("inferred", "ghost_match")


class TestIndexMerge:
    def test_incremental_indexing_equals_batch(self, model_pair):
        """Per-match indexes merged together must behave exactly like
        one batch-built index — the incremental-update path."""
        ontology, models = model_pair
        indexer = SemanticIndexer(ontology)
        model_list = list(models.values())

        batch = indexer.build_semantic(model_list, "batch")
        merged = indexer.build_semantic(model_list[:1], "merged")
        increment = indexer.build_semantic(model_list[1:], "increment")
        offset = merged.merge(increment)

        assert offset == increment.doc_count \
            or offset == merged.doc_count - increment.doc_count
        assert merged.doc_count == batch.doc_count
        # identical postings statistics for a sample of terms
        for field_name, term in (("event", "goal"), ("event", "foul"),
                                 ("subjectPlayer", "messi")):
            assert merged.doc_frequency(field_name, term) \
                == batch.doc_frequency(field_name, term)

    def test_merged_index_searchable(self, model_pair):
        ontology, models = model_pair
        indexer = SemanticIndexer(ontology)
        model_list = list(models.values())
        merged = indexer.build_semantic(model_list[:1], "m")
        merged.merge(indexer.build_semantic(model_list[1:], "i"))
        searcher = IndexSearcher(merged)
        top = searcher.search(TermQuery("event", "foul"))
        assert len(top) > 0
        # hits from both halves of the merge
        assert min(top.doc_ids()) < merged.doc_count // 2 \
            < max(top.doc_ids())

    def test_merge_preserves_boosts_and_lengths(self, model_pair):
        ontology, models = model_pair
        indexer = SemanticIndexer(ontology)
        model_list = list(models.values())
        base = indexer.build_semantic(model_list[:1], "base")
        incoming = indexer.build_semantic(model_list[1:], "inc")
        sample_doc = 0
        boost_before = incoming.field_boost("event", sample_doc)
        length_before = incoming.field_length("event", sample_doc)
        offset = base.merge(incoming)
        assert base.field_boost("event", offset + sample_doc) \
            == boost_before
        assert base.field_length("event", offset + sample_doc) \
            == length_before

    def test_merge_empty_index_is_noop(self, model_pair):
        from repro.search import InvertedIndex
        ontology, models = model_pair
        indexer = SemanticIndexer(ontology)
        index = indexer.build_semantic(list(models.values())[:1], "x")
        before = index.to_json()
        index.merge(InvertedIndex("empty"))
        assert index.to_json() == before
