"""Tests for the semantic indexer (Tables 1 and 2 structure)."""

import pytest

from repro.core import F, IndexName
from repro.core.fields import camel_to_words, class_label
from repro.ontology import soccer_ontology
from repro.rdf import SOCCER


class TestLabelRendering:
    def test_camel_to_words(self):
        assert camel_to_words("YellowCard") == "yellow card"
        assert camel_to_words("Goal") == "goal"
        assert camel_to_words("UnknownEvent") == "unknown event"

    def test_class_label_uses_declared_label(self):
        onto = soccer_ontology()
        # the paper calls MissedGoal "Miss"
        assert class_label(onto, SOCCER.MissedGoal) == "miss"
        assert class_label(onto, SOCCER.YellowCard) == "yellow card"


class TestTraditionalIndex:
    def test_one_doc_per_narration(self, corpus, pipeline_result):
        index = pipeline_result.index(IndexName.TRAD)
        assert index.doc_count == corpus.narration_count == 1182

    def test_only_narration_searchable(self, pipeline_result):
        index = pipeline_result.index(IndexName.TRAD)
        assert index.postings(F.EVENT, "goal") is None
        assert index.unique_term_count(F.NARRATION) > 100


class TestSemanticIndexStructure:
    """Table 1: one document per event with semantic fields."""

    def test_full_ext_doc_count(self, corpus, pipeline_result):
        index = pipeline_result.index(IndexName.FULL_EXT)
        # one doc per narration (902 typed + 280 unknown)
        assert index.doc_count == corpus.narration_count

    def test_basic_ext_has_fact_docs_plus_narrations(self, corpus,
                                                     pipeline_result):
        index = pipeline_result.index(IndexName.BASIC_EXT)
        facts = sum(len(c.goals) + len(c.substitutions) + len(c.bookings)
                    for c in corpus.crawled)
        assert index.doc_count == corpus.narration_count + facts

    def test_event_field_has_type_label(self, pipeline_result):
        index = pipeline_result.index(IndexName.FULL_EXT)
        assert index.postings(F.EVENT, "foul") is not None
        assert index.postings(F.EVENT, "corner") is not None

    def test_extracted_event_field_is_asserted_type_only(
            self, pipeline_result):
        """FULL_EXT must not contain inferred supertypes — that is
        exactly what separates it from FULL_INF (Q-4's 0% vs 100%)."""
        index = pipeline_result.index(IndexName.FULL_EXT)
        assert index.postings(F.EVENT, "punishment") is None

    def test_inferred_event_field_has_all_supertypes(
            self, pipeline_result):
        """Table 2: 'Negative event foul'."""
        from repro.search.analysis import stem
        index = pipeline_result.index(IndexName.FULL_INF)
        assert index.postings(F.EVENT, stem("punishment")) is not None
        assert index.postings(F.EVENT, stem("negative")) is not None

    def test_match_context_fields(self, pipeline_result):
        index = pipeline_result.index(IndexName.FULL_EXT)
        assert index.postings(F.TEAM1, "barcelona") is not None
        assert index.postings(F.DATE, "2009") is not None

    def test_event_field_boost_applied(self, pipeline_result):
        index = pipeline_result.index(IndexName.FULL_EXT)
        postings = index.postings(F.EVENT, "foul")
        doc_id = next(iter(postings)).doc_id
        assert index.field_boost(F.EVENT, doc_id) == 6.0

    def test_subject_player_fields(self, pipeline_result):
        index = pipeline_result.index(IndexName.FULL_EXT)
        assert index.postings(F.SUBJECT_PLAYER, "messi") is not None

    def test_doc_key_stored(self, pipeline_result):
        index = pipeline_result.index(IndexName.FULL_EXT)
        doc = index.stored_document(0)
        assert doc.get(F.DOC_KEY)


class TestInferredOnlyFields:
    """Table 2's additional fields exist only in FULL_INF."""

    def test_player_prop_fields(self, pipeline_result):
        inferred = pipeline_result.index(IndexName.FULL_INF)
        extracted = pipeline_result.index(IndexName.FULL_EXT)
        # stemmed "goalkeeper" → "goalkeep"
        assert inferred.postings(F.SUBJECT_PLAYER_PROP, "goalkeep") \
            is not None
        assert extracted.postings(F.SUBJECT_PLAYER_PROP, "goalkeep") \
            is None

    def test_defence_player_labels(self, pipeline_result):
        """Table 2: 'Left back defence player'."""
        from repro.search.analysis import stem
        inferred = pipeline_result.index(IndexName.FULL_INF)
        assert inferred.postings(F.SUBJECT_PLAYER_PROP,
                                 stem("defence")) is not None
        assert inferred.postings(F.SUBJECT_PLAYER_PROP, "back") is not None
        assert inferred.postings(F.SUBJECT_PLAYER_PROP, "player") is not None

    def test_from_rules_field(self, pipeline_result):
        from repro.search.analysis import stem
        inferred = pipeline_result.index(IndexName.FULL_INF)
        # "actor of negative move" → stemmed tokens
        assert inferred.postings(F.FROM_RULES, stem("negative")) \
            is not None
        assert inferred.postings(F.FROM_RULES, stem("moves")) is not None
        assert inferred.postings(F.FROM_RULES, "actor") is not None

    def test_team_roles_filled_by_rules(self, pipeline_result):
        """Table 1 note: subjectTeam/objectTeam filled by rules."""
        inferred = pipeline_result.index(IndexName.FULL_INF)
        extracted = pipeline_result.index(IndexName.FULL_EXT)
        assert inferred.postings(F.SUBJECT_TEAM, "barcelona") is not None
        assert extracted.postings(F.SUBJECT_TEAM, "barcelona") is None

    def test_inferred_index_contains_rule_created_assists(
            self, pipeline_result):
        inferred = pipeline_result.index(IndexName.FULL_INF)
        extracted = pipeline_result.index(IndexName.FULL_EXT)
        assert inferred.postings(F.EVENT, "assist") is not None
        assert extracted.postings(F.EVENT, "assist") is None


class TestPhrasalIndex:
    def test_phrase_fields_only_in_phr_exp(self, pipeline_result):
        phr = pipeline_result.index(IndexName.PHR_EXP)
        inf = pipeline_result.index(IndexName.FULL_INF)
        assert phr.postings(F.SUBJECT_PHRASE, "by_daniel") is not None
        assert inf.postings(F.SUBJECT_PHRASE, "by_daniel") is None

    def test_object_phrase_prefix(self, pipeline_result):
        phr = pipeline_result.index(IndexName.PHR_EXP)
        assert phr.postings(F.OBJECT_PHRASE, "to_florent") is not None

    def test_of_prefix_on_subjects(self, pipeline_result):
        phr = pipeline_result.index(IndexName.PHR_EXP)
        assert phr.postings(F.SUBJECT_PHRASE, "of_daniel") is not None
