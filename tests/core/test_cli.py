"""Tests for the command-line interface."""

import json

import pytest

import repro.cli as cli
from repro.cli import (EXIT_INTERNAL_ERROR, EXIT_USER_ERROR, build_parser,
                       main)
from repro.core import IndexName, validate_trace
from repro.search import save_index


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search", "goal"])
        assert args.query == "goal"
        assert args.index == IndexName.FULL_INF
        assert args.limit == 10

    def test_unknown_index_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "goal", "-i", "NOPE"])


class TestCommands:
    def test_corpus_statistics(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "narrations: 1182" in out
        assert "events:     902" in out

    def test_ontology_tree(self, capsys):
        assert main(["ontology"]) == 0
        out = capsys.readouterr().out
        assert "79 concepts, 95 properties" in out
        assert "YellowCard" in out

    def test_search_on_saved_index(self, pipeline_result, tmp_path,
                                   capsys):
        save_index(pipeline_result.index(IndexName.FULL_INF), tmp_path)
        assert main(["search", "messi goal", "-d", str(tmp_path),
                     "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 hits" in out
        assert "goal" in out

    def test_search_missing_index_dir_fails_cleanly(self, tmp_path,
                                                    capsys):
        code = main(["search", "goal", "-d", str(tmp_path / "nothing")])
        assert code == 2
        err = capsys.readouterr().err
        assert "hint" in err

    def test_phrasal_search_on_saved_index(self, pipeline_result,
                                           tmp_path, capsys):
        save_index(pipeline_result.index(IndexName.PHR_EXP), tmp_path)
        assert main(["search", "foul by Daniel", "--phrasal",
                     "-d", str(tmp_path), "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "PHR_EXP" in out

    def test_stats_on_saved_index(self, pipeline_result, tmp_path,
                                  capsys):
        save_index(pipeline_result.index(IndexName.FULL_INF), tmp_path)
        assert main(["stats", "-d", str(tmp_path),
                     "-i", IndexName.FULL_INF]) == 0
        out = capsys.readouterr().out
        assert "1198 documents" in out
        assert "subjectPlayerProp" in out

    def test_stats_missing_index_fails_cleanly(self, tmp_path, capsys):
        assert main(["stats", "-d", str(tmp_path)]) == 2

    def test_build_persists_all_indexes(self, tmp_path, capsys,
                                        monkeypatch):
        # shrink the corpus so the build command stays fast
        import repro.cli as cli
        from repro.soccer import standard_corpus
        from repro.soccer.names import FIXTURES

        def tiny_corpus(seed):
            return standard_corpus(fixtures=FIXTURES[:1],
                                   total_narrations=120)

        monkeypatch.setattr(cli, "_corpus", tiny_corpus)
        assert main(["build", "-d", str(tmp_path)]) == 0
        names = sorted(p.stem for p in tmp_path.glob("*.json"))
        assert names == sorted(["TRAD", "BASIC_EXT", "FULL_EXT",
                                "FULL_INF", "PHR_EXP"])

    def test_build_with_fault_plan_quarantines_and_persists(
            self, tmp_path, capsys, monkeypatch):
        """End-to-end --inject-faults: a poison match is reported on
        stdout and the survivors' indexes still land on disk."""
        import json

        import repro.cli as cli
        from repro.soccer import standard_corpus
        from repro.soccer.names import FIXTURES

        corpus = standard_corpus(fixtures=FIXTURES[:3],
                                 total_narrations=150)
        poison = corpus.crawled[1].match_id
        monkeypatch.setattr(cli, "_corpus", lambda seed: corpus)

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({
            "seed": 0,
            "specs": [{"stage": "extractor", "mode": "raise",
                       "match_ids": [poison]}],
        }))
        index_dir = tmp_path / "idx"
        assert main(["--inject-faults", str(plan_path), "--degrade",
                     "--max-retries", "1", "--workers", "2",
                     "build", "-d", str(index_dir)]) == 0
        out = capsys.readouterr().out
        assert "quarantine: 1 match(es) skipped" in out
        assert poison in out
        assert "stage=extraction" in out
        names = sorted(p.stem for p in index_dir.glob("*.json"))
        assert names == sorted(["TRAD", "BASIC_EXT", "FULL_EXT",
                                "FULL_INF", "PHR_EXP"])


class TestExitCodes:
    """The exit-code contract: 2 for user problems, 70 for internal
    bugs, BaseExceptions propagate untouched."""

    def test_domain_error_reports_and_returns_2(self, pipeline_result,
                                                tmp_path, capsys):
        save_index(pipeline_result.index(IndexName.FULL_INF), tmp_path)
        # an all-stopword query has no searchable terms → QueryError,
        # a user-input problem
        assert main(["search", "the of and", "-d", str(tmp_path)]) \
            == EXIT_USER_ERROR
        assert "error:" in capsys.readouterr().err

    def test_internal_bug_returns_70_with_traceback(self, monkeypatch,
                                                    capsys):
        def broken(args):
            raise RuntimeError("boom")

        monkeypatch.setitem(cli._COMMANDS, "corpus", broken)
        assert main(["corpus"]) == EXIT_INTERNAL_ERROR
        err = capsys.readouterr().err
        assert "Traceback" in err
        assert "boom" in err

    def test_keyboard_interrupt_propagates(self, monkeypatch):
        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "corpus", interrupted)
        with pytest.raises(KeyboardInterrupt):
            main(["corpus"])

    def test_system_exit_propagates(self, monkeypatch):
        def exiting(args):
            raise SystemExit(3)

        monkeypatch.setitem(cli._COMMANDS, "corpus", exiting)
        with pytest.raises(SystemExit) as info:
            main(["corpus"])
        assert info.value.code == 3


class TestObservabilityFlags:
    def test_trace_and_metrics_written_for_search(self, pipeline_result,
                                                  tmp_path, capsys):
        save_index(pipeline_result.index(IndexName.FULL_INF), tmp_path)
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        assert main(["--trace", str(trace_path),
                     "--metrics", str(metrics_path),
                     "search", "messi goal", "-d", str(tmp_path),
                     "-n", "3"]) == 0
        trace = json.loads(trace_path.read_text())
        validate_trace(trace)
        names = set()

        def collect(node):
            names.add(node["name"])
            for child in node["children"]:
                collect(child)

        collect(trace["root"])
        assert {"query", "query.parse", "query.retrieve",
                "query.score"} <= names
        prom = metrics_path.read_text()
        assert 'queries_total{engine="keyword"} 1' in prom
        assert "query_latency_seconds_bucket" in prom

    def test_metrics_json_round_trips_through_stats(self, pipeline_result,
                                                    tmp_path, capsys):
        save_index(pipeline_result.index(IndexName.FULL_INF), tmp_path)
        metrics_path = tmp_path / "metrics.json"
        assert main(["--metrics", str(metrics_path),
                     "search", "goal", "-d", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["stats", "--metrics-file", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "queries_total" in out
        assert "histogram query_latency_seconds" in out

    def test_observability_is_uninstalled_after_the_command(
            self, pipeline_result, tmp_path):
        from repro.core import get_observability
        save_index(pipeline_result.index(IndexName.FULL_INF), tmp_path)
        assert main(["--trace", str(tmp_path / "t.json"),
                     "search", "goal", "-d", str(tmp_path)]) == 0
        assert not get_observability().enabled

    def test_stats_without_any_source_is_a_user_error(self, capsys):
        assert main(["stats"]) == EXIT_USER_ERROR
        assert "--metrics-file" in capsys.readouterr().err

    def test_stats_with_corrupt_metrics_file(self, tmp_path, capsys):
        bad = tmp_path / "metrics.json"
        bad.write_text("{not json")
        assert main(["stats", "--metrics-file", str(bad)]) \
            == EXIT_USER_ERROR


class TestSegmentedCommands:
    """build --segmented / merge / segment-aware stats and search."""

    @pytest.fixture()
    def tiny(self, monkeypatch):
        import repro.cli as cli
        from repro.soccer import standard_corpus
        from repro.soccer.names import FIXTURES
        corpus = standard_corpus(fixtures=FIXTURES[:2],
                                 total_narrations=120)
        monkeypatch.setattr(cli, "_corpus", lambda seed: corpus)
        return corpus

    def test_build_segmented_creates_directories(self, tiny, tmp_path,
                                                 capsys):
        assert main(["build", "--segmented", "-d", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 segment(s)" in out
        names = sorted(p.name for p in tmp_path.glob("*.segd"))
        assert names == sorted(f"{name}.segd" for name in
                               ["TRAD", "BASIC_EXT", "FULL_EXT",
                                "FULL_INF", "PHR_EXP"])

    def test_search_and_stats_over_segmented_build(self, tiny, tmp_path,
                                                   capsys):
        assert main(["build", "--segmented", "-d", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["search", "goal", "-d", str(tmp_path),
                     "-n", "3"]) == 0
        assert "3 hits" in capsys.readouterr().out
        assert main(["stats", "-d", str(tmp_path),
                     "-i", IndexName.FULL_INF]) == 0
        out = capsys.readouterr().out
        assert "segments (generation 1):" in out
        assert "seg_0000000001.ridx" in out

    def test_merge_collapses_and_preserves_search(self, tiny, tmp_path,
                                                  capsys):
        assert main(["build", "--segmented", "-d", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["search", "goal", "-d", str(tmp_path),
                     "-n", "3"]) == 0
        before = capsys.readouterr().out
        assert main(["merge", "-d", str(tmp_path), "--force",
                     "--vacuum"]) == 0
        out = capsys.readouterr().out
        assert "1 segment(s), generation 2" in out
        assert "vacuumed" in out
        assert main(["search", "goal", "-d", str(tmp_path),
                     "-n", "3"]) == 0
        assert capsys.readouterr().out == before

    def test_merge_without_segments_is_a_user_error(self, tmp_path,
                                                    capsys):
        assert main(["merge", "-d", str(tmp_path)]) == EXIT_USER_ERROR
        assert "hint" in capsys.readouterr().err


class TestServeCommand:
    """`repro serve` + `loadtest --http` argument handling.  The
    served behaviour itself is covered by tests/serve and
    tests/integration/test_live_ingestion.py; here we pin the CLI
    contract (flags, exit codes, error messages)."""

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "-d", "idx"])
        assert str(args.index_dir) == "idx"
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.maintenance_interval == 5.0

    def test_missing_directory_is_a_user_error(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["serve", "-d", str(missing)]) == EXIT_USER_ERROR
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert "build --segmented" in err

    def test_http_excludes_processes(self, capsys):
        code = main(["loadtest", "--http", "http://127.0.0.1:1",
                     "--processes", "2"])
        assert code == EXIT_USER_ERROR
        assert "mutually exclusive" in capsys.readouterr().err

    def test_http_excludes_index_dir(self, tmp_path, capsys):
        code = main(["loadtest", "--http", "http://127.0.0.1:1",
                     "-d", str(tmp_path)])
        assert code == EXIT_USER_ERROR
        assert "--index-dir" in capsys.readouterr().err

    def test_http_against_dead_server_fails_cleanly(self, capsys):
        code = main(["loadtest", "--http", "http://127.0.0.1:9",
                     "--requests", "5", "--rate", "100"])
        assert code == EXIT_USER_ERROR
        assert "repro serve" in capsys.readouterr().err

    def test_http_load_run_end_to_end(self, pipeline, tmp_path,
                                      capsys):
        """A real serve instance driven by `loadtest --http`."""
        from repro.serve import ReproService, ServiceConfig
        from repro.soccer import standard_corpus
        from repro.soccer.names import FIXTURES
        corpus = standard_corpus(fixtures=FIXTURES[:2],
                                 total_narrations=120)
        pipeline.run_segmented(corpus.crawled, tmp_path).close()
        config = ServiceConfig(tmp_path, maintenance=False)
        with ReproService(config) as service:
            report_path = tmp_path / "http_load.json"
            code = main(["loadtest", "--http", service.url,
                         "--requests", "40", "--rate", "100",
                         "--arrival", "fixed",
                         "-o", str(report_path)])
            assert code == 0
            report = json.loads(report_path.read_text())
        assert report["errors"] == 0
        assert report["completed"] == 40
        assert report["name"].startswith("http:")
