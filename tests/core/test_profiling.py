"""Unit tests for the stage profiler."""

import json
import time

from repro.core import SemanticRetrievalPipeline
from repro.core.profiling import (CacheCounter, PipelineProfile,
                                  StageProfiler)


class TestStageProfiler:
    def test_stage_context_records_time(self):
        profiler = StageProfiler()
        with profiler.stage("work"):
            time.sleep(0.005)
        profile = profiler.snapshot()
        assert profile.stages["work"].calls == 1
        assert profile.stages["work"].seconds >= 0.004

    def test_record_accumulates(self):
        profiler = StageProfiler()
        profiler.record("stage", 1.0)
        profiler.record("stage", 2.0)
        profile = profiler.snapshot()
        assert profile.stages["stage"].calls == 2
        assert profile.stages["stage"].seconds == 3.0

    def test_record_match_folds_into_stages(self):
        profiler = StageProfiler()
        profiler.record_match("m1", {"inference": 0.5, "extraction": 0.1})
        profiler.record_match("m2", {"inference": 0.25})
        profile = profiler.snapshot()
        assert profile.match_stages["m1"]["extraction"] == 0.1
        assert profile.stages["inference"].seconds == 0.75
        assert profile.stages["inference"].calls == 2

    def test_disabled_profiler_records_nothing(self):
        profiler = StageProfiler(enabled=False)
        with profiler.stage("work"):
            pass
        profiler.record("stage", 1.0)
        profiler.record_match("m", {"s": 1.0})
        profiler.add_cache("c", CacheCounter(hits=1))
        profiler.add_counter("stage_retries")
        profile = profiler.snapshot()
        assert not profile.stages
        assert not profile.match_stages
        assert not profile.caches
        assert not profile.counters

    def test_add_counter_accumulates(self):
        profiler = StageProfiler()
        profiler.add_counter("stage_retries")
        profiler.add_counter("stage_retries", 2)
        profiler.add_counter("quarantined")
        profile = profiler.snapshot()
        assert profile.counters == {"stage_retries": 3,
                                    "quarantined": 1}

    def test_counters_serialized_and_rendered(self):
        profiler = StageProfiler()
        profiler.add_counter("worker_crashes", 2)
        profile = profiler.snapshot()
        payload = json.loads(json.dumps(profile.to_json()))
        assert payload["counters"] == {"worker_crashes": 2}
        rendered = profile.render()
        assert "worker_crashes" in rendered and "2" in rendered

    def test_add_cache_accepts_counter_and_lru_info(self):
        from repro.search.analysis.stemmer import PorterStemmer, stem
        profiler = StageProfiler()
        counter = CacheCounter()
        counter.hit()
        counter.miss()
        profiler.add_cache("counter", counter)
        stem("running")
        profiler.add_cache("stemmer", PorterStemmer.cache_info())
        profile = profiler.snapshot()
        assert profile.caches["counter"]["hits"] == 1
        assert profile.caches["counter"]["hit_rate"] == 0.5
        assert "hits" in profile.caches["stemmer"]

    def test_snapshot_serializes_and_renders(self):
        profiler = StageProfiler()
        profiler.record("stage", 0.5)
        profiler.record_match("m", {"stage": 0.5})
        profiler.add_cache("cache", CacheCounter(hits=3, misses=1))
        profile = profiler.snapshot(workers=4)
        payload = json.loads(json.dumps(profile.to_json()))
        assert payload["workers"] == 4
        assert payload["stages"]["stage"]["calls"] == 2
        assert payload["caches"]["cache"]["hit_rate"] == 0.75
        rendered = profile.render()
        assert "stage" in rendered and "cache" in rendered

    def test_stage_seconds_missing_stage_is_zero(self):
        assert PipelineProfile().stage_seconds("nope") == 0.0


class TestCacheCounter:
    def test_hit_rate(self):
        counter = CacheCounter()
        assert counter.hit_rate == 0.0
        counter.hit()
        counter.hit()
        counter.miss()
        assert counter.total == 3
        assert abs(counter.hit_rate - 2 / 3) < 1e-9


class TestPipelineProfile:
    def test_pipeline_attaches_profile(self, small_corpus):
        result = SemanticRetrievalPipeline().run(
            small_corpus.crawled, profile=True)
        profile = result.profile
        assert profile is not None
        assert profile.workers == 1
        assert profile.total_seconds > 0
        # every per-match stage shows up, once per match
        for stage in ("trad_index", "extraction", "inference",
                      "full_inf_index", "phr_exp_index"):
            assert profile.stages[stage].calls \
                == len(small_corpus.matches), stage
        assert len(profile.match_stages) == len(small_corpus.matches)
        assert "merge_indexes" in profile.stages
        assert any(name.startswith("indexer.") for name in profile.caches)
        assert "stemmer.porter" in profile.caches
        assert "analyzer.token_stream" in profile.caches

    def test_profile_off_by_default(self, pipeline_result):
        assert pipeline_result.profile is None
