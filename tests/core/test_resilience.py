"""Unit tests for the fault-tolerance layer.

Covers the deterministic fault plan, the retry/backoff/timeout stage
runner, quarantine bookkeeping, serialization of the plan and of the
errors that cross process boundaries, and the CLI flags.  End-to-end
invariants (survivor parity, chaos) live in
``tests/integration/test_resilience_properties.py``.
"""

import json
import pickle

import pytest

from repro.core import (FaultMode, FaultPlan, FaultSpec, QuarantineRecord,
                        QuarantineReport, ResilienceConfig, RetryPolicy,
                        StageRunner)
from repro.core.resilience import STAGE_ALIASES, STAGE_NAMES, resolve_stages
from repro.errors import (CorruptOutputError, CrawlError,
                          InjectedFaultError, MatchProcessingError,
                          ResilienceError, StageTimeoutError,
                          WorkerCrashError)


class TestFaultSpec:
    def test_alias_targets_every_member_stage(self):
        spec = FaultSpec(stage="indexer")
        for stage in STAGE_ALIASES["indexer"]:
            assert spec.targets(stage, "m1")
        assert not spec.targets("extraction", "m1")

    def test_match_filter(self):
        spec = FaultSpec(stage="extraction", match_ids={"m1", "m2"})
        assert spec.targets("extraction", "m1")
        assert not spec.targets("extraction", "m3")

    def test_unknown_stage_rejected(self):
        with pytest.raises(ResilienceError):
            FaultSpec(stage="bogus_stage")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ResilienceError):
            FaultSpec(stage="extraction", mode="explode")

    def test_bad_probability_rejected(self):
        with pytest.raises(ResilienceError):
            FaultSpec(stage="extraction", probability=1.5)

    def test_bad_times_rejected(self):
        with pytest.raises(ResilienceError):
            FaultSpec(stage="extraction", times=0)


class TestFaultPlan:
    def test_times_bounds_attempts(self):
        plan = FaultPlan(specs=(FaultSpec(stage="inference", times=2),))
        assert plan.spec_for("inference", "m1", 0) is not None
        assert plan.spec_for("inference", "m1", 1) is not None
        assert plan.spec_for("inference", "m1", 2) is None

    def test_permanent_fault_never_clears(self):
        plan = FaultPlan(specs=(FaultSpec(stage="inference"),))
        for attempt in range(10):
            assert plan.spec_for("inference", "m1", attempt) is not None

    def test_probabilistic_draws_are_deterministic(self):
        plan = FaultPlan(specs=(FaultSpec(stage="extraction",
                                          probability=0.5),), seed=7)
        decisions = [plan.spec_for("extraction", f"m{i}", 0) is not None
                     for i in range(40)]
        again = [plan.spec_for("extraction", f"m{i}", 0) is not None
                 for i in range(40)]
        assert decisions == again
        # a fair-ish coin: both outcomes occur
        assert any(decisions) and not all(decisions)

    def test_seed_changes_probabilistic_outcome(self):
        def draws(seed):
            plan = FaultPlan(specs=(FaultSpec(stage="extraction",
                                              probability=0.5),),
                             seed=seed)
            return [plan.spec_for("extraction", f"m{i}", 0) is not None
                    for i in range(40)]
        assert draws(1) != draws(2)

    def test_json_round_trip(self):
        plan = FaultPlan(specs=(
            FaultSpec(stage="extractor", mode=FaultMode.RAISE,
                      match_ids=frozenset({"m1"}), times=2),
            FaultSpec(stage="inference", mode=FaultMode.HANG,
                      probability=0.25, hang_seconds=1.5),
        ), seed=42)
        restored = FaultPlan.from_json(
            json.loads(json.dumps(plan.to_json())))
        assert restored == plan

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = FaultPlan(specs=(FaultSpec(stage="reasoner"),), seed=9)
        path.write_text(json.dumps(plan.to_json()))
        assert FaultPlan.from_file(path) == plan

    def test_plan_pickles(self):
        plan = FaultPlan(specs=(FaultSpec(stage="crawler",
                                          match_ids={"m1"}),))
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestResolveStages:
    def test_every_alias_expands_to_known_stages(self):
        for alias, stages in STAGE_ALIASES.items():
            assert resolve_stages(alias) == stages
            for stage in stages:
                assert stage in STAGE_NAMES

    def test_concrete_stage_resolves_to_itself(self):
        assert resolve_stages("inference") == ("inference",)


class TestRetryPolicy:
    def test_backoff_curve_is_capped(self):
        # jitter=0 isolates the exponential curve itself
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.3, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.3)
        assert policy.delay(10) == pytest.approx(0.3)

    def test_jitter_is_bounded_and_still_capped(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.3, jitter=0.25)
        for retry_index, capped in ((0, 0.1), (1, 0.2), (2, 0.3),
                                    (10, 0.3)):
            delay = policy.delay(retry_index, key="m1:inference")
            assert capped * 0.75 <= delay <= capped

    def test_jitter_is_deterministic_given_the_seed(self):
        policy = RetryPolicy(jitter=0.5, jitter_seed=42)
        twin = RetryPolicy(jitter=0.5, jitter_seed=42)
        assert policy.delay(1, key="m1:inference") \
            == twin.delay(1, key="m1:inference")
        reseeded = RetryPolicy(jitter=0.5, jitter_seed=43)
        assert policy.delay(1, key="m1:inference") \
            != reseeded.delay(1, key="m1:inference")

    def test_jitter_decorrelates_concurrent_retriers(self):
        # the whole point: two matches retrying the same stage at the
        # same retry index must not sleep in lockstep
        policy = RetryPolicy(jitter=0.5)
        delays = {policy.delay(0, key=f"m{i}:inference")
                  for i in range(8)}
        assert len(delays) == 8

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=-0.1)

    def test_negative_retries_rejected(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_retries=-1)

    def test_crash_budget_follows_max_retries(self):
        config = ResilienceConfig(retry=RetryPolicy(max_retries=3))
        assert config.crash_budget == 3
        assert ResilienceConfig(retry=RetryPolicy(max_retries=3),
                                crash_retries=1).crash_budget == 1


def _config(**retry_kwargs):
    retry_kwargs.setdefault("backoff_base", 0.001)
    return ResilienceConfig(retry=RetryPolicy(**retry_kwargs))


class TestStageRunner:
    def test_success_passes_through(self):
        runner = StageRunner(_config(), "m1")
        assert runner.run("inference", lambda: 41 + 1) == 42
        assert runner.retries == 0

    def test_transient_failure_retried(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError("transient")
            return "ok"

        runner = StageRunner(_config(max_retries=2), "m1")
        assert runner.run("inference", flaky) == "ok"
        assert len(calls) == 3
        assert runner.retries == 2

    def test_exhausted_retries_raise_match_processing_error(self):
        def always_fails():
            raise ValueError("permanent")

        runner = StageRunner(_config(max_retries=1), "m1")
        with pytest.raises(MatchProcessingError) as excinfo:
            runner.run("extraction", always_fails)
        error = excinfo.value
        assert error.match_id == "m1"
        assert error.stage == "extraction"
        assert error.attempts == 2
        assert error.error_type == "ValueError"
        assert "permanent" in error.error

    def test_injected_raise_fault(self):
        plan = FaultPlan(specs=(FaultSpec(stage="inference",
                                          match_ids={"m1"}),))
        config = ResilienceConfig(
            retry=RetryPolicy(max_retries=1, backoff_base=0.001),
            fault_plan=plan)
        runner = StageRunner(config, "m1")
        with pytest.raises(MatchProcessingError) as excinfo:
            runner.run("inference", lambda: "never reached")
        assert excinfo.value.error_type == "InjectedFaultError"
        assert runner.faults_injected == 2
        # other matches sail through
        other = StageRunner(config, "m2")
        assert other.run("inference", lambda: "fine") == "fine"

    def test_transient_injected_fault_recovers(self):
        plan = FaultPlan(specs=(FaultSpec(stage="inference",
                                          times=2),))
        config = ResilienceConfig(
            retry=RetryPolicy(max_retries=2, backoff_base=0.001),
            fault_plan=plan)
        runner = StageRunner(config, "m1")
        assert runner.run("inference", lambda: "recovered") \
            == "recovered"
        assert runner.retries == 2
        assert runner.faults_injected == 2

    def test_base_attempt_shifts_fault_arithmetic(self):
        """A resubmitted task (attempt=1) no longer sees a times=1
        fault — the pool resubmission consumed it."""
        plan = FaultPlan(specs=(FaultSpec(stage="inference",
                                          times=1),))
        config = ResilienceConfig(
            retry=RetryPolicy(max_retries=0, backoff_base=0.001),
            fault_plan=plan)
        with pytest.raises(MatchProcessingError):
            StageRunner(config, "m1", base_attempt=0).run(
                "inference", lambda: "x")
        assert StageRunner(config, "m1", base_attempt=1).run(
            "inference", lambda: "x") == "x"

    def test_corrupt_fault_detected(self):
        plan = FaultPlan(specs=(FaultSpec(stage="trad_index",
                                          mode=FaultMode.CORRUPT),))
        config = ResilienceConfig(
            retry=RetryPolicy(max_retries=0, backoff_base=0.001),
            fault_plan=plan)
        runner = StageRunner(config, "m1")
        with pytest.raises(MatchProcessingError) as excinfo:
            runner.run("trad_index", lambda: "real output")
        assert excinfo.value.error_type == "CorruptOutputError"

    def test_organic_none_output_detected(self):
        runner = StageRunner(_config(max_retries=0), "m1")
        with pytest.raises(MatchProcessingError) as excinfo:
            runner.run("inference", lambda: None)
        assert excinfo.value.error_type == "CorruptOutputError"

    def test_crash_fault_simulated_in_process(self):
        plan = FaultPlan(specs=(FaultSpec(stage="inference",
                                          mode=FaultMode.CRASH),))
        config = ResilienceConfig(
            retry=RetryPolicy(max_retries=0, backoff_base=0.001),
            fault_plan=plan)
        runner = StageRunner(config, "m1", allow_crash=False)
        with pytest.raises(MatchProcessingError) as excinfo:
            runner.run("inference", lambda: "x")
        assert excinfo.value.error_type == "WorkerCrashError"

    def test_hang_fault_hits_stage_timeout(self):
        plan = FaultPlan(specs=(FaultSpec(stage="inference",
                                          mode=FaultMode.HANG,
                                          hang_seconds=30.0),))
        config = ResilienceConfig(
            retry=RetryPolicy(max_retries=0, backoff_base=0.001,
                              stage_timeout=0.1),
            fault_plan=plan)
        runner = StageRunner(config, "m1")
        with pytest.raises(MatchProcessingError) as excinfo:
            runner.run("inference", lambda: "x")
        assert excinfo.value.error_type == "StageTimeoutError"

    def test_hang_fault_without_timeout_elapses_then_fails(self):
        plan = FaultPlan(specs=(FaultSpec(stage="inference",
                                          mode=FaultMode.HANG,
                                          hang_seconds=0.01),))
        config = ResilienceConfig(
            retry=RetryPolicy(max_retries=0, backoff_base=0.001),
            fault_plan=plan)
        with pytest.raises(MatchProcessingError) as excinfo:
            StageRunner(config, "m1").run("inference", lambda: "x")
        assert excinfo.value.error_type == "InjectedFaultError"
        assert "hang" in excinfo.value.error

    def test_timeout_abandons_slow_stage(self):
        import time as time_module

        def slow():
            time_module.sleep(5.0)
            return "too late"

        config = _config(max_retries=0, stage_timeout=0.1)
        runner = StageRunner(config, "m1")
        started = time_module.perf_counter()
        with pytest.raises(MatchProcessingError) as excinfo:
            runner.run("inference", slow)
        assert time_module.perf_counter() - started < 2.0
        assert excinfo.value.error_type == "StageTimeoutError"

    def test_timeout_propagates_stage_exception(self):
        def boom():
            raise KeyError("inside thread")

        config = _config(max_retries=0, stage_timeout=5.0)
        with pytest.raises(MatchProcessingError) as excinfo:
            StageRunner(config, "m1").run("inference", boom)
        assert excinfo.value.error_type == "KeyError"


class TestQuarantineReport:
    def _record(self, match_id="m1", position=0):
        return QuarantineRecord(match_id=match_id, position=position,
                                stage="extraction",
                                error_type="InjectedFaultError",
                                error="boom", attempts=3)

    def test_empty_report_is_falsy(self):
        report = QuarantineReport()
        assert not report
        assert len(report) == 0
        assert report.match_ids() == []
        assert "empty" in report.render()

    def test_records_kept_in_corpus_order(self):
        report = QuarantineReport()
        report.add(self._record("m9", position=9))
        report.add(self._record("m2", position=2))
        assert report.match_ids() == ["m2", "m9"]
        assert [r.position for r in report] == [2, 9]

    def test_render_names_stage_and_error(self):
        report = QuarantineReport()
        report.add(self._record())
        rendered = report.render()
        assert "m1" in rendered
        assert "extraction" in rendered
        assert "InjectedFaultError" in rendered

    def test_json_shape(self):
        report = QuarantineReport()
        report.add(self._record())
        [entry] = report.to_json()
        assert entry == {"match_id": "m1", "position": 0,
                         "stage": "extraction",
                         "error_type": "InjectedFaultError",
                         "error": "boom", "attempts": 3}


class TestErrorPickling:
    """Errors raised inside pool workers must survive pickling."""

    @pytest.mark.parametrize("error", [
        InjectedFaultError("inference", "m1", "detail"),
        StageTimeoutError("inference", "m1", 1.5),
        MatchProcessingError("m1", "extraction", 3, "ValueError",
                             "boom", retries=2, faults_injected=3),
    ])
    def test_round_trip(self, error):
        restored = pickle.loads(pickle.dumps(error))
        assert type(restored) is type(error)
        assert str(restored) == str(error)
        assert restored.__dict__ == error.__dict__


class TestCrawledMatchValidate:
    def test_clean_match_validates(self, small_corpus):
        crawled = small_corpus.crawled[0]
        assert crawled.validate() is crawled

    @pytest.mark.parametrize("mangle, message", [
        (lambda c: setattr(c, "match_id", ""), "match_id"),
        (lambda c: setattr(c, "away_team", ""), "team"),
        (lambda c: setattr(c, "away_team", c.home_team), "identical"),
        (lambda c: setattr(c, "narrations", []), "narrations"),
        (lambda c: setattr(c, "home_score", -1), "negative"),
    ])
    def test_mangled_match_rejected(self, small_corpus, mangle,
                                    message):
        import copy
        crawled = copy.copy(small_corpus.crawled[0])
        mangle(crawled)
        with pytest.raises(CrawlError, match=message):
            crawled.validate()


class TestCliResilienceFlags:
    def test_flags_parse(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["--max-retries", "3", "--stage-timeout", "1.5",
             "--degrade", "corpus"])
        assert args.max_retries == 3
        assert args.stage_timeout == 1.5
        assert args.degrade and not args.fail_fast

    def test_degrade_and_fail_fast_conflict(self):
        from repro.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--degrade", "--fail-fast",
                                       "corpus"])

    def test_no_flags_means_no_config(self):
        from repro.cli import _resilience_config, build_parser
        args = build_parser().parse_args(["corpus"])
        assert _resilience_config(args) is None

    def test_flags_build_config(self, tmp_path):
        from repro.cli import _resilience_config, build_parser
        plan = FaultPlan(specs=(FaultSpec(stage="extractor"),), seed=3)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_json()))
        args = build_parser().parse_args(
            ["--max-retries", "1", "--fail-fast",
             "--inject-faults", str(path), "corpus"])
        config = _resilience_config(args)
        assert config.retry.max_retries == 1
        assert config.degrade is False
        assert config.fault_plan == plan

    def test_degrade_alone_enables_layer_with_defaults(self):
        from repro.cli import _resilience_config, build_parser
        args = build_parser().parse_args(["--degrade", "corpus"])
        config = _resilience_config(args)
        assert config is not None
        assert config.degrade is True
        assert config.retry.max_retries == 2
