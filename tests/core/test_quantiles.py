"""Percentile machinery: exact reservoir vs bucket interpolation.

The load harness reports p50/p95/p99 from the metrics histograms, so
these are load-bearing numbers.  Both estimators are property-tested
against an independent sorted-list oracle: `sorted_quantile` must
match the nearest-rank definition exactly, and `bucket_quantile` must
land inside the same bucket the true quantile falls in (its
documented error bound — never off by more than the landing bucket's
width).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.observability import (DEFAULT_LATENCY_BUCKETS, Histogram,
                                      MetricsRegistry, bucket_quantile,
                                      sorted_quantile)

samples = st.lists(st.floats(min_value=0.0, max_value=50.0,
                             allow_nan=False), min_size=1, max_size=200)
quantiles = st.floats(min_value=0.01, max_value=1.0)


def oracle(values, q):
    """Independent nearest-rank statement: the smallest value with at
    least ceil(q*n) observations at or below it."""
    target = math.ceil(q * len(values))
    return min(v for v in values
               if sum(1 for u in values if u <= v) >= target)


class TestSortedQuantile:
    @given(samples, quantiles)
    @settings(max_examples=150, deadline=None)
    def test_matches_nearest_rank_oracle(self, values, q):
        assert sorted_quantile(sorted(values), q) == oracle(values, q)

    def test_median_of_odd_list_is_middle_element(self):
        assert sorted_quantile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_q1_is_maximum(self):
        assert sorted_quantile([1.0, 5.0, 9.0], 1.0) == 9.0

    def test_q0_clamps_to_minimum(self):
        assert sorted_quantile([1.0, 5.0, 9.0], 0.0) == 1.0

    def test_empty_and_bad_q_raise(self):
        with pytest.raises(ValueError):
            sorted_quantile([], 0.5)
        with pytest.raises(ValueError):
            sorted_quantile([1.0], -0.1)
        with pytest.raises(ValueError):
            sorted_quantile([1.0], 1.5)


def fill_buckets(buckets, values):
    counts = [0] * (len(buckets) + 1)
    for value in values:
        for position, upper in enumerate(buckets):
            if value <= upper:
                counts[position] += 1
                break
        else:
            counts[-1] += 1
    return counts


class TestBucketQuantile:
    @given(samples, quantiles)
    @settings(max_examples=150, deadline=None)
    def test_lands_in_the_true_quantile_bucket(self, values, q):
        buckets = [0.5, 1.0, 5.0, 10.0, 25.0]
        counts = fill_buckets(buckets, values)
        estimate = bucket_quantile(buckets, counts, q)
        true = oracle(values, q)
        if true > buckets[-1]:
            # the +Inf bucket has no upper edge: collapses to the
            # highest finite bound, the documented underestimate
            assert estimate == buckets[-1]
            return
        landing = next(i for i, upper in enumerate(buckets)
                       if true <= upper)
        lower = buckets[landing - 1] if landing else 0.0
        assert lower <= estimate <= buckets[landing]

    def test_interpolates_within_bucket(self):
        # 10 observations in (1.0, 2.0]: p50 sits at rank 5 of 10 →
        # halfway through the bucket
        assert bucket_quantile([1.0, 2.0], [0, 10, 0], 0.5) \
            == pytest.approx(1.5)

    def test_empty_histogram_and_shape_mismatch_raise(self):
        with pytest.raises(ValueError):
            bucket_quantile([1.0], [0, 0], 0.5)
        with pytest.raises(ValueError):
            bucket_quantile([1.0, 2.0], [1, 2], 0.5)


class TestHistogramReservoir:
    @given(samples, quantiles)
    @settings(max_examples=100, deadline=None)
    def test_exact_while_within_capacity(self, values, q):
        histogram = Histogram(buckets=[0.5, 1.0, 5.0, 10.0, 25.0],
                              reservoir=256)
        for value in values:
            histogram.observe(value)
        assert histogram.exact
        assert histogram.quantile(q) == oracle(values, q)

    def test_overflow_degrades_to_sampling_not_garbage(self):
        histogram = Histogram(buckets=[10.0, 100.0, 1000.0],
                              reservoir=64, reservoir_seed=3)
        for value in range(1000):
            histogram.observe(float(value))
        assert not histogram.exact
        assert len(histogram.reservoir_values()) == 64
        estimate = histogram.quantile(0.5)
        assert 0.0 <= estimate <= 999.0

    def test_reservoir_is_seed_deterministic(self):
        def run():
            histogram = Histogram(buckets=[10.0], reservoir=32,
                                  reservoir_seed=7)
            for value in range(500):
                histogram.observe(float(value))
            return histogram.reservoir_values()
        assert run() == run()

    def test_no_reservoir_falls_back_to_buckets(self):
        histogram = Histogram(buckets=[1.0, 2.0])
        histogram.observe(1.5)
        histogram.observe(1.5)
        assert not histogram.exact
        assert 1.0 <= histogram.quantile(0.5) <= 2.0


class TestRegistryExport:
    def test_quantiles_exported_only_with_reservoir(self):
        registry = MetricsRegistry(enabled=True)
        registry.histogram("plain_seconds", "no reservoir",
                           buckets=DEFAULT_LATENCY_BUCKETS).observe(0.01)
        registry.histogram("exact_seconds", "with reservoir",
                           buckets=DEFAULT_LATENCY_BUCKETS,
                           reservoir=128).observe(0.01)
        exported = registry.to_json()["histograms"]
        plain = exported["plain_seconds"][0]
        exact = exported["exact_seconds"][0]
        assert "quantiles" not in plain
        assert exact["quantiles"]["exact"] is True
        assert exact["quantiles"]["p50"] == pytest.approx(0.01)

    def test_concurrent_observe_loses_nothing(self):
        import threading
        histogram = Histogram(buckets=[10.0], reservoir=0)
        threads = [threading.Thread(
            target=lambda: [histogram.observe(1.0)
                            for _ in range(2000)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 16000
        assert histogram.sum == pytest.approx(16000.0)
