"""Per-block max frequencies (RIDX v3).

The v3 term dictionary persists one max within-document frequency per
skip block, so the top-k scan can bound — and skip — whole blocks
without decoding them.  These tests pin the three ways that can go
wrong: the writer recording a wrong maximum, a merge losing or
corrupting the maxima, and the block-pruned scan drifting from the
exhaustive oracle (especially across score ties, which strict-below-θ
pruning must never break).
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.search.index import (IndexDirectory, InvertedIndex,
                                SegmentedIndex)
from repro.search.index.segment import (SEGMENT_VERSION, SKIP_BLOCK,
                                        SegmentReader,
                                        merge_segment_files,
                                        write_segment)
from repro.search.query.queries import (BooleanQuery, DisMaxQuery,
                                        Occur, TermQuery)
from repro.search.searcher import IndexSearcher
from repro.search.similarity import BM25Similarity, ClassicSimilarity

VOCAB = ["goal", "foul", "messi", "pass"]


def long_postings_index(seed: int = 3, docs: int = SKIP_BLOCK * 4 + 9,
                        name: str = "long") -> InvertedIndex:
    """Every term spans several skip blocks, with frequencies varied
    so block maxima differ from the term-wide maximum."""
    rng = random.Random(seed)
    index = InvertedIndex(name)
    for _ in range(docs):
        doc_id = index.new_doc_id()
        terms = []
        for term in VOCAB:
            for position in range(rng.randint(1, 5)):
                terms.append((term, position))
        index.index_terms(doc_id, "event", terms)
        index.store_value(doc_id, "doc_key", f"doc-{doc_id}")
    return index


def recomputed_maxima(reader: SegmentReader, field: str, term: str):
    """Block maxima derived from the decoded columns, bypassing the
    persisted metadata."""
    lazy = reader.postings(field, term)
    out = []
    for block in range(lazy.block_count()):
        _, freqs = lazy.block_columns(block)
        out.append(max(freqs))
    return out


class TestPersistedMaxima:
    def test_writer_maxima_match_recomputation(self, tmp_path):
        index = long_postings_index()
        path = write_segment(index, tmp_path / "seg.ridx")
        with SegmentReader(path) as reader:
            for term in VOCAB:
                meta = reader.term_meta("event", term)
                assert meta.block_maxima is not None
                assert len(meta.block_maxima) \
                    == len(meta.skip_offsets)
                assert list(meta.block_maxima) \
                    == recomputed_maxima(reader, "event", term)
                # the term-wide maximum is the max over block maxima
                assert max(meta.block_maxima) == meta.max_frequency

    def test_maxima_survive_merge(self, tmp_path):
        chunks = [long_postings_index(seed=seed, docs=SKIP_BLOCK + 11,
                                      name="m")
                  for seed in (1, 2, 3)]
        readers = [SegmentReader(write_segment(
                       chunk, tmp_path / f"in_{number}.ridx"))
                   for number, chunk in enumerate(chunks)]
        try:
            merged = merge_segment_files(readers,
                                         tmp_path / "merged.ridx")
        finally:
            for reader in readers:
                reader.close()
        with SegmentReader(merged) as reader:
            for term in VOCAB:
                meta = reader.term_meta("event", term)
                assert meta.block_maxima is not None
                assert list(meta.block_maxima) \
                    == recomputed_maxima(reader, "event", term)

    def test_version_byte_on_disk(self, tmp_path):
        index = long_postings_index(docs=10)
        current = write_segment(index, tmp_path / "v3.ridx")
        assert current.read_bytes()[4] == SEGMENT_VERSION == 3
        compat = write_segment(index, tmp_path / "v2.ridx", version=2)
        assert compat.read_bytes()[4] == 2

    def test_unwritable_version_rejected(self, tmp_path):
        with pytest.raises(IndexError_, match="version"):
            write_segment(long_postings_index(docs=5),
                          tmp_path / "bad.ridx", version=7)


class TestV2ReadCompat:
    """v2 segments carry no per-block maxima; readers must recompute
    them on first decode and behave identically otherwise."""

    def test_v2_round_trips_and_recomputes_maxima(self, tmp_path):
        index = long_postings_index()
        v2 = write_segment(index, tmp_path / "v2.ridx", version=2)
        with SegmentReader(v2) as reader:
            assert reader.version == 2
            assert reader.to_inverted().to_json() == index.to_json()
            v3_path = write_segment(index, tmp_path / "v3.ridx")
            with SegmentReader(v3_path) as v3_reader:
                for term in VOCAB:
                    meta = reader.term_meta("event", term)
                    assert meta.block_maxima is None
                    lazy = reader.postings("event", term)
                    v3_meta = v3_reader.term_meta("event", term)
                    assert [lazy.block_max_frequency(block)
                            for block in range(lazy.block_count())] \
                        == list(v3_meta.block_maxima)

    def test_search_identical_across_versions(self, tmp_path):
        index = long_postings_index()
        query = BooleanQuery()
        for term in VOCAB[:3]:
            query.add(TermQuery("event", term), Occur.SHOULD)
        oracle = IndexSearcher(index, BM25Similarity(), cache_size=0
                               ).search_exhaustive(query, 10)
        for version in (2, 3):
            path = write_segment(index,
                                 tmp_path / f"s{version}.ridx",
                                 version=version)
            with SegmentReader(path) as reader:
                top = IndexSearcher(reader.to_inverted(),
                                    BM25Similarity(),
                                    cache_size=0).search(query, 10)
                assert [(h.doc_id, h.score) for h in top] \
                    == [(h.doc_id, h.score) for h in oracle]


# adversarial tie groups: a tiny vocabulary and a tiny frequency
# range make many documents score exactly equal, so any unsound
# block skip (bound == θ treated as prunable) surfaces as a changed
# tie order
DOC_SPECS = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=6),
    min_size=1, max_size=SKIP_BLOCK * 2 + 7)


def build_from_specs(specs, name="fuzz") -> InvertedIndex:
    index = InvertedIndex(name)
    for terms in specs:
        doc_id = index.new_doc_id()
        index.index_terms(doc_id, "event",
                          [(term, position)
                           for position, term in enumerate(terms)])
        index.store_value(doc_id, "doc_key", f"doc-{doc_id}")
    return index


def fuzz_query(rng: random.Random):
    kind = rng.choice(["term", "bool", "dismax"])
    if kind == "term":
        return TermQuery("event", rng.choice(VOCAB))
    if kind == "dismax":
        return DisMaxQuery([TermQuery("event", term)
                            for term in rng.sample(VOCAB,
                                                   rng.randint(1, 3))],
                           tie_breaker=rng.choice([0.0, 0.3, 1.0]))
    query = BooleanQuery()
    for term in rng.sample(VOCAB, rng.randint(1, 4)):
        query.add(TermQuery("event", term),
                  rng.choice([Occur.SHOULD, Occur.SHOULD, Occur.MUST]))
    return query


#: unique directory suffix per hypothesis example — tmp_path is
#: reused across examples and hypothesis resets the global random
#: state, so a random name can collide with (and silently reopen) a
#: previous example's directory
_DIRECTORY_IDS = itertools.count()


class TestBlockPrunedParity:
    """Block-max pruning must stay bit-identical to the exhaustive
    path — doc ids, order and float scores — monolithic and
    segment-backed alike."""

    @settings(max_examples=30, deadline=None)
    @given(specs=DOC_SPECS, seed=st.integers(0, 2 ** 16))
    def test_monolithic_matches_exhaustive(self, specs, seed):
        rng = random.Random(seed)
        index = build_from_specs(specs)
        similarity = rng.choice([ClassicSimilarity(), BM25Similarity()])
        searcher = IndexSearcher(index, similarity, cache_size=0)
        for _ in range(4):
            query = fuzz_query(rng)
            k = rng.choice([1, 2, 5, len(specs), len(specs) + 3])
            top = searcher.search(query, k)
            oracle = searcher.search_exhaustive(query, k)
            assert [(h.doc_id, h.score) for h in top] \
                == [(h.doc_id, h.score) for h in oracle]
            assert top.total_hits == oracle.total_hits

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(specs=DOC_SPECS, seed=st.integers(0, 2 ** 16))
    def test_segmented_matches_exhaustive(self, specs, seed, tmp_path):
        rng = random.Random(seed)
        mono = build_from_specs(specs)
        directory = IndexDirectory(
            tmp_path / f"fuzz-{next(_DIRECTORY_IDS)}.segd",
            name="fuzz")
        docs = len(specs)
        cuts = sorted(rng.sample(range(1, docs),
                                 k=min(rng.randint(0, 2), docs - 1)))
        for start, end in zip([0, *cuts], [*cuts, docs]):
            chunk = build_from_specs(specs[start:end])
            directory.add_index(chunk)
        similarity = rng.choice([ClassicSimilarity(), BM25Similarity()])
        oracle = IndexSearcher(mono, similarity, cache_size=0)
        with SegmentedIndex(directory) as segmented:
            ours = IndexSearcher(segmented, similarity, cache_size=0)
            for _ in range(3):
                query = fuzz_query(rng)
                k = rng.choice([1, 3, docs])
                top = ours.search(query, k)
                ref = oracle.search_exhaustive(query, k)
                assert [(h.doc_id, h.score) for h in top] \
                    == [(h.doc_id, h.score) for h in ref]
                assert top.total_hits == ref.total_hits
