"""Tests for the spell checker."""

import pytest

from repro.search import (Document, Field, IndexWriter, InvertedIndex,
                          SimpleAnalyzer)
from repro.search.spell import SpellChecker


@pytest.fixture
def checker():
    idx = InvertedIndex()
    writer = IndexWriter(idx, SimpleAnalyzer())
    texts = [
        "messi scores a goal",
        "messi dribbles again",
        "ronaldo shoots wide",
        "casillas saves the penalty",
    ]
    for text in texts:
        writer.add_document(Document([Field("narration", text)]))
    return SpellChecker(idx, fields=["narration"],
                        analyzer=SimpleAnalyzer())


class TestSuggestions:
    def test_close_misspelling_found(self, checker):
        [best, *_] = checker.suggestions("mesi")
        assert best.term == "messi"
        assert best.distance == 1

    def test_frequency_breaks_distance_ties(self, checker):
        # "messi" (df=2) should outrank equally-distant rarer terms
        suggestions = checker.suggestions("mess")
        assert suggestions[0].term == "messi"

    def test_hopeless_term_no_suggestions(self, checker):
        assert checker.suggestions("xylophone") == []

    def test_known_term_detection(self, checker):
        assert checker.is_known("goal")
        assert not checker.is_known("gaol")

    def test_limit_respected(self, checker):
        assert len(checker.suggestions("save", limit=2)) <= 2

    def test_invalid_max_edits(self, checker):
        with pytest.raises(ValueError):
            SpellChecker(checker.index, max_edits=0)


class TestCorrectQuery:
    def test_corrects_unknown_terms_only(self, checker):
        assert checker.correct_query("mesi goal") == "messi goal"

    def test_known_terms_untouched(self, checker):
        assert checker.correct_query("messi goal") == "messi goal"

    def test_unfixable_terms_pass_through(self, checker):
        assert checker.correct_query("zzzzzzz goal") == "zzzzzzz goal"

    def test_transposition_fixed(self, checker):
        assert checker.correct_query("gaol") == "goal"


class TestOnRealIndex:
    def test_player_names_corrected(self, pipeline_result):
        from repro.core import F, IndexName
        index = pipeline_result.index(IndexName.FULL_INF)
        checker = SpellChecker(index,
                               fields=[F.SUBJECT_PLAYER, F.NARRATION])
        assert checker.correct_query("mesi") == "messi"
        corrected = checker.correct_query("ronaldo scores")
        assert corrected == "ronaldo scores"


class TestVocabularyRefresh:
    """The staleness bugfix: terms ingested after construction must
    become known when the index generation moves."""

    def test_new_term_known_after_generation_bump(self, checker):
        assert not checker.is_known("zlatan")
        writer = IndexWriter(checker.index, SimpleAnalyzer())
        writer.add_document(
            Document([Field("narration", "zlatan scores again")]))
        assert checker.is_known("zlatan")
        assert checker.correct_query("zlatn") == "zlatan"

    def test_vocabulary_cached_within_one_generation(self, checker):
        checker.is_known("goal")
        generation = checker._vocab_generation
        first = checker._vocab
        checker.suggestions("mesi")
        assert checker._vocab is first           # no rebuild
        assert checker._vocab_generation == generation

    def test_segmented_index_vocabulary(self, pipeline, small_corpus,
                                        tmp_path):
        """Duck-typing: the segmented serving index works, and a
        committed delta makes its terms spell-known."""
        from repro.core import IndexName
        from repro.core.parallel import MatchProcessor, MatchTask
        from repro.soccer.crawler import SimulatedCrawler

        result = pipeline.run_segmented(small_corpus.crawled, tmp_path)
        try:
            index = result.index(IndexName.FULL_INF)
            checker = SpellChecker(index, fields=["narration"])
            assert checker.is_known("goal")

            crawler = SimulatedCrawler(small_corpus.teams, seed=11)
            names = sorted(small_corpus.teams)
            crawled = crawler.crawl_match(names[4], names[5],
                                          "2012_02_02")
            partial = MatchProcessor().process(
                MatchTask(position=0, crawled=crawled))
            delta = partial.indexes[IndexName.FULL_INF]
            fresh = sorted(term for term in delta.terms("narration")
                           if not checker.is_known(term))
            assert fresh    # a new fixture brings new player names
            result.directories[IndexName.FULL_INF].add_index(delta)
            index.refresh()
            assert all(checker.is_known(term) for term in fresh)
            assert checker._vocab_generation == index.generation
        finally:
            result.close()
