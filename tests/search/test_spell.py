"""Tests for the spell checker."""

import pytest

from repro.search import (Document, Field, IndexWriter, InvertedIndex,
                          SimpleAnalyzer)
from repro.search.spell import SpellChecker


@pytest.fixture
def checker():
    idx = InvertedIndex()
    writer = IndexWriter(idx, SimpleAnalyzer())
    texts = [
        "messi scores a goal",
        "messi dribbles again",
        "ronaldo shoots wide",
        "casillas saves the penalty",
    ]
    for text in texts:
        writer.add_document(Document([Field("narration", text)]))
    return SpellChecker(idx, fields=["narration"],
                        analyzer=SimpleAnalyzer())


class TestSuggestions:
    def test_close_misspelling_found(self, checker):
        [best, *_] = checker.suggestions("mesi")
        assert best.term == "messi"
        assert best.distance == 1

    def test_frequency_breaks_distance_ties(self, checker):
        # "messi" (df=2) should outrank equally-distant rarer terms
        suggestions = checker.suggestions("mess")
        assert suggestions[0].term == "messi"

    def test_hopeless_term_no_suggestions(self, checker):
        assert checker.suggestions("xylophone") == []

    def test_known_term_detection(self, checker):
        assert checker.is_known("goal")
        assert not checker.is_known("gaol")

    def test_limit_respected(self, checker):
        assert len(checker.suggestions("save", limit=2)) <= 2

    def test_invalid_max_edits(self, checker):
        with pytest.raises(ValueError):
            SpellChecker(checker.index, max_edits=0)


class TestCorrectQuery:
    def test_corrects_unknown_terms_only(self, checker):
        assert checker.correct_query("mesi goal") == "messi goal"

    def test_known_terms_untouched(self, checker):
        assert checker.correct_query("messi goal") == "messi goal"

    def test_unfixable_terms_pass_through(self, checker):
        assert checker.correct_query("zzzzzzz goal") == "zzzzzzz goal"

    def test_transposition_fixed(self, checker):
        assert checker.correct_query("gaol") == "goal"


class TestOnRealIndex:
    def test_player_names_corrected(self, pipeline_result):
        from repro.core import F, IndexName
        index = pipeline_result.index(IndexName.FULL_INF)
        checker = SpellChecker(index,
                               fields=[F.SUBJECT_PLAYER, F.NARRATION])
        assert checker.correct_query("mesi") == "messi"
        corrected = checker.correct_query("ronaldo scores")
        assert corrected == "ronaldo scores"
