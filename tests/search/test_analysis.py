"""Tests for tokenization, filters, stemming and analyzers."""

import pytest
from hypothesis import given, strategies as st

from repro.search.analysis import (ASCIIFoldingFilter, ENGLISH_STOPWORDS,
                                   KeywordAnalyzer, KeywordTokenizer,
                                   LowercaseFilter, PorterStemmer,
                                   RegexTokenizer, SimpleAnalyzer,
                                   StandardAnalyzer, StemFilter,
                                   StopFilter, SynonymFilter, Token,
                                   WhitespaceTokenizer,
                                   analyzer_with_synonyms, stem)


class TestTokenizers:
    def test_regex_tokenizer_positions_and_offsets(self):
        tokens = RegexTokenizer().tokenize("Messi scores a goal")
        assert [t.text for t in tokens] == ["Messi", "scores", "a", "goal"]
        assert [t.position for t in tokens] == [0, 1, 2, 3]
        assert tokens[0].start == 0 and tokens[0].end == 5

    def test_apostrophes_kept_in_words(self):
        tokens = RegexTokenizer().tokenize("Eto'o scores")
        assert tokens[0].text == "Eto'o"

    def test_punctuation_split(self):
        tokens = RegexTokenizer().tokenize("Goal! 1-0, surely?")
        assert [t.text for t in tokens] == ["Goal", "1", "0", "surely"]

    def test_whitespace_tokenizer(self):
        tokens = WhitespaceTokenizer().tokenize("a-b c")
        assert [t.text for t in tokens] == ["a-b", "c"]

    def test_keyword_tokenizer(self):
        tokens = KeywordTokenizer().tokenize("Exact Value Here")
        assert len(tokens) == 1
        assert tokens[0].text == "Exact Value Here"

    def test_keyword_tokenizer_empty(self):
        assert KeywordTokenizer().tokenize("") == []


class TestStemmer:
    @pytest.mark.parametrize("word,expected", [
        ("caresses", "caress"),
        ("ponies", "poni"),
        ("cats", "cat"),
        ("feed", "feed"),
        ("agreed", "agre"),
        ("plastered", "plaster"),
        ("motoring", "motor"),
        ("sing", "sing"),
        ("conflated", "conflat"),
        ("troubling", "troubl"),
        ("sized", "size"),
        ("hopping", "hop"),
        ("falling", "fall"),
        ("hissing", "hiss"),
        ("failing", "fail"),
        ("filing", "file"),
        ("happy", "happi"),
        ("relational", "relat"),
        ("conditional", "condit"),
        ("rational", "ration"),
        ("valenci", "valenc"),
        ("digitizer", "digit"),
        ("operator", "oper"),
        ("feudalism", "feudal"),
        ("decisiveness", "decis"),
        ("hopefulness", "hope"),
        ("formality", "formal"),
        ("sensitivity", "sensit"),
        ("triplicate", "triplic"),
        ("formative", "form"),
        ("formalize", "formal"),
        ("electricity", "electr"),
        ("hopeful", "hope"),
        ("goodness", "good"),
        ("revival", "reviv"),
        ("allowance", "allow"),
        ("inference", "infer"),
        ("airliner", "airlin"),
        ("adjustable", "adjust"),
        ("defensible", "defens"),
        ("irritant", "irrit"),
        ("replacement", "replac"),
        ("adjustment", "adjust"),
        ("dependent", "depend"),
        ("adoption", "adopt"),
        ("homologou", "homolog"),
        ("communism", "commun"),
        ("activate", "activ"),
        ("effective", "effect"),
        ("bowdlerize", "bowdler"),
        ("probate", "probat"),
        ("rate", "rate"),
        ("cease", "ceas"),
        ("controll", "control"),
        ("roll", "roll"),
    ])
    def test_porter_reference_vocabulary(self, word, expected):
        assert stem(word) == expected

    def test_short_words_untouched(self):
        assert stem("at") == "at"
        assert stem("by") == "by"

    def test_domain_words(self):
        # the critical retrieval behaviour: "scores" and "score" unify
        assert stem("scores") == stem("score")
        assert stem("misses") == stem("miss")
        assert stem("saves") == stem("save")
        assert stem("moves") == stem("move")

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                   max_size=15))
    def test_never_grows_words(self, word):
        assert len(stem(word)) <= len(word)

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                   max_size=15))
    def test_idempotent_for_retrieval(self, word):
        # stemming a stem may reduce further in rare cases, but must
        # never crash and must stay a string
        result = stem(word)
        assert isinstance(result, str)


class TestFilters:
    def _tokens(self, *texts):
        return [Token(t, i, 0, len(t)) for i, t in enumerate(texts)]

    def test_lowercase(self):
        out = LowercaseFilter().apply(self._tokens("Messi", "SCORES"))
        assert [t.text for t in out] == ["messi", "scores"]

    def test_stop_removes_but_keeps_positions(self):
        out = StopFilter().apply(self._tokens("goal", "of", "messi"))
        assert [t.text for t in out] == ["goal", "messi"]
        assert [t.position for t in out] == [0, 2]

    def test_default_stopwords(self):
        assert "the" in ENGLISH_STOPWORDS
        assert "goal" not in ENGLISH_STOPWORDS

    def test_stem_filter(self):
        out = StemFilter().apply(self._tokens("scores"))
        assert out[0].text == "score"

    def test_ascii_folding(self):
        out = ASCIIFoldingFilter().apply(self._tokens("Vidić", "Özgür"))
        assert [t.text for t in out] == ["Vidic", "Ozgur"]

    def test_synonyms_share_position(self):
        synonyms = SynonymFilter({"goal": ["gol"]})
        out = synonyms.apply(self._tokens("goal", "kick"))
        assert [(t.text, t.position) for t in out] \
            == [("goal", 0), ("gol", 0), ("kick", 1)]


class TestAnalyzers:
    def test_standard_full_chain(self):
        terms = StandardAnalyzer().terms("The Goalkeeper SAVES brilliantly!")
        assert "save" in terms
        assert "the" not in terms

    def test_standard_without_stemming(self):
        terms = StandardAnalyzer(stem=False).terms("saves")
        assert terms == ["saves"]

    def test_simple_keeps_stopwords(self):
        terms = SimpleAnalyzer().terms("goal of the season")
        assert terms == ["goal", "of", "the", "season"]

    def test_keyword_single_token(self):
        terms = KeywordAnalyzer().terms("Yellow Card")
        assert terms == ["yellow card"]

    def test_synonym_extension(self):
        base = SimpleAnalyzer()
        extended = analyzer_with_synonyms(base, {"goal": ["gol"]})
        assert extended.terms("goal") == ["goal", "gol"]
        # the base analyzer is unchanged
        assert base.terms("goal") == ["goal"]
