"""Compiled postings kernels: parity with the stdlib decoders,
gating, and graceful fallback.

The kernels are opt-in (``REPRO_KERNELS``) and must be invisible in
results: every decoded value bit-identical to the stdlib path, every
error surfaced with the stdlib's message shapes, and any condition the
C side cannot handle (wide varints, malformed blocks, no compiler)
silently served by the Python implementation instead.
"""

from __future__ import annotations

import io
import random

import pytest

from repro.search.index import InvertedIndex, codec, kernels
from repro.search.index.segment import (SKIP_BLOCK, SegmentReader,
                                        write_segment)


def encode(values) -> bytes:
    out = io.BytesIO()
    for value in values:
        codec._write_uvarint(out, value)
    return out.getvalue()


@pytest.fixture()
def kernels_on():
    """Enable kernels for one test, restoring the prior state; skips
    when the environment cannot build them (no compiler/cffi)."""
    was = kernels.enabled()
    if not kernels.set_enabled(True):
        kernels.set_enabled(was)
        pytest.skip(f"kernels unavailable: {kernels.status()['reason']}")
    yield
    kernels.set_enabled(was)


class TestGating:
    def test_disabled_kernels_decline_everything(self):
        was = kernels.enabled()
        kernels.set_enabled(False)
        try:
            assert kernels.enabled() is False
            assert kernels.decode_uvarints(encode([1, 2]), 0, 2) is None
            assert kernels.split_postings(encode([0, 1, 0]), 0, 3,
                                          1) is None
            assert kernels.status()["enabled"] is False
        finally:
            kernels.set_enabled(was)

    def test_enable_disable_round_trip(self, kernels_on):
        assert kernels.enabled() is True
        assert kernels.status() == {"requested": True, "enabled": True,
                                    "reason": "ok"}
        kernels.set_enabled(False)
        assert kernels.enabled() is False
        assert kernels.set_enabled(True) is True

    def test_stats_counters_advance(self, kernels_on):
        before = kernels.stats()
        data = encode([5, 6, 7])
        kernels.decode_uvarints(data, 0, len(data))
        after = kernels.stats()
        assert after["values_decoded"] >= before["values_decoded"] + 3
        assert after["parity_failures"] == before["parity_failures"]


class TestDecodeParity:
    def test_matches_stdlib_on_random_streams(self, kernels_on):
        rng = random.Random(17)
        for _ in range(40):
            values = [rng.randint(0, 2 ** rng.randint(1, 62))
                      for _ in range(rng.randint(0, 300))]
            data = encode(values)
            got = kernels.decode_uvarints(data, 0, len(data))
            assert got is not None
            assert list(got) == values
            assert list(got) == codec.decode_uvarints(data, 0,
                                                      len(data))

    def test_subrange_with_offsets(self, kernels_on):
        prefix = encode([9, 400])
        body = encode([0, 127, 128, 2 ** 30, 2 ** 62])
        data = prefix + body + encode([3])
        got = kernels.decode_uvarints(data, len(prefix),
                                      len(prefix) + len(body))
        assert list(got) == [0, 127, 128, 2 ** 30, 2 ** 62]

    def test_wide_varint_declines_to_python(self, kernels_on):
        data = encode([2 ** 70])
        assert kernels.decode_uvarints(data, 0, len(data)) is None
        # ...and the stdlib path handles it fine
        assert codec.decode_uvarints(data, 0, len(data)) == [2 ** 70]

    def test_error_shapes_match_stdlib(self, kernels_on):
        data = encode([2 ** 30])
        with pytest.raises(ValueError, match="inside a varint"):
            kernels.decode_uvarints(data, 0, len(data) - 1)
        with pytest.raises(ValueError, match="does not fit"):
            kernels.decode_uvarints(data, 0, len(data) + 1)


class TestSplitPostings:
    def reference(self, payload: bytes, ndocs: int):
        values = codec.decode_uvarints(payload, 0, len(payload))
        doc_ids, freqs, entries = [], [], []
        position = 0
        doc_id = 0
        for _ in range(ndocs):
            doc_id += values[position]
            doc_ids.append(doc_id)
            freqs.append(values[position + 1])
            entries.append(position + 2)
            position += 2 + values[position + 1]
        return doc_ids, freqs, entries

    def test_matches_python_splitter(self, kernels_on):
        rng = random.Random(23)
        for _ in range(20):
            ndocs = rng.randint(1, SKIP_BLOCK)
            stream = []
            doc_id = 0
            for index in range(ndocs):
                delta = rng.randint(0 if index else 0, 9)
                stream.append(delta if index else doc_id + delta)
                positions = [rng.randint(0, 50)
                             for _ in range(rng.randint(0, 4))]
                stream.append(len(positions))
                stream.extend(positions)
            payload = encode(stream)
            split = kernels.split_postings(payload, 0, len(payload),
                                           ndocs)
            assert split is not None
            doc_ids, freqs, entries, max_freq = split
            want = self.reference(payload, ndocs)
            assert (list(doc_ids), list(freqs), list(entries)) == want
            assert max_freq == max(want[1])

    def test_malformed_block_declines(self, kernels_on):
        payload = encode([1, 3, 0])       # freq 3 but one position
        assert kernels.split_postings(payload, 0, len(payload),
                                      1) is None
        trailing = encode([1, 0, 99])     # bytes after the last doc
        assert kernels.split_postings(trailing, 0, len(trailing),
                                      1) is None


class TestSegmentParity:
    """End to end: a segment decoded with kernels on equals the same
    segment decoded with kernels off, columns and positions alike."""

    def build(self, tmp_path):
        rng = random.Random(31)
        index = InvertedIndex("kern")
        for _ in range(SKIP_BLOCK * 2 + 13):
            doc_id = index.new_doc_id()
            index.index_terms(
                doc_id, "f",
                [("t", position)
                 for position in range(rng.randint(1, 6))])
            index.store_value(doc_id, "doc_key", f"doc-{doc_id}")
        return write_segment(index, tmp_path / "kern.ridx")

    def read_all(self, path):
        with SegmentReader(path) as reader:
            lazy = reader.postings("f", "t")
            columns = [
                (list(lazy.block_columns(block)[0]),
                 list(lazy.block_columns(block)[1]),
                 lazy.block_max_frequency(block))
                for block in range(lazy.block_count())]
            positions = [posting.positions for posting in lazy]
            return columns, positions

    def test_backends_bit_identical(self, tmp_path, kernels_on):
        path = self.build(tmp_path)
        with_kernels = self.read_all(path)
        kernels.set_enabled(False)
        without = self.read_all(path)
        assert with_kernels == without
        assert kernels.stats()["parity_failures"] == 0
