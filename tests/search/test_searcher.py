"""Deterministic-ranking regression tests for the searcher.

Equal-score documents must order by ascending doc id, and the
tie-break must be applied *before* the ``limit`` cut — otherwise
which of the tied documents makes the top-k window depends on dict
iteration order, and rankings stop being reproducible.
"""

import pytest

from repro.search import (Document, Field, IndexSearcher, IndexWriter,
                          InvertedIndex, MatchAllQuery, SimpleAnalyzer)
from repro.search.searcher import rank_docs


class TestRankDocs:
    def test_descending_score(self):
        assert rank_docs({1: 0.5, 2: 2.0, 3: 1.0}) == \
            [(2, 2.0), (3, 1.0), (1, 0.5)]

    def test_equal_scores_order_by_doc_id(self):
        # insertion order deliberately scrambled: the tie-break must
        # not depend on it
        assert rank_docs({3: 1.0, 1: 1.0, 2: 2.0}) == \
            [(2, 2.0), (1, 1.0), (3, 1.0)]
        assert rank_docs({1: 1.0, 3: 1.0, 2: 2.0}) == \
            [(2, 2.0), (1, 1.0), (3, 1.0)]

    def test_ties_resolved_before_the_limit_cut(self):
        # both insertion orders must keep the SAME tied doc (the
        # lowest id) inside the window
        scrambled = {7: 1.0, 4: 1.0, 9: 3.0}
        ordered = {4: 1.0, 7: 1.0, 9: 3.0}
        assert rank_docs(scrambled, limit=2) \
            == rank_docs(ordered, limit=2) \
            == [(9, 3.0), (4, 1.0)]

    def test_empty_and_no_limit(self):
        assert rank_docs({}) == []
        assert rank_docs({5: 1.0}, limit=0) == []


class TestSearcherTieBreak:
    @pytest.fixture
    def searcher(self):
        index = InvertedIndex()
        writer = IndexWriter(index, SimpleAnalyzer())
        for text in ["alpha", "bravo", "charlie", "delta"]:
            writer.add_document(Document([Field("body", text)]))
        return IndexSearcher(index)

    def test_match_all_returns_ascending_doc_ids(self, searcher):
        # MatchAllQuery scores every document identically, so the
        # whole result list is one big tie
        top = searcher.search(MatchAllQuery())
        assert top.doc_ids() == [0, 1, 2, 3]
        assert len({hit.score for hit in top.scored}) == 1

    def test_limit_keeps_the_lowest_tied_ids(self, searcher):
        top = searcher.search(MatchAllQuery(), limit=2)
        assert top.doc_ids() == [0, 1]
        assert top.total_hits == 4
