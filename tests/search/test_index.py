"""Tests for documents, the inverted index, writer and persistence."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IndexError_
from repro.search import (Document, Field, IndexWriter, InvertedIndex,
                          PerFieldAnalyzer, KeywordAnalyzer,
                          SimpleAnalyzer, StandardAnalyzer, load_index,
                          save_index)


class TestDocument:
    def test_add_and_get(self):
        doc = Document().add_text("title", "hello")
        assert doc.get("title") == "hello"

    def test_get_missing_is_none(self):
        assert Document().get("nope") is None

    def test_multi_valued_fields(self):
        doc = Document()
        doc.add(Field("tag", "a"))
        doc.add(Field("tag", "b"))
        assert doc.values("tag") == ["a", "b"]
        assert doc.get("tag") == "a"

    def test_field_names_ordered_unique(self):
        doc = Document([Field("a", "1"), Field("b", "2"), Field("a", "3")])
        assert doc.field_names() == ["a", "b"]

    def test_field_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Field("", "x")

    def test_field_rejects_non_positive_boost(self):
        with pytest.raises(ValueError):
            Field("f", "x", boost=0)

    def test_field_coerces_value_to_str(self):
        assert Field("minute", 42).value == "42"


@pytest.fixture
def index():
    idx = InvertedIndex("test")
    writer = IndexWriter(idx, SimpleAnalyzer())
    docs = [
        {"body": "messi scores a goal", "event": "goal"},
        {"body": "cech saves from messi", "event": "save"},
        {"body": "ballack fouls busquets", "event": "foul"},
    ]
    for raw in docs:
        doc = Document()
        for name, value in raw.items():
            doc.add(Field(name, value))
        writer.add_document(doc)
    return idx


class TestInvertedIndex:
    def test_doc_count(self, index):
        assert index.doc_count == 3

    def test_postings(self, index):
        postings = index.postings("body", "messi")
        assert postings.doc_frequency == 2
        assert [p.doc_id for p in postings] == [0, 1]

    def test_positions_recorded(self, index):
        posting = index.postings("body", "goal").get(0)
        assert posting.positions == [3]

    def test_doc_frequency_missing_term(self, index):
        assert index.doc_frequency("body", "zidane") == 0

    def test_terms_sorted(self, index):
        terms = list(index.terms("event"))
        assert terms == sorted(terms)

    def test_terms_with_prefix(self, index):
        assert list(index.terms_with_prefix("body", "mes")) == ["messi"]

    def test_field_length(self, index):
        assert index.field_length("body", 0) == 4
        assert index.field_length("event", 0) == 1

    def test_average_field_length(self, index):
        assert index.average_field_length("event") == 1.0

    def test_stored_document_roundtrip(self, index):
        doc = index.stored_document(1)
        assert doc.get("event") == "save"

    def test_stored_value(self, index):
        assert index.stored_value(2, "event") == "foul"

    def test_unknown_doc_raises(self, index):
        with pytest.raises(IndexError_):
            index.stored_document(99)

    def test_unique_term_count(self, index):
        assert index.unique_term_count("event") == 3

    def test_index_terms_unknown_doc_raises(self, index):
        with pytest.raises(IndexError_):
            index.index_terms(42, "body", [("x", 0)])


class TestWriter:
    def test_unindexed_field_not_searchable_but_stored(self):
        idx = InvertedIndex()
        writer = IndexWriter(idx, SimpleAnalyzer())
        doc = Document([Field("secret", "hidden", indexed=False)])
        writer.add_document(doc)
        assert idx.postings("secret", "hidden") is None
        assert idx.stored_value(0, "secret") == "hidden"

    def test_unstored_field_searchable_but_not_retrievable(self):
        idx = InvertedIndex()
        writer = IndexWriter(idx, SimpleAnalyzer())
        writer.add_document(Document([Field("body", "findme",
                                            stored=False)]))
        assert idx.postings("body", "findme") is not None
        assert idx.stored_value(0, "body") is None

    def test_per_field_analyzers(self):
        idx = InvertedIndex()
        analyzer = PerFieldAnalyzer(
            default=StandardAnalyzer(),
            per_field={"id": KeywordAnalyzer()})
        writer = IndexWriter(idx, analyzer)
        writer.add_document(Document([Field("id", "Event 42"),
                                      Field("body", "Scores!")]))
        assert idx.postings("id", "event 42") is not None
        assert idx.postings("body", "score") is not None

    def test_boost_recorded(self):
        idx = InvertedIndex()
        writer = IndexWriter(idx, SimpleAnalyzer())
        writer.add_document(Document([Field("event", "goal", boost=4.0)]))
        writer.add_document(Document([Field("event", "goal")]))
        assert idx.field_boost("event", 0) == 4.0
        assert idx.field_boost("event", 1) == 1.0

    def test_add_documents_bulk(self, index):
        writer = IndexWriter(index, SimpleAnalyzer())
        count = writer.add_documents(
            Document([Field("body", f"doc {i}")]) for i in range(5))
        assert count == 5
        assert index.doc_count == 8


class TestPersistence:
    def test_roundtrip(self, index, tmp_path):
        path = save_index(index, tmp_path)
        assert path.exists()
        loaded = load_index(tmp_path, "test")
        assert loaded.doc_count == index.doc_count
        assert loaded.postings("body", "messi").doc_frequency == 2
        assert loaded.stored_value(0, "event") == "goal"

    def test_boosts_and_lengths_survive(self, tmp_path):
        idx = InvertedIndex("boosted")
        writer = IndexWriter(idx, SimpleAnalyzer())
        writer.add_document(Document([Field("event", "goal", boost=6.0)]))
        save_index(idx, tmp_path)
        loaded = load_index(tmp_path, "boosted")
        assert loaded.field_boost("event", 0) == 6.0
        assert loaded.field_length("event", 0) == 1

    def test_missing_index_raises(self, tmp_path):
        with pytest.raises(IndexError_):
            load_index(tmp_path, "ghost")

    def test_list_indexes(self, index, tmp_path):
        from repro.search.index import list_indexes
        assert list_indexes(tmp_path) == []
        save_index(index, tmp_path)
        assert list_indexes(tmp_path) == ["test"]


class TestPropertyBased:
    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=4),
                    min_size=1, max_size=20))
    def test_field_length_equals_token_count(self, words):
        idx = InvertedIndex()
        writer = IndexWriter(idx, SimpleAnalyzer())
        writer.add_document(Document([Field("body", " ".join(words))]))
        assert idx.field_length("body", 0) == len(words)

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=4),
                    min_size=1, max_size=20))
    def test_every_token_findable(self, words):
        idx = InvertedIndex()
        writer = IndexWriter(idx, SimpleAnalyzer())
        writer.add_document(Document([Field("body", " ".join(words))]))
        for word in words:
            assert idx.postings("body", word) is not None

    @given(st.lists(st.text(alphabet="abcd", min_size=1, max_size=5),
                    min_size=1, max_size=12))
    def test_json_roundtrip_preserves_postings(self, words):
        idx = InvertedIndex()
        writer = IndexWriter(idx, SimpleAnalyzer())
        writer.add_document(Document([Field("body", " ".join(words))]))
        clone = InvertedIndex.from_json(idx.to_json())
        for word in set(words):
            original = idx.postings("body", word).get(0).positions
            restored = clone.postings("body", word).get(0).positions
            assert original == restored
