"""RIDX v3 segment format: round-trip fidelity, laziness, merging."""

from __future__ import annotations

import random

import pytest

from repro.search.index import InvertedIndex
from repro.search.index.segment import (SKIP_BLOCK, SegmentReader,
                                        merge_segment_files,
                                        write_segment)

VOCAB = ["goal", "foul", "messi", "pass", "Zürich", "corner", "card"]


def sample_index(seed: int = 7, docs: int = 30,
                 name: str = "demo") -> InvertedIndex:
    rng = random.Random(seed)
    index = InvertedIndex(name)
    for _ in range(docs):
        doc_id = index.new_doc_id()
        index.index_terms(
            doc_id, "event",
            [(rng.choice(VOCAB), p) for p in range(rng.randint(1, 5))],
            boost=rng.choice([1.0, 2.0, 3.5]))
        if rng.random() < 0.8:
            index.index_terms(
                doc_id, "narration",
                [(rng.choice(VOCAB), p)
                 for p in range(rng.randint(1, 8))])
        index.store_value(doc_id, "doc_key", f"doc-{doc_id}")
    return index


@pytest.fixture()
def sealed(tmp_path):
    index = sample_index()
    path = write_segment(index, tmp_path / "seg.ridx")
    reader = SegmentReader(path)
    yield index, reader, path
    reader.close()


class TestRoundTrip:
    def test_to_inverted_reproduces_source(self, sealed):
        index, reader, _ = sealed
        assert reader.to_inverted().to_json() == index.to_json()

    def test_doc_count_and_fields(self, sealed):
        index, reader, _ = sealed
        assert reader.doc_count == index.doc_count
        assert set(reader.field_names()) == set(index.field_names())

    def test_postings_statistics_survive(self, sealed):
        index, reader, _ = sealed
        for field in ("event", "narration"):
            for term in index.terms(field):
                original = index.postings(field, term)
                lazy = reader.postings(field, term)
                assert lazy.doc_frequency == original.doc_frequency
                assert lazy.total_frequency == original.total_frequency
                assert lazy.max_frequency == original.max_frequency
                # doc_ids() is now a typed int64 column, so compare
                # contents, not container type
                assert list(lazy.doc_ids()) == original.doc_ids()

    def test_positions_survive(self, sealed):
        index, reader, _ = sealed
        original = {p.doc_id: p for p in index.postings("event", "goal")}
        for posting in reader.postings("event", "goal"):
            assert posting.positions \
                == original[posting.doc_id].positions

    def test_per_document_state(self, sealed):
        index, reader, _ = sealed
        for doc_id in range(index.doc_count):
            assert reader.field_length("event", doc_id) \
                == index.field_length("event", doc_id)
            assert reader.field_boost("event", doc_id) \
                == index.field_boost("event", doc_id)
            assert reader.stored_fields(doc_id)["doc_key"] \
                == [f"doc-{doc_id}"]
        assert reader.max_field_boost("event") \
            == index.max_field_boost("event")

    def test_global_statistics_are_exact_integer_sums(self, sealed):
        index, reader, _ = sealed
        for field in ("event", "narration"):
            assert reader.docs_with_field(field) \
                == index.docs_with_field(field)
            docs = reader.docs_with_field(field)
            assert reader.sum_lengths(field) \
                == round(index.average_field_length(field) * docs)

    def test_empty_index_seals_and_opens(self, tmp_path):
        empty = InvertedIndex("empty")
        path = write_segment(empty, tmp_path / "empty.ridx")
        with SegmentReader(path) as reader:
            assert reader.doc_count == 0
            assert reader.to_inverted().to_json() == empty.to_json()

    def test_encoding_is_deterministic(self, tmp_path):
        index = sample_index()
        first = write_segment(index, tmp_path / "a.ridx")
        second = write_segment(index, tmp_path / "b.ridx")
        assert first.read_bytes() == second.read_bytes()


class TestLaziness:
    def test_point_lookup_does_not_materialize(self, sealed):
        index, reader, _ = sealed
        lazy = reader.postings("event", "goal")
        target = index.postings("event", "goal").doc_ids()[0]
        hit = lazy.get(target)
        assert hit is not None and hit.doc_id == target
        assert lazy.get(-1) is None
        # the point lookup decoded one position list, never the
        # materialized Posting objects for the whole term
        assert lazy._decoded._postings_by_base == {}
        decoded_lists = [entry for entry
                         in lazy._decoded._positions
                         if entry is not None]
        assert len(decoded_lists) == 1

    def test_skip_blocks_cover_long_postings(self, tmp_path):
        index = InvertedIndex("long")
        docs = SKIP_BLOCK * 3 + 5
        for _ in range(docs):
            doc_id = index.new_doc_id()
            index.index_terms(doc_id, "f", [("t", 0), ("t", 1)])
        path = write_segment(index, tmp_path / "long.ridx")
        with SegmentReader(path) as reader:
            lazy = reader.postings("f", "t")
            assert len(lazy._meta.skip_docs) > 1
            for doc_id in (0, SKIP_BLOCK - 1, SKIP_BLOCK,
                           docs - 1):
                assert lazy.get(doc_id).doc_id == doc_id
            assert list(lazy.doc_ids()) == list(range(docs))


class TestRebase:
    def test_base_offsets_doc_ids_and_injected_df(self, sealed):
        index, reader, _ = sealed
        local = index.postings("event", "goal")
        lazy = reader.postings("event", "goal", base=1000,
                               doc_frequency=4242)
        assert lazy.doc_frequency == 4242          # global, injected
        assert len(lazy) == local.doc_frequency    # local cardinality
        assert list(lazy.doc_ids()) \
            == [doc_id + 1000 for doc_id in local.doc_ids()]
        first = local.doc_ids()[0]
        assert lazy.get(first + 1000).doc_id == first + 1000


class TestMerge:
    def test_merge_is_byte_identical_to_union_build(self, tmp_path):
        chunks = [sample_index(seed=seed, docs=10 + seed, name="demo")
                  for seed in (1, 2, 3)]
        union = InvertedIndex("demo")
        for chunk in chunks:
            union.merge(chunk)
        readers = [SegmentReader(write_segment(
                       chunk, tmp_path / f"in_{number}.ridx"))
                   for number, chunk in enumerate(chunks)]
        try:
            merged = merge_segment_files(readers,
                                         tmp_path / "merged.ridx")
        finally:
            for reader in readers:
                reader.close()
        oracle = write_segment(union, tmp_path / "oracle.ridx")
        assert merged.read_bytes() == oracle.read_bytes()

    def test_merged_segment_round_trips(self, tmp_path):
        chunks = [sample_index(seed=seed, docs=8, name="demo")
                  for seed in (4, 5)]
        union = InvertedIndex("demo")
        for chunk in chunks:
            union.merge(chunk)
        readers = [SegmentReader(write_segment(
                       chunk, tmp_path / f"in_{number}.ridx"))
                   for number, chunk in enumerate(chunks)]
        try:
            merged = merge_segment_files(readers,
                                         tmp_path / "merged.ridx")
        finally:
            for reader in readers:
                reader.close()
        with SegmentReader(merged) as reader:
            assert reader.to_inverted().to_json() == union.to_json()


class TestDecodeOnceCache:
    """The per-reader postings LRU: one decode per hot term, shared
    arrays, exact accounting, bounded size."""

    def test_repeat_postings_share_one_decoded_term(self, sealed):
        _, reader, _ = sealed
        first = reader.postings("event", "goal")
        again = reader.postings("event", "goal", base=100)
        assert first._decoded is again._decoded
        info = reader.postings_cache_info()
        assert (info.hits, info.misses) == (1, 1)
        assert info.currsize == 1

    def test_cached_decode_matches_direct_decode(self, sealed):
        from repro.search.index.segment import DecodedTerm
        index, reader, _ = sealed
        for term in ("goal", "foul", "messi"):
            cached = reader.postings("event", term)
            if cached is None:
                continue
            meta = reader.term_meta("event", term)
            direct = DecodedTerm.decode(reader._mmap, meta)
            assert cached._decoded.doc_ids == direct.doc_ids
            assert cached._decoded.freqs == direct.freqs
            original = index.postings("event", term)
            assert list(cached.doc_ids()) == original.doc_ids()
            assert [p.positions for p in cached] \
                == [p.positions for p in original]

    def test_frequency_fast_path_matches_get(self, sealed):
        index, reader, _ = sealed
        lazy = reader.postings("event", "goal")
        for doc_id in range(index.doc_count):
            posting = lazy.get(doc_id)
            if posting is None:
                assert lazy.frequency(doc_id) is None
            else:
                assert lazy.frequency(doc_id) == posting.frequency

    def test_lru_is_bounded_and_evicts(self, tmp_path):
        index = sample_index()
        path = write_segment(index, tmp_path / "small.ridx")
        with SegmentReader(path, postings_cache_size=2) as reader:
            touched = 0
            for term in VOCAB:
                if reader.postings("event", term) is not None:
                    touched += 1
            assert touched > 2
            info = reader.postings_cache_info()
            assert info.currsize <= 2
            assert info.maxsize == 2
            assert reader._postings_evictions == touched - 2

    def test_full_vocabulary_walks_bypass_the_lru(self, sealed):
        _, reader, _ = sealed
        reader.to_inverted()
        assert reader.postings_cache_info().currsize == 0

    def test_concurrent_decodes_converge_to_one_object(self, sealed):
        import threading
        _, reader, _ = sealed
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            results.append(reader.postings("event", "goal")._decoded)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 8
        assert all(decoded is results[0] for decoded in results)
        info = reader.postings_cache_info()
        assert info.hits + info.misses == 8
        assert info.currsize == 1
