"""Property-based tests on scoring invariants (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.search import (BooleanQuery, Document, Field, IndexSearcher,
                          IndexWriter, InvertedIndex, Occur,
                          SimpleAnalyzer, TermQuery)
from repro.search.similarity import BM25Similarity, ClassicSimilarity

_WORDS = ["goal", "foul", "save", "pass", "messi", "cech"]


@st.composite
def indexed_corpora(draw):
    docs = draw(st.lists(
        st.lists(st.sampled_from(_WORDS), min_size=1, max_size=8),
        min_size=1, max_size=12))
    index = InvertedIndex()
    writer = IndexWriter(index, SimpleAnalyzer())
    for words in docs:
        writer.add_document(Document([Field("body", " ".join(words))]))
    return index, docs


class TestScoringInvariants:
    @given(indexed_corpora(), st.sampled_from(_WORDS))
    @settings(max_examples=40, deadline=None)
    def test_scores_positive_and_matches_exact(self, corpus, term):
        index, docs = corpus
        searcher = IndexSearcher(index)
        top = searcher.search(TermQuery("body", term))
        expected = {i for i, words in enumerate(docs) if term in words}
        assert set(top.doc_ids()) == expected
        assert all(hit.score > 0 for hit in top)

    @given(indexed_corpora(), st.sampled_from(_WORDS),
           st.floats(min_value=1.5, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_boost_scales_scores_linearly(self, corpus, term, boost):
        index, __ = corpus
        searcher = IndexSearcher(index)
        plain = TermQuery("body", term).score_docs(index,
                                                   searcher.similarity)
        boosted = TermQuery("body", term, boost=boost).score_docs(
            index, searcher.similarity)
        for doc_id, score in plain.items():
            assert boosted[doc_id] == pytest.approx(score * boost)

    @given(indexed_corpora(), st.sampled_from(_WORDS),
           st.sampled_from(_WORDS))
    @settings(max_examples=40, deadline=None)
    def test_must_results_subset_of_should(self, corpus, term1, term2):
        index, __ = corpus
        searcher = IndexSearcher(index)
        must = (BooleanQuery()
                .add(TermQuery("body", term1), Occur.MUST)
                .add(TermQuery("body", term2), Occur.MUST))
        should = (BooleanQuery()
                  .add(TermQuery("body", term1))
                  .add(TermQuery("body", term2)))
        assert set(searcher.search(must).doc_ids()) \
            <= set(searcher.search(should).doc_ids())

    @given(indexed_corpora(), st.sampled_from(_WORDS))
    @settings(max_examples=40, deadline=None)
    def test_must_not_disjoint_from_excluded(self, corpus, term):
        index, docs = corpus
        searcher = IndexSearcher(index)
        query = (BooleanQuery()
                 .add(TermQuery("body", _WORDS[0]))
                 .add(TermQuery("body", term), Occur.MUST_NOT))
        for doc_id in searcher.search(query).doc_ids():
            assert term not in docs[doc_id]

    @given(indexed_corpora(), st.sampled_from(_WORDS))
    @settings(max_examples=30, deadline=None)
    def test_bm25_and_classic_agree_on_match_sets(self, corpus, term):
        index, __ = corpus
        classic = IndexSearcher(index, ClassicSimilarity())
        bm25 = IndexSearcher(index, BM25Similarity())
        query = TermQuery("body", term)
        assert set(classic.search(query).doc_ids()) \
            == set(bm25.search(query).doc_ids())

    @given(indexed_corpora())
    @settings(max_examples=30, deadline=None)
    def test_idf_monotone_in_rarity(self, corpus):
        index, docs = corpus
        sim = ClassicSimilarity()
        frequencies = {
            term: index.doc_frequency("body", term) for term in _WORDS}
        present = [t for t in _WORDS if frequencies[t] > 0]
        for first in present:
            for second in present:
                if frequencies[first] < frequencies[second]:
                    assert sim.idf(frequencies[first], len(docs)) \
                        >= sim.idf(frequencies[second], len(docs))
