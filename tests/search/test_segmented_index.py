"""SegmentedIndex parity: scatter-gather serving == monolithic index.

A segmented index over chunks A+B+C must be indistinguishable from
one InvertedIndex built over the same documents: same doc ids, same
statistics, same scores (bit for bit, including tie order), same
total_hits — at every segment count, k and query shape.  The driver
may additionally skip whole segments whose score bound cannot reach
the heap; that must stay invisible in the results.
"""

from __future__ import annotations

import random

from repro.search.index import IndexDirectory, InvertedIndex, SegmentedIndex
from repro.search.query.queries import (BooleanQuery, DisMaxQuery, Occur,
                                        PhraseQuery, TermQuery)
from repro.search.searcher import IndexSearcher
from repro.search.similarity import BM25Similarity, ClassicSimilarity
from repro.search.topk import run_top_k

VOCAB = ["goal", "messi", "pass", "foul", "corner", "shot", "save"]
FIELDS = ["event", "narration", "player"]


def random_doc_specs(rng: random.Random, docs: int):
    """Doc blueprints fed identically to both index builds."""
    specs = []
    for _ in range(docs):
        fields = {}
        for field_name in FIELDS:
            terms = [(rng.choice(VOCAB), position)
                     for position in range(rng.randint(0, 6))]
            if terms:
                fields[field_name] = (terms,
                                      rng.choice([1.0, 1.0, 2.0]))
        specs.append(fields)
    return specs


def feed(index: InvertedIndex, specs, start: int = 0) -> None:
    for offset, fields in enumerate(specs):
        doc_id = index.new_doc_id()
        for field_name, (terms, boost) in fields.items():
            index.index_terms(doc_id, field_name, terms, boost=boost)
        index.store_value(doc_id, "doc_key", f"doc-{start + offset}")


def build_pair(rng: random.Random, docs: int, tmp_path):
    """A monolithic index and a segmented index over the same docs,
    split into 1–5 random contiguous chunks."""
    specs = random_doc_specs(rng, docs)
    mono = InvertedIndex("fuzz")
    feed(mono, specs)
    directory = IndexDirectory(tmp_path / f"fuzz{rng.random()}.segd",
                               name="fuzz")
    cuts = sorted(rng.sample(range(1, docs),
                             k=min(rng.randint(0, 4), docs - 1)))
    for start, end in zip([0, *cuts], [*cuts, docs]):
        chunk = InvertedIndex("fuzz")
        feed(chunk, specs[start:end], start=start)
        directory.add_index(chunk)
    return mono, SegmentedIndex(directory)


def random_query(rng: random.Random, depth: int = 0):
    kind = rng.choice(["term", "dismax", "bool"]) if depth < 2 else "term"
    if kind == "term":
        return TermQuery(rng.choice(FIELDS), rng.choice(VOCAB),
                         boost=rng.choice([1.0, 1.0, 3.0]))
    if kind == "dismax":
        return DisMaxQuery(
            [random_query(rng, depth + 1)
             for _ in range(rng.randint(1, 4))],
            tie_breaker=rng.choice([0.0, 0.1, 0.5, 1.0]),
            boost=rng.choice([1.0, 2.0]))
    query = BooleanQuery(boost=rng.choice([1.0, 1.5]))
    for _ in range(rng.randint(1, 4)):
        query.add(random_query(rng, depth + 1),
                  rng.choice([Occur.SHOULD, Occur.SHOULD, Occur.MUST,
                              Occur.MUST_NOT]))
    return query


class TestReadApiParity:
    def test_statistics_and_stored_fields_match(self, tmp_path):
        rng = random.Random(11)
        mono, segmented = build_pair(rng, 40, tmp_path)
        with segmented:
            assert segmented.doc_count == mono.doc_count
            assert segmented.segment_count >= 1
            for field_name in FIELDS:
                assert sorted(segmented.terms(field_name)) \
                    == sorted(mono.terms(field_name))
                assert segmented.average_field_length(field_name) \
                    == mono.average_field_length(field_name)
                assert segmented.docs_with_field(field_name) \
                    == mono.docs_with_field(field_name)
                assert segmented.max_field_boost(field_name) \
                    == mono.max_field_boost(field_name)
                for term in mono.terms(field_name):
                    assert segmented.doc_frequency(field_name, term) \
                        == mono.doc_frequency(field_name, term)
                    ours = segmented.postings(field_name, term)
                    theirs = mono.postings(field_name, term)
                    assert ours.doc_ids() == theirs.doc_ids()
                    assert ours.doc_frequency == theirs.doc_frequency
                    assert ours.total_frequency \
                        == theirs.total_frequency
            for doc_id in range(mono.doc_count):
                assert segmented.stored_value(doc_id, "doc_key") \
                    == mono.stored_value(doc_id, "doc_key")
                for field_name in FIELDS:
                    assert segmented.field_length(field_name, doc_id) \
                        == mono.field_length(field_name, doc_id)
                    assert segmented.field_boost(field_name, doc_id) \
                        == mono.field_boost(field_name, doc_id)

    def test_to_inverted_round_trip(self, tmp_path):
        mono, segmented = build_pair(random.Random(5), 25, tmp_path)
        with segmented:
            assert segmented.to_inverted().to_json() == mono.to_json()


class TestSearchParity:
    """Scatter-gather top-k over segments == monolithic oracle."""

    def test_fuzz_bit_identical_rankings(self, tmp_path):
        rng = random.Random(1234)
        for trial in range(15):
            docs = rng.randint(5, 40)
            mono, segmented = build_pair(rng, docs, tmp_path)
            similarity = rng.choice([ClassicSimilarity(),
                                     BM25Similarity()])
            oracle = IndexSearcher(mono, similarity, cache_size=0)
            ours = IndexSearcher(segmented, similarity, cache_size=0)
            with segmented:
                for _ in range(8):
                    query = random_query(rng)
                    limit = rng.choice([1, 3, docs, docs + 7, None])
                    mine = ours.search(query, limit)
                    ref = oracle.search_exhaustive(query, limit)
                    assert [(h.doc_id, h.score) for h in mine] \
                        == [(h.doc_id, h.score) for h in ref], \
                        (trial, query, limit)
                    assert mine.total_hits == ref.total_hits

    def test_phrase_queries_match(self, tmp_path):
        rng = random.Random(99)
        mono, segmented = build_pair(rng, 30, tmp_path)
        query = PhraseQuery("narration", ["goal", "messi"])
        with segmented:
            mine = IndexSearcher(segmented).search(query, 10)
            ref = IndexSearcher(mono).search_exhaustive(query, 10)
            assert [(h.doc_id, h.score) for h in mine] \
                == [(h.doc_id, h.score) for h in ref]

    def test_explain_matches_monolithic(self, tmp_path):
        rng = random.Random(7)
        mono, segmented = build_pair(rng, 20, tmp_path)
        with segmented:
            for _ in range(5):
                query = random_query(rng)
                for doc_id in range(mono.doc_count):
                    assert IndexSearcher(segmented).explain(
                        query, doc_id) \
                        == IndexSearcher(mono).explain(query, doc_id)


class TestSegmentPruning:
    def build_skewed(self, tmp_path):
        """Segment 0 holds the only boosted doc; later segments'
        bounds (their local max boost) fall below the k=1 heap."""
        directory = IndexDirectory(tmp_path / "skew.segd", name="skew")
        hot = InvertedIndex("skew")
        doc_id = hot.new_doc_id()
        hot.index_terms(doc_id, "f", [("t", 0)], boost=4.0)
        directory.add_index(hot)
        for _ in range(3):
            cold = InvertedIndex("skew")
            doc_id = cold.new_doc_id()
            cold.index_terms(doc_id, "f", [("t", 0)])
            directory.add_index(cold)
        return directory

    def test_whole_segments_are_skipped_but_results_exact(
            self, tmp_path):
        directory = self.build_skewed(tmp_path)
        with SegmentedIndex(directory) as segmented:
            result = run_top_k(segmented, ClassicSimilarity(),
                               TermQuery("f", "t"), 1)
            assert result is not None
            assert result.segments_searched \
                + result.segments_pruned == 4
            assert result.segments_pruned > 0
            # pruned segments still count toward total_hits
            assert result.total_hits == 4
            assert [doc_id for doc_id, _ in result.ranked] == [0]
            oracle = IndexSearcher(segmented).search_exhaustive(
                TermQuery("f", "t"), 1)
            assert [(h.doc_id, h.score)
                    for h in IndexSearcher(segmented, cache_size=0)
                    .search(TermQuery("f", "t"), 1)] \
                == [(h.doc_id, h.score) for h in oracle]

    def test_monolithic_results_report_no_segments(self, tmp_path):
        index = InvertedIndex("plain")
        doc_id = index.new_doc_id()
        index.index_terms(doc_id, "f", [("t", 0)])
        result = run_top_k(index, ClassicSimilarity(),
                           TermQuery("f", "t"), 1)
        assert result.segments_searched == 0
        assert result.segments_pruned == 0


class TestPinnedRefreshRace:
    """Reading ``_state`` and pinning it are two separate steps, so a
    concurrent refresh can swap + retire the set in between; the old
    unconditional ``pin()`` would then hand the reader a segment set
    whose mmaps were already closed.  ``try_pin`` must refuse retired
    sets and ``pinned()`` must retry against the freshly swapped-in
    state."""

    def grow(self, segmented, rng, docs=5):
        """Commit one more segment so a newer manifest generation
        exists on disk."""
        chunk = InvertedIndex(segmented.name)
        feed(chunk, random_doc_specs(rng, docs), start=1000)
        segmented.directory.add_index(chunk)

    def test_try_pin_refuses_a_retired_set(self, tmp_path):
        rng = random.Random(3)
        _, segmented = build_pair(rng, 20, tmp_path)
        with segmented:
            old = segmented._state
            assert old.try_pin() is True
            old.unpin()
            self.grow(segmented, rng)
            assert segmented.refresh()
            # retired with zero pins: readers are closed, a late pin
            # must fail instead of handing out dead mmaps
            assert old.try_pin() is False

    def test_pinned_retries_past_a_racing_refresh(self, tmp_path,
                                                  monkeypatch):
        from repro.search.index.segments import _SegmentSet

        rng = random.Random(7)
        _, segmented = build_pair(rng, 20, tmp_path)
        with segmented:
            self.grow(segmented, rng)     # newer manifest, not yet live
            old = segmented._state
            real = _SegmentSet.try_pin
            fired = []

            def refresh_between_read_and_pin(state):
                # simulate losing the race: the refresh lands after
                # pinned() read self._state but before the pin
                if not fired:
                    fired.append(True)
                    assert segmented.refresh()
                return real(state)

            monkeypatch.setattr(_SegmentSet, "try_pin",
                                refresh_between_read_and_pin)
            with segmented.pinned() as state:
                assert state is not old
                assert state.generation == segmented.generation
                # reads serve from open mmaps of the new set
                assert state.doc_count == 25
            assert fired == [True]
