"""Tests for index statistics."""

import pytest

from repro.search import (Document, Field, IndexWriter, InvertedIndex,
                          SimpleAnalyzer)
from repro.search.stats import collect_stats, render_stats


@pytest.fixture
def stats():
    idx = InvertedIndex("demo")
    writer = IndexWriter(idx, SimpleAnalyzer())
    writer.add_document(Document([Field("body", "goal goal miss"),
                                  Field("event", "goal")]))
    writer.add_document(Document([Field("body", "save by keeper"),
                                  Field("event", "save"),
                                  Field("hidden", "secret",
                                        indexed=False)]))
    return collect_stats(idx, top_n=2)


class TestCollect:
    def test_header_values(self, stats):
        assert stats.name == "demo"
        assert stats.doc_count == 2
        assert stats.unique_terms == 7   # goal,miss,save,by,keeper + 2

    def test_field_lookup(self, stats):
        body = stats.field("body")
        assert body.docs_with_field == 2
        assert body.unique_terms == 5
        assert body.total_postings == 6       # goal counted twice

    def test_average_length(self, stats):
        assert stats.field("body").average_length == pytest.approx(3.0)

    def test_top_terms_ordered_by_df(self, stats):
        event = stats.field("event")
        assert event.top_terms[0] in (("goal", 1), ("save", 1))
        assert len(event.top_terms) <= 2

    def test_unknown_field_raises(self, stats):
        with pytest.raises(KeyError):
            stats.field("nope")

    def test_stored_only_fields_excluded(self, stats):
        names = [f.name for f in stats.fields]
        assert "hidden" not in names


class TestRender:
    def test_render_contains_all_fields(self, stats):
        text = render_stats(stats)
        assert "body" in text and "event" in text
        assert "2 documents" in text

    def test_render_top_terms(self, stats):
        text = render_stats(stats)
        assert "goal(" in text


class TestOnRealIndex:
    def test_full_inf_statistics_sane(self, pipeline_result):
        from repro.core import IndexName
        index = pipeline_result.index(IndexName.FULL_INF)
        stats = collect_stats(index)
        assert stats.doc_count == index.doc_count
        event = stats.field("event")
        assert event.docs_with_field == index.doc_count
        # every event doc contains the "event" supertype token
        assert event.top_terms[0][0] == "event"
        assert event.top_terms[0][1] == index.doc_count
