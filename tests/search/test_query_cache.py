"""Query result cache: keying, LRU behavior, generation invalidation.

The cache key is (index name, index generation, canonical query
string, limit).  Correctness hangs on the generation component: every
index mutation bumps it, so a cached ranking can never be served for
an index state it was not computed on — without any invalidation
callbacks.  The per-field average-length memo inside InvertedIndex
uses the same counter and is tested here too.
"""

from __future__ import annotations

import threading

from repro.search.index.inverted import InvertedIndex
from repro.search.query.queries import TermQuery
from repro.search.searcher import IndexSearcher, QueryResultCache, TopDocs
from repro.search.similarity import ClassicSimilarity


def goal_index(docs: int = 4, name: str = "cached") -> InvertedIndex:
    index = InvertedIndex(name)
    for i in range(docs):
        doc_id = index.new_doc_id()
        index.index_terms(doc_id, "event",
                          [("goal", p) for p in range(i + 1)])
    return index


class TestSearcherCaching:
    def test_repeat_query_is_a_hit_with_identical_results(self):
        searcher = IndexSearcher(goal_index(), ClassicSimilarity())
        query = TermQuery("event", "goal")
        first = searcher.search(query, 3)
        second = searcher.search(query, 3)
        assert first.cached is False
        assert second.cached is True
        assert second.scored == first.scored
        assert second.total_hits == first.total_hits
        info = searcher.cache.cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_equivalent_query_objects_share_an_entry(self):
        # keying is on the canonical string, not object identity
        searcher = IndexSearcher(goal_index(), ClassicSimilarity())
        searcher.search(TermQuery("event", "goal"), 3)
        searcher.search(TermQuery("event", "goal"), 3)
        assert searcher.cache.cache_info().hits == 1

    def test_limit_is_part_of_the_key(self):
        searcher = IndexSearcher(goal_index(), ClassicSimilarity())
        query = TermQuery("event", "goal")
        assert len(searcher.search(query, 1)) == 1
        assert len(searcher.search(query, 3)) == 3
        assert searcher.cache.cache_info().hits == 0

    def test_boost_changes_the_key(self):
        searcher = IndexSearcher(goal_index(), ClassicSimilarity())
        searcher.search(TermQuery("event", "goal"), 3)
        searcher.search(TermQuery("event", "goal", boost=2.0), 3)
        assert searcher.cache.cache_info().hits == 0

    def test_index_terms_invalidates(self):
        index = goal_index()
        searcher = IndexSearcher(index, ClassicSimilarity())
        query = TermQuery("event", "goal")
        before = searcher.search(query, 10)
        doc_id = index.new_doc_id()
        index.index_terms(doc_id, "event", [("goal", 0)])
        after = searcher.search(query, 10)
        assert searcher.cache.cache_info().hits == 0
        assert after.total_hits == before.total_hits + 1

    def test_merge_invalidates(self):
        index = goal_index()
        searcher = IndexSearcher(index, ClassicSimilarity())
        query = TermQuery("event", "goal")
        before = searcher.search(query, 10)
        index.merge(goal_index(2, name="incoming"))
        after = searcher.search(query, 10)
        assert searcher.cache.cache_info().hits == 0
        assert after.total_hits == before.total_hits + 2

    def test_store_value_invalidates(self):
        index = goal_index()
        searcher = IndexSearcher(index, ClassicSimilarity())
        searcher.search(TermQuery("event", "goal"), 2)
        index.store_value(0, "doc_key", "k")
        searcher.search(TermQuery("event", "goal"), 2)
        assert searcher.cache.cache_info().hits == 0

    def test_cache_size_zero_disables(self):
        searcher = IndexSearcher(goal_index(), ClassicSimilarity(),
                                 cache_size=0)
        query = TermQuery("event", "goal")
        searcher.search(query, 3)
        searcher.search(query, 3)
        assert len(searcher.cache) == 0
        assert searcher.cache.cache_info().hits == 0


class TestQueryResultCacheLRU:
    def entry(self) -> TopDocs:
        return TopDocs(total_hits=0, scored=[])

    def test_evicts_least_recently_used(self):
        cache = QueryResultCache(maxsize=2)
        cache.put(("a",), self.entry())
        cache.put(("b",), self.entry())
        assert cache.get(("a",)) is not None   # refresh "a"
        cache.put(("c",), self.entry())        # evicts "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.get(("c",)) is not None

    def test_cache_info_counts(self):
        cache = QueryResultCache(maxsize=4)
        cache.put(("x",), self.entry())
        cache.get(("x",))
        cache.get(("y",))
        info = cache.cache_info()
        assert (info.hits, info.misses, info.maxsize, info.currsize) \
            == (1, 1, 4, 1)

    def test_concurrent_access_is_safe(self):
        cache = QueryResultCache(maxsize=8)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(300):
                    key = ("q", (seed + i) % 10)
                    cache.put(key, self.entry())
                    cache.get(key)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8


class TestAverageFieldLengthMemo:
    def test_memoized_between_reads(self):
        index = goal_index()
        first = index.average_field_length("event")
        assert index.average_field_length("event") == first
        assert index._avg_length_cache["event"] == (index.generation, first)

    def test_index_terms_invalidates(self):
        index = goal_index(docs=2)           # lengths 1 and 2
        assert index.average_field_length("event") == 1.5
        doc_id = index.new_doc_id()
        index.index_terms(doc_id, "event",
                          [("goal", p) for p in range(6)])
        assert index.average_field_length("event") == 3.0

    def test_merge_invalidates(self):
        index = goal_index(docs=2)           # lengths 1 and 2
        assert index.average_field_length("event") == 1.5
        other = InvertedIndex("other")
        doc_id = other.new_doc_id()
        other.index_terms(doc_id, "event",
                          [("goal", p) for p in range(9)])
        index.merge(other)
        assert index.average_field_length("event") == 4.0


class TestIncrementalPostingsStats:
    def test_total_frequency_tracks_add_occurrence(self):
        index = InvertedIndex("stats")
        doc_a = index.new_doc_id()
        index.index_terms(doc_a, "event", [("goal", 0), ("goal", 1)])
        postings = index.postings("event", "goal")
        assert postings.total_frequency == 2
        assert postings.max_frequency == 2
        doc_b = index.new_doc_id()
        index.index_terms(doc_b, "event", [("goal", 0)])
        assert postings.total_frequency == 3
        assert postings.max_frequency == 2

    def test_stats_survive_merge_and_json(self):
        index = goal_index(docs=3)           # freqs 1, 2, 3
        index.merge(goal_index(docs=4, name="in"))
        postings = index.postings("event", "goal")
        assert postings.total_frequency == 1 + 2 + 3 + 1 + 2 + 3 + 4
        assert postings.max_frequency == 4
        reloaded = InvertedIndex.from_json(index.to_json())
        round_tripped = reloaded.postings("event", "goal")
        assert round_tripped.total_frequency == postings.total_frequency
        assert round_tripped.max_frequency == postings.max_frequency
