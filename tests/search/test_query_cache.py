"""Query result cache: keying, LRU behavior, generation invalidation.

The cache key is (index name, index generation, canonical query
string, limit).  Correctness hangs on the generation component: every
index mutation bumps it, so a cached ranking can never be served for
an index state it was not computed on — without any invalidation
callbacks.  The per-field average-length memo inside InvertedIndex
uses the same counter and is tested here too.
"""

from __future__ import annotations

import threading

from repro.search.index.inverted import InvertedIndex
from repro.search.query.queries import TermQuery
from repro.search.searcher import IndexSearcher, QueryResultCache, TopDocs
from repro.search.similarity import ClassicSimilarity


def goal_index(docs: int = 4, name: str = "cached") -> InvertedIndex:
    index = InvertedIndex(name)
    for i in range(docs):
        doc_id = index.new_doc_id()
        index.index_terms(doc_id, "event",
                          [("goal", p) for p in range(i + 1)])
    return index


class TestSearcherCaching:
    def test_repeat_query_is_a_hit_with_identical_results(self):
        searcher = IndexSearcher(goal_index(), ClassicSimilarity())
        query = TermQuery("event", "goal")
        first = searcher.search(query, 3)
        second = searcher.search(query, 3)
        assert first.cached is False
        assert second.cached is True
        assert second.scored == first.scored
        assert second.total_hits == first.total_hits
        info = searcher.cache.cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_equivalent_query_objects_share_an_entry(self):
        # keying is on the canonical string, not object identity
        searcher = IndexSearcher(goal_index(), ClassicSimilarity())
        searcher.search(TermQuery("event", "goal"), 3)
        searcher.search(TermQuery("event", "goal"), 3)
        assert searcher.cache.cache_info().hits == 1

    def test_limit_is_part_of_the_key(self):
        searcher = IndexSearcher(goal_index(), ClassicSimilarity())
        query = TermQuery("event", "goal")
        assert len(searcher.search(query, 1)) == 1
        assert len(searcher.search(query, 3)) == 3
        assert searcher.cache.cache_info().hits == 0

    def test_boost_changes_the_key(self):
        searcher = IndexSearcher(goal_index(), ClassicSimilarity())
        searcher.search(TermQuery("event", "goal"), 3)
        searcher.search(TermQuery("event", "goal", boost=2.0), 3)
        assert searcher.cache.cache_info().hits == 0

    def test_index_terms_invalidates(self):
        index = goal_index()
        searcher = IndexSearcher(index, ClassicSimilarity())
        query = TermQuery("event", "goal")
        before = searcher.search(query, 10)
        doc_id = index.new_doc_id()
        index.index_terms(doc_id, "event", [("goal", 0)])
        after = searcher.search(query, 10)
        assert searcher.cache.cache_info().hits == 0
        assert after.total_hits == before.total_hits + 1

    def test_merge_invalidates(self):
        index = goal_index()
        searcher = IndexSearcher(index, ClassicSimilarity())
        query = TermQuery("event", "goal")
        before = searcher.search(query, 10)
        index.merge(goal_index(2, name="incoming"))
        after = searcher.search(query, 10)
        assert searcher.cache.cache_info().hits == 0
        assert after.total_hits == before.total_hits + 2

    def test_store_value_invalidates(self):
        index = goal_index()
        searcher = IndexSearcher(index, ClassicSimilarity())
        searcher.search(TermQuery("event", "goal"), 2)
        index.store_value(0, "doc_key", "k")
        searcher.search(TermQuery("event", "goal"), 2)
        assert searcher.cache.cache_info().hits == 0

    def test_cache_size_zero_disables(self):
        searcher = IndexSearcher(goal_index(), ClassicSimilarity(),
                                 cache_size=0)
        query = TermQuery("event", "goal")
        searcher.search(query, 3)
        searcher.search(query, 3)
        assert len(searcher.cache) == 0
        assert searcher.cache.cache_info().hits == 0


class TestQueryResultCacheLRU:
    def entry(self) -> TopDocs:
        return TopDocs(total_hits=0, scored=[])

    def test_evicts_least_recently_used(self):
        # one shard: recency order is global, like the pre-striping
        # implementation
        cache = QueryResultCache(maxsize=2, shards=1)
        cache.put(("a",), self.entry())
        cache.put(("b",), self.entry())
        assert cache.get(("a",)) is not None   # refresh "a"
        cache.put(("c",), self.entry())        # evicts "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.get(("c",)) is not None

    def test_cache_info_counts(self):
        cache = QueryResultCache(maxsize=4)
        cache.put(("x",), self.entry())
        cache.get(("x",))
        cache.get(("y",))
        info = cache.cache_info()
        assert (info.hits, info.misses, info.maxsize, info.currsize) \
            == (1, 1, 4, 1)

    def test_concurrent_access_is_safe(self):
        cache = QueryResultCache(maxsize=8)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(300):
                    key = ("q", (seed + i) % 10)
                    cache.put(key, self.entry())
                    cache.get(key)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8


class TestStripedCache:
    """The lock-striped shards must be externally indistinguishable
    from the old single-lock cache: exact accounting, exact capacity,
    generation invalidation on every shard."""

    def entry(self) -> TopDocs:
        return TopDocs(total_hits=0, scored=[])

    def test_capacity_is_exactly_maxsize_across_shards(self):
        cache = QueryResultCache(maxsize=10, shards=4)
        assert sum(shard.capacity for shard in cache._shards) == 10
        for i in range(200):
            cache.put(("key", i), self.entry())
        assert len(cache) <= 10
        assert cache.cache_info().maxsize == 10

    def test_shards_clamped_to_maxsize(self):
        cache = QueryResultCache(maxsize=2, shards=64)
        assert len(cache._shards) == 2
        assert all(shard.capacity == 1 for shard in cache._shards)

    def test_exact_accounting_under_8_thread_contention(self):
        cache = QueryResultCache(maxsize=8192, shards=8)
        per_thread = 500
        barrier = threading.Barrier(8)
        errors = []

        def worker(seed: int) -> None:
            try:
                barrier.wait()
                for i in range(per_thread):
                    key = ("q", seed, i)       # every lookup misses,
                    cache.get(key)             # then hits
                    cache.put(key, self.entry())
                    assert cache.get(key) is not None
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        info = cache.cache_info()
        # 8 * 500 distinct keys, each looked up exactly once before
        # and once after its put; the cache is big enough that no
        # eviction can turn the second lookup into a miss
        assert info.hits == 8 * per_thread
        assert info.misses == 8 * per_thread
        assert info.currsize == len(cache) == 8 * per_thread
        assert cache.approx_size() == 8 * per_thread

    def test_generation_invalidation_reaches_every_shard(self):
        index = goal_index()
        searcher = IndexSearcher(index, ClassicSimilarity(),
                                 cache_shards=8)
        # spread entries across the shards with distinct limits
        for limit in range(1, 9):
            searcher.search(TermQuery("event", "goal"), limit)
        assert searcher.cache.cache_info().currsize == 8
        doc_id = index.new_doc_id()
        index.index_terms(doc_id, "event", [("goal", 0)])
        # every repeat is a miss: the generation in the key changed,
        # whichever shard the old entry lives in
        for limit in range(1, 9):
            top = searcher.search(TermQuery("event", "goal"), limit)
            assert top.cached is False
        assert searcher.cache.cache_info().hits == 0

    def test_clear_empties_all_shards(self):
        cache = QueryResultCache(maxsize=64, shards=8)
        for i in range(64):
            cache.put(("key", i), self.entry())
        assert len(cache) > 0
        cache.clear()
        assert len(cache) == 0
        assert cache.approx_size() == 0


class TestSingleFlight:
    def test_concurrent_identical_queries_compute_once(self):
        calls = []
        call_lock = threading.Lock()
        release = threading.Event()
        index = goal_index()
        searcher = IndexSearcher(index, ClassicSimilarity())
        inner = searcher._search_uncached

        def slow_uncached(idx, query, limit, obs):
            with call_lock:
                calls.append(repr(query))
            release.wait(5.0)      # hold every leader until all
            return inner(idx, query, limit, obs)   # waiters queue up

        searcher._search_uncached = slow_uncached
        query = TermQuery("event", "goal")
        results = []
        threads = [threading.Thread(
            target=lambda: results.append(searcher.search(query, 3)))
            for _ in range(8)]
        for thread in threads:
            thread.start()
        # let every thread reach the cache miss / wait point
        for _ in range(100):
            if len(calls) == 1 and searcher._inflight:
                break
            threading.Event().wait(0.01)
        release.set()
        for thread in threads:
            thread.join()
        # exactly one engine call; every result identical
        assert len(calls) == 1
        assert len(results) == 8
        first = results[0]
        assert all(top.scored == first.scored for top in results)
        # the seven coalesced callers are marked served-from-cache
        assert sum(1 for top in results if top.cached) == 7
        # accounting stayed exact: one get per search
        info = searcher.cache.cache_info()
        assert info.hits + info.misses == 8

    def test_inflight_table_drains(self):
        searcher = IndexSearcher(goal_index(), ClassicSimilarity())
        searcher.search(TermQuery("event", "goal"), 3)
        assert searcher._inflight == {}

    def test_leader_failure_releases_waiters(self):
        index = goal_index()
        searcher = IndexSearcher(index, ClassicSimilarity())
        inner = searcher._search_uncached
        fail_first = threading.Event()

        def flaky_uncached(idx, query, limit, obs):
            if not fail_first.is_set():
                fail_first.set()
                raise RuntimeError("leader dies")
            return inner(idx, query, limit, obs)

        searcher._search_uncached = flaky_uncached
        query = TermQuery("event", "goal")
        try:
            searcher.search(query, 3)
        except RuntimeError:
            pass
        assert searcher._inflight == {}    # no stuck flight
        top = searcher.search(query, 3)    # next caller recovers
        assert top.total_hits > 0


class TestAverageFieldLengthMemo:
    def test_memoized_between_reads(self):
        index = goal_index()
        first = index.average_field_length("event")
        assert index.average_field_length("event") == first
        assert index._avg_length_cache["event"] == (index.generation, first)

    def test_index_terms_invalidates(self):
        index = goal_index(docs=2)           # lengths 1 and 2
        assert index.average_field_length("event") == 1.5
        doc_id = index.new_doc_id()
        index.index_terms(doc_id, "event",
                          [("goal", p) for p in range(6)])
        assert index.average_field_length("event") == 3.0

    def test_merge_invalidates(self):
        index = goal_index(docs=2)           # lengths 1 and 2
        assert index.average_field_length("event") == 1.5
        other = InvertedIndex("other")
        doc_id = other.new_doc_id()
        other.index_terms(doc_id, "event",
                          [("goal", p) for p in range(9)])
        index.merge(other)
        assert index.average_field_length("event") == 4.0


class TestIncrementalPostingsStats:
    def test_total_frequency_tracks_add_occurrence(self):
        index = InvertedIndex("stats")
        doc_a = index.new_doc_id()
        index.index_terms(doc_a, "event", [("goal", 0), ("goal", 1)])
        postings = index.postings("event", "goal")
        assert postings.total_frequency == 2
        assert postings.max_frequency == 2
        doc_b = index.new_doc_id()
        index.index_terms(doc_b, "event", [("goal", 0)])
        assert postings.total_frequency == 3
        assert postings.max_frequency == 2

    def test_stats_survive_merge_and_json(self):
        index = goal_index(docs=3)           # freqs 1, 2, 3
        index.merge(goal_index(docs=4, name="in"))
        postings = index.postings("event", "goal")
        assert postings.total_frequency == 1 + 2 + 3 + 1 + 2 + 3 + 4
        assert postings.max_frequency == 4
        reloaded = InvertedIndex.from_json(index.to_json())
        round_tripped = reloaded.postings("event", "goal")
        assert round_tripped.total_frequency == postings.total_frequency
        assert round_tripped.max_frequency == postings.max_frequency
