"""Tests for range/fuzzy queries and highlighting."""

import pytest

from repro.errors import QueryError
from repro.search import (Document, Field, IndexSearcher, IndexWriter,
                          InvertedIndex, SimpleAnalyzer,
                          StandardAnalyzer, TermQuery, BooleanQuery,
                          PhraseQuery, Occur)
from repro.search.highlight import Highlighter, collect_terms
from repro.search.query.extras import (FuzzyQuery, RangeQuery,
                                       edit_distance)


@pytest.fixture
def searcher():
    idx = InvertedIndex()
    writer = IndexWriter(idx, SimpleAnalyzer())
    rows = [
        ("messi scores late", "88"),
        ("early strike by torres", "5"),
        ("halftime approaches", "44"),
        ("ronaldo equalises", "60"),
    ]
    for body, minute in rows:
        writer.add_document(Document([Field("body", body),
                                      Field("minute", minute)]))
    return IndexSearcher(idx)


class TestRangeQuery:
    def test_closed_range(self, searcher):
        top = searcher.search(RangeQuery("minute", 40, 70))
        assert set(top.doc_ids()) == {2, 3}

    def test_open_low(self, searcher):
        top = searcher.search(RangeQuery("minute", None, 10))
        assert top.doc_ids() == [1]

    def test_open_high(self, searcher):
        top = searcher.search(RangeQuery("minute", 80, None))
        assert top.doc_ids() == [0]

    def test_non_numeric_terms_skipped(self, searcher):
        top = searcher.search(RangeQuery("body", 0, 100))
        assert len(top) == 0

    def test_combines_with_boolean(self, searcher):
        query = (BooleanQuery()
                 .add(TermQuery("body", "messi"), Occur.MUST)
                 .add(RangeQuery("minute", 80, None), Occur.MUST))
        assert searcher.search(query).doc_ids() == [0]

    def test_no_bounds_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery("minute")

    def test_inverted_bounds_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery("minute", 50, 10)


class TestEditDistance:
    @pytest.mark.parametrize("a,b,expected", [
        ("messi", "messi", 0),
        ("messi", "mesi", 1),       # deletion
        ("messi", "messsi", 1),     # insertion
        ("messi", "massi", 1),      # substitution
        ("messi", "mesis", 1),      # transposition of the final "si"
        ("abcd", "abdc", 1),        # transposition
        ("kitten", "sitting", 3),
    ])
    def test_distances(self, a, b, expected):
        assert edit_distance(a, b, 5) == expected

    def test_cutoff_short_circuits(self):
        assert edit_distance("abcdefgh", "zyxwvuts", 2) == 3

    def test_length_gap_short_circuits(self):
        assert edit_distance("ab", "abcdefgh", 2) == 3


class TestFuzzyQuery:
    def test_typo_still_matches(self, searcher):
        top = searcher.search(FuzzyQuery("body", "mesi", max_edits=1))
        assert top.doc_ids() == [0]

    def test_exact_match_outranks_fuzzy(self):
        idx = InvertedIndex()
        writer = IndexWriter(idx, SimpleAnalyzer())
        writer.add_document(Document([Field("body", "messi")]))
        writer.add_document(Document([Field("body", "mesut")]))
        searcher = IndexSearcher(idx)
        top = searcher.search(FuzzyQuery("body", "messi", max_edits=2))
        assert top.doc_ids()[0] == 0

    def test_zero_edits_is_exact(self, searcher):
        top = searcher.search(FuzzyQuery("body", "ronaldo", max_edits=0))
        assert top.doc_ids() == [3]
        assert len(searcher.search(
            FuzzyQuery("body", "ronalto", max_edits=0))) == 0

    def test_negative_edits_rejected(self):
        with pytest.raises(QueryError):
            FuzzyQuery("body", "x", max_edits=-1)


class TestCollectTerms:
    def test_walks_nested_queries(self):
        query = (BooleanQuery()
                 .add(TermQuery("a", "one"))
                 .add(PhraseQuery("a", ["two", "three"])))
        assert collect_terms(query) == {"one", "two", "three"}


class TestHighlighter:
    def test_highlights_stemmed_match(self):
        highlighter = Highlighter(StandardAnalyzer())
        out = highlighter.highlight_terms("Messi scores a goal!",
                                          {"score"})
        assert "**scores**" in out

    def test_multiple_matches(self):
        highlighter = Highlighter(StandardAnalyzer())
        out = highlighter.highlight_terms("goal after goal", {"goal"})
        assert out == "**goal** after **goal**"

    def test_no_match_returns_original(self):
        highlighter = Highlighter(StandardAnalyzer())
        text = "nothing relevant here"
        assert highlighter.highlight_terms(text, {"goal"}) == text

    def test_custom_markers(self):
        highlighter = Highlighter(StandardAnalyzer(), pre="<em>",
                                  post="</em>")
        out = highlighter.highlight_terms("a goal", {"goal"})
        assert "<em>goal</em>" in out

    def test_highlight_from_query(self):
        highlighter = Highlighter(StandardAnalyzer())
        query = TermQuery("body", "goal")
        assert "**goal**" in highlighter.highlight("the goal stands",
                                                   query)

    def test_best_fragment_window(self):
        highlighter = Highlighter(StandardAnalyzer())
        text = ("a very long opening spell of possession football "
                "eventually produces the goal the crowd wanted to see "
                "after sustained pressure on the visitors")
        fragment = highlighter.best_fragment(
            text, TermQuery("body", "goal"), size=40)
        assert "**goal**" in fragment
        assert len(fragment) < len(text)
        assert fragment.startswith("…")
