"""Thread-safety stress: queries racing segment churn.

The serving claim under test: while a writer commits delta segments,
runs tiered merges and vacuums superseded files, every in-flight
query must (a) never crash on a yanked mmap, (b) see exactly one
manifest generation end to end, and (c) return results bit-identical
to a single-threaded run at that generation.

The oracle is built first by *dry-running the identical op script*
on an identical directory (segment sealing is deterministic), opening
a fresh index after every op and recording each probe query's doc ids
and scores per generation.  The concurrent run then asserts every
result against ``oracle[top.generation]`` — a query that mixed two
generations, read a closed reader, or was served a stale cache entry
under a new key cannot pass.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.search import BooleanQuery, IndexSearcher, Occur, TermQuery
from repro.search.index import IndexDirectory, SegmentedIndex

from tests.search.test_segments import VOCAB, sample_index

READER_THREADS = 8

PROBES = [TermQuery("event", term) for term in VOCAB]
PROBES += [TermQuery("narration", term) for term in VOCAB[:3]]
_both = BooleanQuery()
_both.add(TermQuery("event", "goal"), Occur.SHOULD)
_both.add(TermQuery("narration", "foul"), Occur.SHOULD)
PROBES.append(_both)


def populate(path, name="stress"):
    directory = IndexDirectory(path, name=name)
    for seed in (1, 2, 3):
        directory.add_index(sample_index(seed=seed, docs=25))
    return directory


def writer_script():
    """The op sequence both the oracle dry-run and the live stress
    replay: deltas, a tiered merge, more deltas, a forced collapse,
    then a vacuum racing the readers' open mmaps."""
    script = []
    for seed in (10, 11, 12):
        script.append(("delta", lambda d, s=seed:
                       d.add_index(sample_index(seed=s, docs=20))))
    script.append(("merge", lambda d: d.merge()))
    for seed in (13, 14):
        script.append(("delta", lambda d, s=seed:
                       d.add_index(sample_index(seed=s, docs=15))))
    script.append(("force-merge", lambda d: d.merge(force=True)))
    script.append(("vacuum", lambda d: d.vacuum()))
    return script


def snapshot_results(index):
    searcher = IndexSearcher(index)
    out = {}
    for position, query in enumerate(PROBES):
        top = searcher.search(query, limit=5)
        assert top.generation == index.generation
        out[position] = [(hit.doc_id, hit.score) for hit in top]
    return out


@pytest.fixture()
def oracle(tmp_path):
    """generation → probe position → exact (doc id, score) list,
    recorded single-threaded over the scripted op sequence."""
    directory = populate(tmp_path / "oracle")
    expected = {}
    with SegmentedIndex(directory) as index:
        expected[index.generation] = snapshot_results(index)
        for _label, op in writer_script():
            op(directory)
            index.refresh()
            expected[index.generation] = snapshot_results(index)
    return expected


class TestSegmentChurnStress:
    def test_queries_race_commits_merges_and_vacuum(self, tmp_path,
                                                    oracle):
        directory = populate(tmp_path / "live")
        index = SegmentedIndex(directory)
        searcher = IndexSearcher(index, cache_size=64)
        stop = threading.Event()
        failures = []
        generations_seen = set()

        def reader(thread_id):
            rng = random.Random(thread_id)
            while not stop.is_set():
                position = rng.randrange(len(PROBES))
                try:
                    top = searcher.search(PROBES[position], limit=5)
                    got = [(hit.doc_id, hit.score) for hit in top]
                    if top.generation not in oracle:
                        failures.append(
                            f"unknown generation {top.generation}")
                        return
                    generations_seen.add(top.generation)
                    want = oracle[top.generation][position]
                    if got != want:
                        failures.append(
                            f"probe {position} at generation "
                            f"{top.generation}: {got} != {want}")
                        return
                except Exception as exc:   # noqa: BLE001 — the test
                    failures.append(f"{type(exc).__name__}: {exc}")
                    return

        readers = [threading.Thread(target=reader, args=(i,))
                   for i in range(READER_THREADS)]
        for thread in readers:
            thread.start()
        time.sleep(0.02)           # let readers hit the seed state
        for _label, op in writer_script():
            op(directory)
            index.refresh()
            time.sleep(0.01)       # give queries time on each state
        time.sleep(0.02)
        stop.set()
        for thread in readers:
            thread.join()
        index.close()

        assert not failures, failures[:3]
        assert len(generations_seen) >= 2, \
            "stress never observed a generation change"

    def test_refresh_is_idempotent_and_reports_change(self, tmp_path):
        directory = populate(tmp_path / "idem")
        with SegmentedIndex(directory) as index:
            before = index.generation
            assert index.refresh() is False
            directory.add_index(sample_index(seed=42, docs=5))
            assert index.refresh() is True
            assert index.generation == before + 1
            assert index.refresh() is False


class TestPinnedSnapshots:
    def test_pinned_reader_survives_refresh_and_vacuum(self, tmp_path):
        """Regression for the yanked-mmap race: the old segment set
        must stay open while pinned, even across a forced merge and a
        vacuum that deletes its files, and close only on unpin."""
        directory = populate(tmp_path / "pin")
        with SegmentedIndex(directory) as index:
            old_generation = index.generation
            with index.pinned() as snapshot:
                directory.add_index(sample_index(seed=9, docs=10))
                directory.merge(force=True)
                directory.vacuum()
                assert index.refresh() is True
                # the handle has moved on…
                assert index.generation > old_generation
                # …but the pinned snapshot still serves the old
                # generation from its (now-deleted) segment files
                assert snapshot.generation == old_generation
                postings = snapshot.postings("event", "goal")
                assert postings.doc_frequency > 0
                assert snapshot._retired
                assert not snapshot.closed
            # last pin released → readers actually close
            assert snapshot.closed

    def test_unpinned_refresh_closes_the_old_set_immediately(
            self, tmp_path):
        directory = populate(tmp_path / "eager")
        with SegmentedIndex(directory) as index:
            old = index._state
            directory.add_index(sample_index(seed=5, docs=5))
            index.refresh()
            assert old.closed

    def test_topdocs_carry_their_generation(self, tmp_path):
        directory = populate(tmp_path / "gen")
        with SegmentedIndex(directory) as index:
            searcher = IndexSearcher(index)
            first = searcher.search(PROBES[0], limit=5)
            assert first.generation == index.generation
            directory.add_index(sample_index(seed=8, docs=5))
            index.refresh()
            second = searcher.search(PROBES[0], limit=5)
            assert second.generation == first.generation + 1
            # the old entry is still cached — under its own key only
            assert not second.cached


class TestCacheContention:
    def test_warm_cache_accounting_is_exact_under_threads(self,
                                                          tmp_path):
        directory = populate(tmp_path / "warm")
        with SegmentedIndex(directory) as index:
            searcher = IndexSearcher(index, cache_size=256)
            for query in PROBES:
                searcher.search(query, limit=5)
            warm = searcher.cache.cache_info()
            assert warm.misses == len(PROBES)

            iterations = 50
            barrier = threading.Barrier(READER_THREADS)

            def hammer(thread_id):
                rng = random.Random(thread_id)
                barrier.wait()
                for _ in range(iterations):
                    searcher.search(rng.choice(PROBES), limit=5)

            threads = [threading.Thread(target=hammer, args=(i,))
                       for i in range(READER_THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            info = searcher.cache.cache_info()
            # every post-warmup lookup must be a hit, and none may be
            # double- or under-counted by racing threads
            assert info.misses == warm.misses
            assert info.hits - warm.hits \
                == READER_THREADS * iterations

    def test_cold_cache_loses_no_lookups(self, tmp_path):
        directory = populate(tmp_path / "cold")
        with SegmentedIndex(directory) as index:
            searcher = IndexSearcher(index, cache_size=256)
            iterations = 30
            barrier = threading.Barrier(READER_THREADS)

            def hammer(thread_id):
                rng = random.Random(100 + thread_id)
                barrier.wait()
                for _ in range(iterations):
                    searcher.search(rng.choice(PROBES), limit=5)

            threads = [threading.Thread(target=hammer, args=(i,))
                       for i in range(READER_THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            info = searcher.cache.cache_info()
            total = READER_THREADS * iterations
            # threads may duplicate a miss (both compute, both fill —
            # allowed), but hits + misses must equal lookups exactly
            assert info.hits + info.misses == total
            assert info.misses > 0
            assert len(searcher.cache) <= len(PROBES)
