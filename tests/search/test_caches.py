"""Analysis-path caches: memoized stemmer, token-stream cache, and
the incrementally-maintained field-name set."""

from repro.search.analysis import StandardAnalyzer
from repro.search.analysis.stemmer import PorterStemmer, stem
from repro.search.document import Document, Field
from repro.search.index import (IndexWriter, InvertedIndex,
                                PerFieldAnalyzer)


class TestStemmerCache:
    def test_cached_matches_uncached(self):
        stemmer = PorterStemmer()
        for word in ("scores", "running", "happiness", "relational",
                     "goal", "penalties", "ty"):
            assert stemmer.stem(word) == stemmer.stem_uncached(word)

    def test_repeat_stems_hit_cache(self):
        PorterStemmer.cache_clear()
        stemmer = PorterStemmer()
        stemmer.stem("galatasaray")
        before = PorterStemmer.cache_info()
        stemmer.stem("galatasaray")
        after = PorterStemmer.cache_info()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_cache_shared_across_instances_and_module_function(self):
        PorterStemmer.cache_clear()
        stem("fenerbahce")
        before = PorterStemmer.cache_info()
        PorterStemmer().stem("fenerbahce")
        assert PorterStemmer.cache_info().hits == before.hits + 1

    def test_cache_clear(self):
        stem("besiktas")
        PorterStemmer.cache_clear()
        assert PorterStemmer.cache_info().currsize == 0

    def test_subclass_bypasses_shared_cache(self):
        class ShoutingStemmer(PorterStemmer):
            def stem_uncached(self, word):
                return word.upper()

        assert ShoutingStemmer().stem("goal") == "GOAL"
        # the shared cache must not have been poisoned
        assert PorterStemmer().stem("goal") == "goal"


class TestTokenStreamCache:
    def test_repeat_analysis_hits_cache(self):
        analyzer = PerFieldAnalyzer(default=StandardAnalyzer())
        first = analyzer.analyze("narration", "Alex scores a goal")
        second = analyzer.analyze("narration", "Alex scores a goal")
        assert second is first
        info = analyzer.cache_info()
        assert info.hits == 1
        assert info.misses == 1
        assert info.currsize == 1

    def test_cache_keyed_by_field(self):
        analyzer = PerFieldAnalyzer(default=StandardAnalyzer())
        analyzer.analyze("narration", "goal")
        analyzer.analyze("event", "goal")
        assert analyzer.cache_info().misses == 2

    def test_eviction_respects_capacity(self):
        analyzer = PerFieldAnalyzer(default=StandardAnalyzer(),
                                    cache_size=2)
        analyzer.analyze("f", "one")
        analyzer.analyze("f", "two")
        analyzer.analyze("f", "three")      # evicts "one"
        assert analyzer.cache_info().currsize == 2
        analyzer.analyze("f", "one")
        assert analyzer.cache_info().hits == 0

    def test_zero_capacity_disables_caching(self):
        analyzer = PerFieldAnalyzer(default=StandardAnalyzer(),
                                    cache_size=0)
        analyzer.analyze("f", "goal")
        analyzer.analyze("f", "goal")
        assert analyzer.cache_info().currsize == 0

    def test_cache_clear(self):
        analyzer = PerFieldAnalyzer(default=StandardAnalyzer())
        analyzer.analyze("f", "goal")
        analyzer.cache_clear()
        info = analyzer.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)

    def test_writer_goes_through_cache(self):
        index = InvertedIndex()
        writer = IndexWriter(index)
        for _ in range(3):
            document = Document()
            document.add(Field("event", "goal"))
            writer.add_document(document)
        info = writer.analyzer.cache_info()
        assert info.misses == 1
        assert info.hits == 2


class TestFieldNamesIncremental:
    def test_indexed_and_stored_fields_tracked(self):
        index = InvertedIndex()
        doc = index.new_doc_id()
        index.index_terms(doc, "narration", [("goal", 0)])
        index.store_value(doc, "docKey", "k1")
        assert index.field_names() == ["docKey", "narration"]

    def test_merge_unions_field_names(self):
        left = InvertedIndex()
        doc = left.new_doc_id()
        left.index_terms(doc, "a", [("x", 0)])
        right = InvertedIndex()
        doc = right.new_doc_id()
        right.store_value(doc, "b", "y")
        left.merge(right)
        assert left.field_names() == ["a", "b"]

    def test_merge_with_empty_partial_keeps_field_names(self):
        """Regression: merging an empty partial (a match that
        contributed no documents, e.g. after quarantine) must leave
        the field registry untouched — in either direction."""
        full = InvertedIndex()
        doc = full.new_doc_id()
        full.index_terms(doc, "narration", [("goal", 0)])
        full.store_value(doc, "docKey", "k1")
        before = full.field_names()
        full.merge(InvertedIndex())
        assert full.field_names() == before
        assert full.doc_count == 1

        accumulator = InvertedIndex()
        accumulator.merge(full)
        assert accumulator.field_names() == before

    def test_from_json_rebuilds_field_names(self):
        index = InvertedIndex()
        doc = index.new_doc_id()
        index.index_terms(doc, "narration", [("goal", 0)])
        index.store_value(doc, "docKey", "k1")
        restored = InvertedIndex.from_json(index.to_json())
        assert restored.field_names() == index.field_names()
