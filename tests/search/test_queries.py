"""Tests for query types, the query parser and the searcher."""

import pytest

from repro.errors import QueryError
from repro.search import (BM25Similarity, BooleanQuery, ClassicSimilarity,
                          DisMaxQuery, Document, Field, IndexSearcher,
                          IndexWriter, InvertedIndex, MatchAllQuery, Occur,
                          PhraseQuery, PrefixQuery, QueryParser,
                          SimpleAnalyzer, StandardAnalyzer, TermQuery)


@pytest.fixture
def searcher():
    idx = InvertedIndex()
    writer = IndexWriter(idx, SimpleAnalyzer())
    corpus = [
        "messi scores a great goal",            # 0
        "cech saves the shot from messi",       # 1
        "ballack fouls busquets badly",         # 2
        "free kick taken quickly",              # 3
        "yellow card for ballack",              # 4
        "the goal was ruled out for offside",   # 5
    ]
    for text in corpus:
        writer.add_document(Document([Field("body", text)]))
    return IndexSearcher(idx)


class TestTermQuery:
    def test_matches(self, searcher):
        top = searcher.search(TermQuery("body", "messi"))
        assert set(top.doc_ids()) == {0, 1}

    def test_missing_term(self, searcher):
        assert len(searcher.search(TermQuery("body", "zidane"))) == 0

    def test_rarer_terms_score_higher(self, searcher):
        goal = searcher.search(TermQuery("body", "goal")).scored[0].score
        foul = searcher.search(TermQuery("body", "fouls")).scored[0].score
        # "fouls" appears once, "goal" twice → higher idf for fouls;
        # same field lengths modulo normalization
        assert foul > 0 and goal > 0

    def test_boost_scales_score(self, searcher):
        plain = searcher.search(TermQuery("body", "messi")).scored[0].score
        boosted = searcher.search(
            TermQuery("body", "messi", boost=3.0)).scored[0].score
        assert boosted == pytest.approx(plain * 3.0)


class TestPhraseQuery:
    def test_exact_phrase(self, searcher):
        top = searcher.search(PhraseQuery("body", ["free", "kick"]))
        assert top.doc_ids() == [3]

    def test_order_matters(self, searcher):
        top = searcher.search(PhraseQuery("body", ["kick", "free"]))
        assert len(top) == 0

    def test_gap_blocks_exact_match(self, searcher):
        top = searcher.search(PhraseQuery("body", ["messi", "goal"]))
        assert len(top) == 0

    def test_slop_allows_gap(self, searcher):
        # "messi scores a great goal": messi..goal gap of 3
        top = searcher.search(PhraseQuery("body", ["messi", "goal"],
                                          slop=3))
        assert top.doc_ids() == [0]

    def test_single_term_phrase_degenerates(self, searcher):
        top = searcher.search(PhraseQuery("body", ["messi"]))
        assert set(top.doc_ids()) == {0, 1}

    def test_empty_phrase_rejected(self):
        with pytest.raises(QueryError):
            PhraseQuery("body", [])


class TestPrefixQuery:
    def test_prefix_matches_all_expansions(self, searcher):
        top = searcher.search(PrefixQuery("body", "ba"))
        assert set(top.doc_ids()) == {2, 4}   # ballack, badly

    def test_no_match(self, searcher):
        assert len(searcher.search(PrefixQuery("body", "zz"))) == 0


class TestBooleanQuery:
    def test_must_intersects(self, searcher):
        query = (BooleanQuery()
                 .add(TermQuery("body", "messi"), Occur.MUST)
                 .add(TermQuery("body", "goal"), Occur.MUST))
        assert searcher.search(query).doc_ids() == [0]

    def test_should_unions(self, searcher):
        query = (BooleanQuery()
                 .add(TermQuery("body", "messi"))
                 .add(TermQuery("body", "ballack")))
        assert set(searcher.search(query).doc_ids()) == {0, 1, 2, 4}

    def test_must_not_excludes(self, searcher):
        query = (BooleanQuery()
                 .add(TermQuery("body", "messi"), Occur.MUST)
                 .add(TermQuery("body", "goal"), Occur.MUST_NOT))
        assert searcher.search(query).doc_ids() == [1]

    def test_coord_rewards_more_matches(self, searcher):
        query = (BooleanQuery()
                 .add(TermQuery("body", "messi"))
                 .add(TermQuery("body", "goal")))
        top = searcher.search(query)
        assert top.doc_ids()[0] == 0    # matches both clauses

    def test_only_must_not_matches_nothing(self, searcher):
        query = BooleanQuery().add(TermQuery("body", "messi"),
                                   Occur.MUST_NOT)
        assert len(searcher.search(query)) == 0


class TestDisMaxQuery:
    def test_takes_best_field(self):
        idx = InvertedIndex()
        writer = IndexWriter(idx, SimpleAnalyzer())
        writer.add_document(Document([Field("event", "goal", boost=6.0),
                                      Field("body", "a goal here")]))
        searcher = IndexSearcher(idx)
        dismax = DisMaxQuery([TermQuery("event", "goal"),
                              TermQuery("body", "goal")])
        best = max(
            searcher.search(TermQuery("event", "goal")).scored[0].score,
            searcher.search(TermQuery("body", "goal")).scored[0].score)
        assert searcher.search(dismax).scored[0].score \
            == pytest.approx(best)

    def test_tie_breaker_adds_fraction(self):
        idx = InvertedIndex()
        writer = IndexWriter(idx, SimpleAnalyzer())
        writer.add_document(Document([Field("a", "x"), Field("b", "x")]))
        searcher = IndexSearcher(idx)
        score_a = searcher.search(TermQuery("a", "x")).scored[0].score
        score_b = searcher.search(TermQuery("b", "x")).scored[0].score
        combined = DisMaxQuery([TermQuery("a", "x"), TermQuery("b", "x")],
                               tie_breaker=0.5)
        expected = max(score_a, score_b) + 0.5 * min(score_a, score_b)
        assert searcher.search(combined).scored[0].score \
            == pytest.approx(expected)


class TestMatchAll:
    def test_matches_everything(self, searcher):
        assert len(searcher.search(MatchAllQuery())) == 6


class TestSearcher:
    def test_limit(self, searcher):
        top = searcher.search(MatchAllQuery(), limit=2)
        assert len(top) == 2
        assert top.total_hits == 6

    def test_deterministic_tie_break_by_doc_id(self, searcher):
        top = searcher.search(MatchAllQuery())
        assert top.doc_ids() == sorted(top.doc_ids())

    def test_document_retrieval(self, searcher):
        doc = searcher.document(3)
        assert "free kick" in doc.get("body")

    def test_explain(self, searcher):
        query = TermQuery("body", "messi")
        assert searcher.explain(query, 0) > 0
        assert searcher.explain(query, 3) == 0.0


class TestQueryParser:
    @pytest.fixture
    def parser(self):
        return QueryParser("body", SimpleAnalyzer())

    def test_single_term(self, parser):
        query = parser.parse("messi")
        assert isinstance(query, TermQuery)
        assert query.term == "messi"

    def test_multiple_terms_become_boolean(self, parser):
        query = parser.parse("messi goal")
        assert isinstance(query, BooleanQuery)
        assert len(query.clauses) == 2

    def test_fielded_term(self, parser):
        query = parser.parse("event:goal")
        assert isinstance(query, TermQuery)
        assert query.field_name == "event"

    def test_phrase(self, parser):
        query = parser.parse('"free kick"')
        assert isinstance(query, PhraseQuery)
        assert list(query.terms) == ["free", "kick"]

    def test_required_and_prohibited(self, parser):
        query = parser.parse("+messi -goal")
        occurs = [c.occur for c in query.clauses]
        assert occurs == [Occur.MUST, Occur.MUST_NOT]

    def test_boost_suffix(self, parser):
        query = parser.parse("goal^2.5 messi")
        boosted = query.clauses[0].query
        assert boosted.boost == 2.5

    def test_prefix_star(self, parser):
        query = parser.parse("mes*")
        assert isinstance(query, PrefixQuery)
        assert query.prefix == "mes"

    def test_match_all(self, parser):
        assert isinstance(parser.parse("*:*"), MatchAllQuery)

    def test_empty_rejected(self, parser):
        with pytest.raises(QueryError):
            parser.parse("   ")

    def test_all_stopwords_rejected(self):
        parser = QueryParser("body", StandardAnalyzer())
        with pytest.raises(QueryError):
            parser.parse("the of and")


class TestSimilarities:
    def test_classic_idf_decreases_with_df(self):
        sim = ClassicSimilarity()
        assert sim.idf(1, 100) > sim.idf(50, 100)

    def test_classic_length_normalization(self):
        sim = ClassicSimilarity()
        short = sim.score(1, 1, 10, field_length=4,
                          average_field_length=8)
        long_ = sim.score(1, 1, 10, field_length=64,
                          average_field_length=8)
        assert short > long_

    def test_classic_zero_tf(self):
        assert ClassicSimilarity().score(0, 1, 10, 5, 5.0) == 0.0

    def test_bm25_saturates_with_tf(self):
        sim = BM25Similarity()
        s1 = sim.score(1, 1, 100, 10, 10.0)
        s2 = sim.score(2, 1, 100, 10, 10.0)
        s10 = sim.score(10, 1, 100, 10, 10.0)
        assert s1 < s2 < s10
        assert (s2 - s1) > (s10 - sim.score(9, 1, 100, 10, 10.0))

    def test_bm25_parameter_validation(self):
        with pytest.raises(ValueError):
            BM25Similarity(k1=-1)
        with pytest.raises(ValueError):
            BM25Similarity(b=1.5)

    def test_bm25_no_coord(self):
        assert BM25Similarity().coord(1, 5) == 1.0
        assert ClassicSimilarity().coord(1, 5) == pytest.approx(0.2)
