"""Binary index format: round-trip fidelity, laziness, auto-detection."""

from __future__ import annotations

import random
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.search.index import (INDEX_FORMATS, InvertedIndex, index_path,
                                list_indexes, load_index, save_index)
from repro.search.index import codec
from repro.search.query.queries import TermQuery
from repro.search.searcher import IndexSearcher
from repro.search.similarity import ClassicSimilarity


def sample_index(seed: int = 7, docs: int = 30) -> InvertedIndex:
    rng = random.Random(seed)
    vocab = ["goal", "foul", "messi", "pass", "Zürich", "corner"]
    index = InvertedIndex("demo")
    for _ in range(docs):
        doc_id = index.new_doc_id()
        index.index_terms(
            doc_id, "event",
            [(rng.choice(vocab), p) for p in range(rng.randint(1, 5))],
            boost=rng.choice([1.0, 2.0]))
        if rng.random() < 0.8:
            index.index_terms(
                doc_id, "narration",
                [(rng.choice(vocab), p)
                 for p in range(rng.randint(1, 8))])
        index.store_value(doc_id, "doc_key", f"doc-{doc_id}")
    return index


class TestRoundTrip:
    def test_binary_equals_json_semantics(self, tmp_path):
        index = sample_index()
        save_index(index, tmp_path, format="binary")
        loaded = load_index(tmp_path, "demo")
        assert loaded.to_json() == index.to_json()

    def test_search_results_identical_across_formats(self, tmp_path):
        index = sample_index()
        save_index(index, tmp_path / "j", format="json")
        save_index(index, tmp_path / "b", format="binary")
        from_json = load_index(tmp_path / "j", "demo")
        from_binary = load_index(tmp_path / "b", "demo")
        query = TermQuery("event", "goal")
        for source in (from_json, from_binary):
            searcher = IndexSearcher(source, ClassicSimilarity())
            top = searcher.search(query, 10)
            oracle = IndexSearcher(index, ClassicSimilarity()
                                   ).search_exhaustive(query, 10)
            assert [(h.doc_id, h.score) for h in top] \
                == [(h.doc_id, h.score) for h in oracle]

    def test_postings_statistics_survive(self, tmp_path):
        index = sample_index()
        save_index(index, tmp_path, format="binary")
        loaded = load_index(tmp_path, "demo")
        original = index.postings("event", "goal")
        round_tripped = loaded.postings("event", "goal")
        assert round_tripped.max_frequency == original.max_frequency
        assert round_tripped.total_frequency == original.total_frequency
        assert loaded.max_field_boost("event") \
            == index.max_field_boost("event")

    def test_binary_is_smaller(self, tmp_path):
        index = sample_index(docs=200)
        json_file = save_index(index, tmp_path / "j", format="json")
        binary_file = save_index(index, tmp_path / "b", format="binary")
        assert binary_file.stat().st_size < json_file.stat().st_size


class TestLazyLoading:
    def test_only_touched_fields_decode(self, tmp_path):
        index = sample_index()
        save_index(index, tmp_path, format="binary")
        loaded = load_index(tmp_path, "demo")
        assert set(loaded._pending_fields) == {"event", "narration"}
        loaded.postings("event", "goal")
        assert "event" not in loaded._pending_fields
        assert "narration" in loaded._pending_fields

    def test_lazy_index_accepts_new_documents(self, tmp_path):
        index = sample_index()
        save_index(index, tmp_path, format="binary")
        loaded = load_index(tmp_path, "demo")
        doc_id = loaded.new_doc_id()
        loaded.index_terms(doc_id, "event", [("goal", 0)])
        assert loaded.doc_frequency("event", "goal") \
            == index.doc_frequency("event", "goal") + 1

    def test_merge_materializes_pending_fields(self, tmp_path):
        index = sample_index()
        save_index(index, tmp_path, format="binary")
        loaded = load_index(tmp_path, "demo")
        target = InvertedIndex("target")
        target.merge(loaded)
        assert target.to_json()["terms"] == index.to_json()["terms"]


class TestFormatHandling:
    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(IndexError_, match="unknown index format"):
            save_index(sample_index(), tmp_path, format="msgpack")
        assert set(INDEX_FORMATS) == {"json", "binary"}

    def test_binary_preferred_when_both_exist(self, tmp_path):
        index = sample_index()
        save_index(index, tmp_path, format="json")
        save_index(index, tmp_path, format="binary")
        assert list_indexes(tmp_path) == ["demo"]
        assert load_index(tmp_path, "demo").to_json() == index.to_json()

    def test_missing_index_raises(self, tmp_path):
        with pytest.raises(IndexError_, match="no index"):
            load_index(tmp_path, "absent")

    def test_bad_magic_rejected(self, tmp_path):
        path = index_path(tmp_path, "demo", "binary")
        path.write_bytes(b"JSON{}..")
        with pytest.raises(IndexError_, match="bad magic"):
            codec.read_index(path)

    def test_future_version_rejected(self, tmp_path):
        save_index(sample_index(), tmp_path, format="binary")
        path = index_path(tmp_path, "demo", "binary")
        data = bytearray(path.read_bytes())
        data[4] = codec.VERSION + 1
        path.write_bytes(bytes(data))
        with pytest.raises(IndexError_, match="unsupported binary index "
                                              "version"):
            codec.read_index(path)

    def test_header_length_matches_struct(self, tmp_path):
        # pin the on-disk prelude: magic, version byte, u32 LE length
        save_index(sample_index(), tmp_path, format="binary")
        raw = index_path(tmp_path, "demo", "binary").read_bytes()
        assert raw[:4] == b"RIDX"
        assert raw[4] == codec.VERSION
        (header_length,) = struct.unpack_from("<I", raw, 5)
        assert raw[9:9 + header_length].lstrip().startswith(b"{")


class TestVarintPrimitives:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2 ** 21,
                                       2 ** 40])
    def test_uvarint_round_trip(self, value):
        import io
        out = io.BytesIO()
        codec._write_uvarint(out, value)
        decoded, end = codec._read_uvarint(out.getvalue(), 0)
        assert decoded == value
        assert end == len(out.getvalue())

    @pytest.mark.parametrize("value", [0, 1, -1, 63, -64, 1000, -1000])
    def test_zigzag_round_trip(self, value):
        assert codec._unzigzag(codec._zigzag(value)) == value

    @pytest.mark.parametrize("value", [2 ** 63, -(2 ** 63),
                                       2 ** 63 - 1, -(2 ** 63) + 1,
                                       2 ** 64, 2 ** 100, -(2 ** 100)])
    def test_zigzag_has_no_width_assumption(self, value):
        # Python ints are arbitrary-precision; the encoding must not
        # bake in a 64-bit word (the C-style ``x >> 63`` sign trick
        # silently corrupts every non-negative value >= 2**63)
        encoded = codec._zigzag(value)
        assert encoded >= 0
        assert codec._unzigzag(encoded) == value

    @given(st.integers())
    def test_zigzag_round_trips_any_int(self, value):
        encoded = codec._zigzag(value)
        assert encoded >= 0            # varint-encodable
        assert codec._unzigzag(encoded) == value

    @given(st.integers())
    def test_zigzag_orders_by_magnitude(self, value):
        # the point of zigzag: small magnitudes get small codes
        assert codec._zigzag(value) in (2 * abs(value),
                                        2 * abs(value) - 1)


class TestBulkVarintDecode:
    """decode_uvarints must agree with the scalar decoder on any
    varint stream and reject byte ranges cut mid-varint."""

    def encode(self, values):
        import io
        out = io.BytesIO()
        for value in values:
            codec._write_uvarint(out, value)
        return out.getvalue()

    def test_matches_scalar_decoder_on_random_streams(self):
        rng = random.Random(99)
        for _ in range(25):
            values = [rng.randint(0, 2 ** rng.randint(1, 45))
                      for _ in range(rng.randint(0, 200))]
            data = self.encode(values)
            assert codec.decode_uvarints(data, 0, len(data)) == values
            scalar = []
            pos = 0
            while pos < len(data):
                value, pos = codec._read_uvarint(data, pos)
                scalar.append(value)
            assert scalar == values

    def test_subrange_with_offsets(self):
        prefix = self.encode([7, 300])
        body = self.encode([0, 127, 128, 2 ** 30])
        data = prefix + body + self.encode([5])
        assert codec.decode_uvarints(
            data, len(prefix), len(prefix) + len(body)) \
            == [0, 127, 128, 2 ** 30]

    def test_empty_range(self):
        assert codec.decode_uvarints(b"anything", 3, 3) == []

    def test_truncated_stream_raises(self):
        data = self.encode([2 ** 30])
        assert len(data) > 1
        with pytest.raises(ValueError, match="inside a varint"):
            codec.decode_uvarints(data, 0, len(data) - 1)

    @pytest.mark.parametrize("pos,end", [(0, 9), (5, 9), (-1, 4),
                                         (3, 2)])
    def test_overrunning_range_raises_value_error(self, pos, end):
        # a [pos, end) range that does not fit the buffer is the
        # *caller's* bug and must surface as the documented
        # ValueError, not as a bare IndexError from running off the
        # end of ``data`` mid-decode
        data = self.encode([1, 2, 3, 4])
        assert len(data) == 4
        with pytest.raises(ValueError, match="does not fit"):
            codec.decode_uvarints(data, pos, end)

    def test_overrun_with_continuation_bytes_still_value_error(self):
        # every in-range byte has the continuation bit set, so the old
        # code walked past ``end`` and raised IndexError at len(data)
        data = bytes([0x80, 0x80, 0x80])
        with pytest.raises(ValueError):
            codec.decode_uvarints(data, 0, len(data) + 2)

    def test_works_on_memoryview_and_mmap_like_buffers(self):
        values = [1, 128, 2 ** 21]
        data = self.encode(values)
        assert codec.decode_uvarints(memoryview(data), 0,
                                     len(data)) == values
