"""Pruned top-k scoring: bit-identical parity with the exhaustive path.

The MaxScore driver (repro.search.topk) may only ever *skip work*,
never change results: same documents, same order, same floats as
``IndexSearcher.search_exhaustive``.  These tests fuzz that invariant
across random indexes, query shapes, similarities and k values —
including equal-score tie groups, the classic early-termination
footgun — and pin the single-doc ``explain`` path to ``search``.
"""

from __future__ import annotations

import random

import pytest

from repro.search.index.inverted import InvertedIndex
from repro.search.query.queries import (BooleanQuery, DisMaxQuery, Occur,
                                        PhraseQuery, TermQuery)
from repro.search.searcher import IndexSearcher, rank_docs
from repro.search.similarity import BM25Similarity, ClassicSimilarity
from repro.search.topk import run_top_k

VOCAB = ["goal", "messi", "pass", "foul", "corner", "shot", "save"]
FIELDS = ["event", "narration", "player"]


def build_random_index(rng: random.Random, docs: int) -> InvertedIndex:
    index = InvertedIndex("fuzz")
    for _ in range(docs):
        doc_id = index.new_doc_id()
        for field_name in FIELDS:
            terms = [(rng.choice(VOCAB), position)
                     for position in range(rng.randint(0, 6))]
            if terms:
                index.index_terms(doc_id, field_name, terms,
                                  boost=rng.choice([1.0, 1.0, 2.0]))
        index.store_value(doc_id, "doc_key", f"doc-{doc_id}")
    return index


def random_query(rng: random.Random, depth: int = 0):
    kind = rng.choice(["term", "dismax", "bool"]) if depth < 2 else "term"
    if kind == "term":
        return TermQuery(rng.choice(FIELDS), rng.choice(VOCAB),
                         boost=rng.choice([1.0, 1.0, 3.0]))
    if kind == "dismax":
        return DisMaxQuery(
            [random_query(rng, depth + 1)
             for _ in range(rng.randint(1, 4))],
            tie_breaker=rng.choice([0.0, 0.1, 0.5, 1.0]),
            boost=rng.choice([1.0, 2.0]))
    query = BooleanQuery(boost=rng.choice([1.0, 1.5]))
    for _ in range(rng.randint(1, 4)):
        query.add(random_query(rng, depth + 1),
                  rng.choice([Occur.SHOULD, Occur.SHOULD, Occur.MUST,
                              Occur.MUST_NOT]))
    return query


def assert_parity(searcher: IndexSearcher, query, limit: int) -> None:
    pruned = searcher.search(query, limit)
    oracle = searcher.search_exhaustive(query, limit)
    assert [(h.doc_id, h.score) for h in pruned] \
        == [(h.doc_id, h.score) for h in oracle]
    assert pruned.total_hits == oracle.total_hits


class TestPrunedParity:
    """Exhaustive fuzz: pruned top-k == oracle, bit for bit."""

    @pytest.mark.parametrize("similarity",
                             [ClassicSimilarity(), BM25Similarity()],
                             ids=["classic", "bm25"])
    def test_random_queries_match_oracle(self, similarity):
        rng = random.Random(1234)
        for _ in range(60):
            index = build_random_index(rng, rng.randint(1, 25))
            searcher = IndexSearcher(index, similarity, cache_size=0)
            query = random_query(rng)
            for k in (1, 5, index.doc_count, index.doc_count + 3):
                assert_parity(searcher, query, k)

    def test_equal_score_tie_groups_never_pruned_apart(self):
        # identical documents -> every match scores identically; the
        # k cut must fall on ascending doc id exactly like the oracle
        index = InvertedIndex("ties")
        for _ in range(12):
            doc_id = index.new_doc_id()
            index.index_terms(doc_id, "event",
                              [("goal", 0), ("corner", 1)])
        searcher = IndexSearcher(index, ClassicSimilarity(), cache_size=0)
        query = DisMaxQuery([TermQuery("event", "goal"),
                             TermQuery("event", "corner")],
                            tie_breaker=0.3)
        for k in (1, 5, 12):
            top = searcher.search(query, k)
            assert top.doc_ids() == list(range(k))
            assert_parity(searcher, query, k)

    def test_unlimited_search_stays_exhaustive(self):
        rng = random.Random(7)
        index = build_random_index(rng, 10)
        searcher = IndexSearcher(index, ClassicSimilarity(), cache_size=0)
        top = searcher.search(random_query(rng), limit=None)
        assert not top.pruned

    def test_unsupported_query_types_fall_back(self):
        index = InvertedIndex("phrases")
        doc_id = index.new_doc_id()
        index.index_terms(doc_id, "narration",
                          [("great", 0), ("goal", 1)])
        query = PhraseQuery("narration", ["great", "goal"])
        assert run_top_k(index, ClassicSimilarity(), query, 5) is None
        searcher = IndexSearcher(index, ClassicSimilarity(), cache_size=0)
        top = searcher.search(query, limit=5)
        assert top.doc_ids() == [doc_id]
        assert not top.pruned


class TestPruningActuallyPrunes:
    def test_skips_postings_of_weak_clauses(self):
        # one rare high-impact term, one ubiquitous weak term: with
        # k=1 the weak clause's tail must not be fully scored
        index = InvertedIndex("skew")
        for i in range(400):
            doc_id = index.new_doc_id()
            terms = [("common", p) for p in range(1)]
            if i == 13:
                terms += [("rare", 5)] * 6
            index.index_terms(doc_id, "event",
                              [(t, p) for p, (t, _) in enumerate(terms)])
        searcher = IndexSearcher(index, ClassicSimilarity(), cache_size=0)
        query = DisMaxQuery([TermQuery("event", "rare", boost=5.0),
                             TermQuery("event", "common")])
        result = run_top_k(index, searcher.similarity, query, 1)
        assert result is not None and result.pruned
        assert result.candidates_scored < index.doc_count
        assert result.postings_scanned < 2 * index.doc_count
        assert_parity(searcher, query, 1)


class TestExplain:
    def test_explain_matches_search_scores(self):
        rng = random.Random(99)
        index = build_random_index(rng, 20)
        searcher = IndexSearcher(index, ClassicSimilarity(), cache_size=0)
        for _ in range(20):
            query = random_query(rng)
            top = searcher.search(query, limit=index.doc_count)
            for hit in top:
                assert searcher.explain(query, hit.doc_id) == hit.score
            missing = set(range(index.doc_count)) - set(top.doc_ids())
            for doc_id in sorted(missing)[:3]:
                assert searcher.explain(query, doc_id) == 0.0

    def test_explain_does_not_score_other_documents(self):
        index = InvertedIndex("explain")
        for _ in range(50):
            doc_id = index.new_doc_id()
            index.index_terms(doc_id, "event", [("goal", 0)])
        searcher = IndexSearcher(index, ClassicSimilarity(), cache_size=0)
        query = TermQuery("event", "goal")
        scorer = query.scorer(index, searcher.similarity)
        scorer.score_one(7)
        # one explained document -> one posting read, not fifty
        assert scorer.postings_scanned() == 1


class TestBoundedRankDocs:
    def test_heap_select_equals_full_sort(self):
        rng = random.Random(5)
        scores = {doc: rng.choice([0.5, 1.0, 2.0])
                  for doc in range(200)}
        full = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        for limit in (0, 1, 7, 199, 200, 500):
            assert rank_docs(scores, limit) == full[:limit]
        assert rank_docs(scores) == full

    def test_empty_and_zero_limit(self):
        assert rank_docs({}, 5) == []
        assert rank_docs({5: 1.0}, 0) == []
