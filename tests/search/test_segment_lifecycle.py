"""Segment lifecycle: atomic manifest commits, tiered merges, vacuum.

The crash-safety contract under test: the manifest is the only
mutable state, and committing one is a single atomic rename — so a
crash at *any* point between sealing segment files and committing the
manifest that references them leaves the directory serving exactly
the previously committed state.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.search.index import (InvertedIndex, IndexDirectory,
                                SegmentedIndex, write_segment)
from repro.search.index.segments import SEGMENTS_PREFIX
from repro.search.query.queries import TermQuery
from repro.search.searcher import IndexSearcher


def tiny_index(seed: int, docs: int = 3,
               name: str = "demo") -> InvertedIndex:
    rng = random.Random(seed)
    index = InvertedIndex(name)
    for _ in range(docs):
        doc_id = index.new_doc_id()
        index.index_terms(
            doc_id, "f",
            [(rng.choice(["goal", "foul", "pass"]), position)
             for position in range(rng.randint(1, 4))])
        index.store_value(doc_id, "doc_key", f"d{doc_id}")
    return index


class TestAtomicCommit:
    def test_sealed_but_uncommitted_segment_is_invisible(self, tmp_path):
        directory = IndexDirectory(tmp_path / "demo.segd", name="demo")
        committed = directory.add_index(tiny_index(1))
        # crash window: the next segment is sealed, the manifest never
        # lands.  Readers must keep serving the old manifest.
        directory.seal(tiny_index(2))
        reopened = IndexDirectory(tmp_path / "demo.segd")
        assert reopened.read_manifest() == committed
        with SegmentedIndex(reopened) as index:
            assert index.doc_count == 3
            assert index.generation == committed.generation

    def test_torn_manifest_is_skipped(self, tmp_path):
        directory = IndexDirectory(tmp_path / "demo.segd", name="demo")
        committed = directory.add_index(tiny_index(1))
        torn = directory.path / f"{SEGMENTS_PREFIX}2"
        torn.write_text('{"format": "repro.segments/v1", "gen')
        assert IndexDirectory(directory.path).read_manifest() == committed

    def test_generation_is_monotonic_and_counter_never_reused(
            self, tmp_path):
        directory = IndexDirectory(tmp_path / "demo.segd", name="demo")
        seen_files = set()
        for seed in range(4):
            manifest = directory.add_index(tiny_index(seed))
            assert manifest.generation == seed + 1
            new = {info.file for info in manifest.segments} - seen_files
            assert len(new) == 1
            seen_files |= new
        directory.merge(force=True)
        merged = directory.manifest()
        assert merged.generation == 5
        assert {info.file for info in merged.segments}.isdisjoint(
            seen_files)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_crash_anywhere_preserves_committed_state(self, data,
                                                      tmp_path_factory):
        """Property: committed chunks + arbitrary crash debris
        (orphan segments, torn manifests, leftover temp files) always
        reopen at the last committed manifest, bit-for-bit."""
        root = tmp_path_factory.mktemp("crash") / "demo.segd"
        directory = IndexDirectory(root, name="demo")
        chunk_count = data.draw(st.integers(1, 4), label="chunks")
        union = InvertedIndex("demo")
        for seed in range(chunk_count):
            chunk = tiny_index(seed,
                               docs=data.draw(st.integers(1, 4),
                                              label=f"docs{seed}"))
            union.merge(chunk)
            committed = directory.add_index(chunk)

        debris = data.draw(st.lists(
            st.sampled_from(["orphan", "torn", "tmp"]), max_size=3),
            label="debris")
        for kind in debris:
            if kind == "orphan":
                directory.seal(tiny_index(99))
            elif kind == "torn":
                generation = committed.generation \
                    + data.draw(st.integers(1, 3), label="torn_gen")
                (root / f"{SEGMENTS_PREFIX}{generation}").write_bytes(
                    data.draw(st.binary(max_size=40), label="garbage"))
            else:
                (root / "seg_0000009999.ridx.tmp").write_bytes(b"junk")

        reopened = IndexDirectory(root)
        assert reopened.read_manifest() == committed
        with SegmentedIndex(reopened) as index:
            assert index.doc_count == union.doc_count
            assert index.to_inverted().to_json() == union.to_json()


class TestTieredMerge:
    def build(self, tmp_path, chunk_docs):
        directory = IndexDirectory(tmp_path / "demo.segd", name="demo")
        for seed, docs in enumerate(chunk_docs):
            directory.add_index(tiny_index(seed, docs=docs))
        return directory

    def test_no_merge_below_factor(self, tmp_path):
        directory = self.build(tmp_path, [2, 2, 2])
        assert directory.plan_merges(merge_factor=8) == []
        assert directory.merge(merge_factor=8) == 0

    def test_same_tier_run_merges(self, tmp_path):
        directory = self.build(tmp_path, [2] * 8)
        assert directory.plan_merges(merge_factor=8) == [(0, 8)]
        assert directory.merge(merge_factor=8) == 1
        assert len(directory.manifest().segments) == 1

    def test_only_adjacent_same_tier_segments_merge(self, tmp_path):
        # a big segment in the middle splits the small-tier run
        directory = self.build(tmp_path, [2, 2, 300, 2, 2])
        assert directory.plan_merges(merge_factor=2) == [(0, 2), (3, 5)]

    def test_bad_merge_factor_rejected(self, tmp_path):
        directory = self.build(tmp_path, [2, 2])
        with pytest.raises(IndexError_):
            directory.plan_merges(merge_factor=1)

    def test_forced_merge_output_is_byte_identical_to_union(
            self, tmp_path):
        chunk_docs = [3, 5, 2, 4]
        directory = self.build(tmp_path, chunk_docs)
        union = InvertedIndex("demo")
        for seed, docs in enumerate(chunk_docs):
            union.merge(tiny_index(seed, docs=docs))
        assert directory.merge(force=True) == 1
        manifest = directory.manifest()
        assert len(manifest.segments) == 1
        merged_bytes = (directory.path
                        / manifest.segments[0].file).read_bytes()
        oracle = write_segment(union, tmp_path / "oracle.ridx")
        assert merged_bytes == oracle.read_bytes()

    def test_merge_preserves_search_results(self, tmp_path):
        directory = self.build(tmp_path, [3, 4, 5])
        index = SegmentedIndex(directory)
        searcher = IndexSearcher(index)
        query = TermQuery("f", "goal")
        before = [(h.doc_id, h.score)
                  for h in searcher.search(query, 10)]
        directory.merge(force=True)
        assert index.refresh()
        assert index.segment_count == 1
        after = [(h.doc_id, h.score)
                 for h in searcher.search(query, 10)]
        assert after == before
        index.close()


class TestVacuum:
    def test_vacuum_sweeps_orphans_and_old_manifests(self, tmp_path):
        directory = IndexDirectory(tmp_path / "demo.segd", name="demo")
        for seed in range(3):
            directory.add_index(tiny_index(seed))
        directory.seal(tiny_index(77))          # orphan
        directory.merge(force=True)
        deleted = directory.vacuum()
        # 3 merged-away segments + 1 orphan + 3 old manifests
        assert len(deleted) == 7
        live = directory.manifest()
        remaining = sorted(p.name for p in directory.path.iterdir())
        assert remaining == sorted(
            [live.segments[0].file,
             f"{SEGMENTS_PREFIX}{live.generation}"])
        with SegmentedIndex(directory) as index:
            assert index.doc_count == 9


class TestCacheInvalidation:
    def test_merge_bumps_generation_and_invalidates_cache(
            self, tmp_path):
        directory = IndexDirectory(tmp_path / "demo.segd", name="demo")
        for seed in range(3):
            directory.add_index(tiny_index(seed))
        index = SegmentedIndex(directory)
        searcher = IndexSearcher(index)
        query = TermQuery("f", "goal")
        first = searcher.search(query, 5)
        assert not first.cached
        assert searcher.search(query, 5).cached

        old_generation = index.generation
        directory.merge(force=True)
        index.refresh()
        assert index.generation > old_generation
        post_merge = searcher.search(query, 5)
        assert not post_merge.cached      # new generation, new key
        assert [(h.doc_id, h.score) for h in post_merge] \
            == [(h.doc_id, h.score) for h in first]
        index.close()
