"""Tests for the triple-indexed graph."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphError
from repro.rdf import RDF, Graph, Literal, Namespace, URIRef

EX = Namespace("http://example.org/ns#")


@pytest.fixture
def graph():
    g = Graph()
    g.add((EX.goal1, RDF.type, EX.Goal))
    g.add((EX.goal1, EX.scorer, EX.messi))
    g.add((EX.goal1, EX.minute, Literal(10)))
    g.add((EX.pass1, RDF.type, EX.Pass))
    g.add((EX.pass1, EX.passer, EX.xavi))
    return g


class TestMutation:
    def test_add_returns_true_for_new(self):
        g = Graph()
        assert g.add((EX.a, EX.p, EX.b)) is True

    def test_add_duplicate_returns_false(self):
        g = Graph()
        g.add((EX.a, EX.p, EX.b))
        assert g.add((EX.a, EX.p, EX.b)) is False
        assert len(g) == 1

    def test_add_all_counts_only_new(self):
        g = Graph()
        added = g.add_all([(EX.a, EX.p, EX.b), (EX.a, EX.p, EX.b),
                           (EX.a, EX.p, EX.c)])
        assert added == 2

    def test_literal_subject_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add((Literal("x"), EX.p, EX.b))

    def test_non_uri_predicate_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add((EX.a, Literal("p"), EX.b))

    def test_remove_by_pattern(self, graph):
        removed = graph.remove((EX.goal1, None, None))
        assert removed == 3
        assert len(graph) == 2

    def test_remove_specific(self, graph):
        assert graph.remove((EX.goal1, RDF.type, EX.Goal)) == 1
        assert (EX.goal1, RDF.type, EX.Goal) not in graph

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0
        assert list(graph) == []


class TestMatching:
    def test_fully_bound_contains(self, graph):
        assert (EX.goal1, RDF.type, EX.Goal) in graph
        assert (EX.goal1, RDF.type, EX.Pass) not in graph

    def test_subject_bound(self, graph):
        triples = list(graph.triples((EX.goal1, None, None)))
        assert len(triples) == 3

    def test_predicate_bound(self, graph):
        triples = list(graph.triples((None, RDF.type, None)))
        assert len(triples) == 2

    def test_object_bound(self, graph):
        triples = list(graph.triples((None, None, EX.messi)))
        assert triples == [(EX.goal1, EX.scorer, EX.messi)]

    def test_subject_predicate_bound(self, graph):
        triples = list(graph.triples((EX.goal1, EX.scorer, None)))
        assert triples == [(EX.goal1, EX.scorer, EX.messi)]

    def test_predicate_object_bound(self, graph):
        triples = list(graph.triples((None, RDF.type, EX.Goal)))
        assert triples == [(EX.goal1, RDF.type, EX.Goal)]

    def test_wildcard_yields_all(self, graph):
        assert len(list(graph.triples())) == len(graph) == 5

    def test_no_match_empty(self, graph):
        assert list(graph.triples((EX.nothing, None, None))) == []

    def test_count(self, graph):
        assert graph.count((EX.goal1, None, None)) == 3
        assert graph.count() == 5
        assert graph.count((EX.goal1, RDF.type, EX.Goal)) == 1
        assert graph.count((EX.goal1, RDF.type, EX.Pass)) == 0


class TestAccessors:
    def test_subjects(self, graph):
        assert set(graph.subjects(RDF.type)) == {EX.goal1, EX.pass1}

    def test_objects(self, graph):
        assert set(graph.objects(EX.goal1, RDF.type)) == {EX.Goal}

    def test_predicates(self, graph):
        assert EX.scorer in set(graph.predicates(EX.goal1))

    def test_value(self, graph):
        assert graph.value(EX.goal1, EX.scorer, None) == EX.messi

    def test_value_default(self, graph):
        assert graph.value(EX.goal1, EX.nothing, None,
                           default=EX.fallback) == EX.fallback

    def test_value_requires_one_wildcard(self, graph):
        with pytest.raises(GraphError):
            graph.value(EX.goal1, None, None)


class TestSetAlgebra:
    def test_union(self):
        g1 = Graph([(EX.a, EX.p, EX.b)])
        g2 = Graph([(EX.c, EX.p, EX.d)])
        assert len(g1 | g2) == 2

    def test_difference(self):
        g1 = Graph([(EX.a, EX.p, EX.b), (EX.c, EX.p, EX.d)])
        g2 = Graph([(EX.a, EX.p, EX.b)])
        assert list(g1 - g2) == [(EX.c, EX.p, EX.d)]

    def test_intersection(self):
        g1 = Graph([(EX.a, EX.p, EX.b), (EX.c, EX.p, EX.d)])
        g2 = Graph([(EX.a, EX.p, EX.b), (EX.e, EX.p, EX.f)])
        assert list(g1 & g2) == [(EX.a, EX.p, EX.b)]

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add((EX.new, EX.p, EX.v))
        assert len(clone) == len(graph) + 1

    def test_equality(self):
        triples = [(EX.a, EX.p, EX.b), (EX.c, EX.p, EX.d)]
        assert Graph(triples) == Graph(reversed(triples))

    def test_inequality(self):
        assert Graph([(EX.a, EX.p, EX.b)]) != Graph()

    def test_inplace_union(self, graph):
        before = len(graph)
        graph |= [(EX.z, EX.p, EX.q)]
        assert len(graph) == before + 1


class TestPropertyBased:
    @given(st.lists(st.tuples(st.sampled_from("abcd"),
                              st.sampled_from("pq"),
                              st.sampled_from("xyz")), max_size=30))
    def test_size_matches_unique_triples(self, raw):
        triples = [(EX.term(s), EX.term(p), EX.term(o)) for s, p, o in raw]
        g = Graph(triples)
        assert len(g) == len(set(triples))

    @given(st.lists(st.tuples(st.sampled_from("abcd"),
                              st.sampled_from("pq"),
                              st.sampled_from("xyz")), max_size=30))
    def test_every_added_triple_is_found_by_every_index(self, raw):
        triples = [(EX.term(s), EX.term(p), EX.term(o)) for s, p, o in raw]
        g = Graph(triples)
        for s, p, o in set(triples):
            assert (s, p, o) in g
            assert (s, p, o) in g.triples((s, None, None))
            assert (s, p, o) in g.triples((None, p, None))
            assert (s, p, o) in g.triples((None, None, o))

    @given(st.lists(st.tuples(st.sampled_from("ab"),
                              st.sampled_from("p"),
                              st.sampled_from("xy")), max_size=10),
           st.lists(st.tuples(st.sampled_from("ab"),
                              st.sampled_from("p"),
                              st.sampled_from("xy")), max_size=10))
    def test_union_commutes(self, raw1, raw2):
        to_triples = lambda raw: [(EX.term(s), EX.term(p), EX.term(o))
                                  for s, p, o in raw]
        g1, g2 = Graph(to_triples(raw1)), Graph(to_triples(raw2))
        assert (g1 | g2) == (g2 | g1)


class TestChangeJournal:
    def test_generation_bumps_on_add_remove_clear(self):
        g = Graph()
        assert g.generation == 0
        g.add((EX.a, EX.p, EX.b))
        assert g.generation == 1
        g.add((EX.a, EX.p, EX.b))        # duplicate: no bump
        assert g.generation == 1
        g.remove((EX.a, EX.p, EX.b))
        assert g.generation == 2
        g.add((EX.a, EX.p, EX.b))
        g.clear()
        assert g.generation == 4
        g.clear()                        # already empty: no bump
        assert g.generation == 4

    def test_journal_records_additions_in_order(self):
        g = Graph([(EX.a, EX.p, EX.b)])
        with g.journal() as journal:
            g.add((EX.a, EX.p, EX.c))
            g.add((EX.a, EX.p, EX.c))    # duplicate: not journaled
            g.add((EX.b, EX.q, EX.c))
            assert journal == [(EX.a, EX.p, EX.c), (EX.b, EX.q, EX.c)]
        g.add((EX.x, EX.p, EX.y))        # after close: not journaled
        assert len(journal) == 2

    def test_multiple_journals_each_see_their_window(self):
        g = Graph()
        with g.journal() as outer:
            g.add((EX.a, EX.p, EX.b))
            with g.journal() as inner:
                g.add((EX.a, EX.p, EX.c))
            g.add((EX.a, EX.p, EX.d))
        assert len(outer) == 3
        assert inner == [(EX.a, EX.p, EX.c)]


class TestIndexPruning:
    def test_remove_prunes_empty_buckets(self, graph):
        graph.remove((EX.goal1, None, None))
        sizes = graph.index_sizes()      # asserts no empty shells
        assert sizes == {"spo": 2, "pos": 2, "osp": 2}

    def test_remove_everything_leaves_empty_indexes(self, graph):
        graph.remove((None, None, None))
        assert len(graph) == 0
        assert graph.index_sizes() == {"spo": 0, "pos": 0, "osp": 0}

    def test_clear_leaves_empty_indexes(self, graph):
        graph.clear()
        assert graph.index_sizes() == {"spo": 0, "pos": 0, "osp": 0}

    def test_partial_remove_keeps_sibling_entries(self):
        g = Graph([(EX.a, EX.p, EX.b), (EX.a, EX.p, EX.c),
                   (EX.a, EX.q, EX.b)])
        g.remove((EX.a, EX.p, EX.b))
        assert (EX.a, EX.p, EX.c) in g
        assert (EX.a, EX.q, EX.b) in g
        assert g.index_sizes() == {"spo": 2, "pos": 2, "osp": 2}

    @given(st.lists(st.tuples(st.sampled_from("abcd"),
                              st.sampled_from("pq"),
                              st.sampled_from("xyz")), max_size=30),
           st.lists(st.tuples(st.sampled_from("abcd"),
                              st.sampled_from("pq"),
                              st.sampled_from("xyz")), max_size=30))
    def test_index_invariants_after_any_removals(self, raw_add, raw_del):
        g = Graph((EX.term(s), EX.term(p), EX.term(o))
                  for s, p, o in raw_add)
        for s, p, o in raw_del:
            g.remove((EX.term(s), EX.term(p), EX.term(o)))
        sizes = g.index_sizes()
        assert sizes["spo"] == sizes["pos"] == sizes["osp"] == len(g)
