"""Tests for N-Triples round-trip and Turtle output."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParseError
from repro.rdf import BNode, Graph, Literal, Namespace, RDF, URIRef
from repro.rdf import ntriples, turtle

EX = Namespace("http://example.org/ns#")


def sample_graph() -> Graph:
    g = Graph()
    g.add((EX.goal1, RDF.type, EX.Goal))
    g.add((EX.goal1, EX.scorer, EX.messi))
    g.add((EX.goal1, EX.minute, Literal(10)))
    g.add((EX.goal1, EX.note, Literal('He said "gol"\nloudly')))
    g.add((BNode("b1"), EX.about, EX.goal1))
    g.add((EX.goal1, EX.label, Literal("gol", language="tr")))
    return g


class TestNTriplesRoundTrip:
    def test_roundtrip_preserves_graph(self):
        original = sample_graph()
        text = ntriples.serialize_to_string(original)
        parsed = ntriples.parse_string(text)
        assert parsed == original

    def test_output_is_sorted_and_line_terminated(self):
        text = ntriples.serialize_to_string(sample_graph())
        lines = text.strip().split("\n")
        assert lines == sorted(lines)
        assert all(line.endswith(" .") for line in lines)

    def test_comments_and_blanks_ignored(self):
        text = ("# a comment\n\n"
                "<http://e.org/a> <http://e.org/p> <http://e.org/b> .\n")
        g = ntriples.parse_string(text)
        assert len(g) == 1

    def test_typed_literal(self):
        g = ntriples.parse_string(
            '<http://e.org/a> <http://e.org/p> '
            '"5"^^<http://www.w3.org/2001/XMLSchema#integer> .')
        [(_, _, obj)] = list(g)
        assert obj.to_python() == 5

    def test_language_literal(self):
        g = ntriples.parse_string(
            '<http://e.org/a> <http://e.org/p> "gol"@tr .')
        [(_, _, obj)] = list(g)
        assert obj.language == "tr"

    def test_unicode_escape(self):
        g = ntriples.parse_string(
            '<http://e.org/a> <http://e.org/p> "\\u00d6zg\\u00fcr" .')
        [(_, _, obj)] = list(g)
        assert obj.lexical == "Özgür"

    def test_blank_node_subject(self):
        g = ntriples.parse_string(
            '_:x <http://e.org/p> <http://e.org/b> .')
        [(subj, _, _)] = list(g)
        assert isinstance(subj, BNode)
        assert subj == "x"

    @pytest.mark.parametrize("bad", [
        '<http://e.org/a> <http://e.org/p> <http://e.org/b>',   # no dot
        '"lit" <http://e.org/p> <http://e.org/b> .',            # literal subj
        '<http://e.org/a> _:b <http://e.org/b> .',              # bnode pred
        '<http://e.org/a> <http://e.org/p> "unterminated .',
        '<http://e.org/a <http://e.org/p> <http://e.org/b> .',  # bad IRI
        '<http://e.org/a> <http://e.org/p> <http://e.org/b> . junk',
    ])
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(ParseError):
            ntriples.parse_string(bad)

    def test_parse_error_carries_line_number(self):
        text = ("<http://e.org/a> <http://e.org/p> <http://e.org/b> .\n"
                "garbage\n")
        with pytest.raises(ParseError) as exc:
            ntriples.parse_string(text)
        assert exc.value.line == 2

    @given(st.lists(st.tuples(st.sampled_from("abc"),
                              st.sampled_from("pq"),
                              st.text(max_size=20)), max_size=15))
    def test_roundtrip_arbitrary_literals(self, raw):
        g = Graph((EX.term(s), EX.term(p), Literal(o)) for s, p, o in raw)
        assert ntriples.parse_string(ntriples.serialize_to_string(g)) == g


class TestTurtle:
    def test_groups_by_subject(self):
        g = sample_graph()
        g.namespace_manager.bind("ex", EX)
        text = turtle.serialize_to_string(g)
        subject_lines = [line for line in text.splitlines()
                         if line.startswith("ex:goal1 ")]
        assert len(subject_lines) == 1            # one subject block

    def test_uses_a_for_rdf_type(self):
        g = sample_graph()
        g.namespace_manager.bind("ex", EX)
        text = turtle.serialize_to_string(g)
        assert " a ex:Goal" in text

    def test_declares_used_prefixes_only(self):
        g = Graph([(EX.a, EX.p, EX.b)])
        g.namespace_manager.bind("ex", EX)
        text = turtle.serialize_to_string(g)
        assert "@prefix ex:" in text
        assert "@prefix xsd:" not in text

    def test_deterministic(self):
        g = sample_graph()
        assert turtle.serialize_to_string(g) \
            == turtle.serialize_to_string(g)


class TestTurtleParser:
    def test_full_round_trip(self):
        g = sample_graph()
        g.namespace_manager.bind("ex", EX)
        text = turtle.serialize_to_string(g)
        assert turtle.parse_string(text) == g

    def test_prefix_declarations(self):
        g = turtle.parse_string(
            "@prefix ex: <http://e.org/> .\n"
            "ex:a ex:p ex:b .")
        assert (URIRef("http://e.org/a"), URIRef("http://e.org/p"),
                URIRef("http://e.org/b")) in g

    def test_a_shorthand(self):
        g = turtle.parse_string(
            "@prefix ex: <http://e.org/> .\nex:x a ex:Goal .")
        assert (URIRef("http://e.org/x"), RDF.type,
                URIRef("http://e.org/Goal")) in g

    def test_predicate_and_object_lists(self):
        g = turtle.parse_string(
            "@prefix ex: <http://e.org/> .\n"
            "ex:x ex:p ex:a , ex:b ; ex:q ex:c .")
        assert len(g) == 3

    def test_typed_and_numeric_literals(self):
        g = turtle.parse_string(
            "@prefix ex: <http://e.org/> .\n"
            'ex:x ex:m 10 ; ex:f 2.5 ; ex:flag true ; '
            'ex:s "text" .')
        values = {obj.to_python()
                  for _, _, obj in g}
        assert values == {10, 2.5, True, "text"}

    def test_language_tag(self):
        g = turtle.parse_string(
            '@prefix ex: <http://e.org/> .\nex:x ex:label "gol"@tr .')
        [(_, _, obj)] = list(g)
        assert obj.language == "tr"

    def test_blank_node_subject(self):
        g = turtle.parse_string(
            "@prefix ex: <http://e.org/> .\n_:b1 ex:p ex:a .")
        [(subject, _, _)] = list(g)
        assert isinstance(subject, BNode)

    def test_comments_skipped(self):
        g = turtle.parse_string(
            "# top comment\n@prefix ex: <http://e.org/> .\n"
            "ex:a ex:p ex:b . # trailing\n")
        assert len(g) == 1

    @pytest.mark.parametrize("bad", [
        "ex:a ex:p ex:b .",                     # unbound prefix
        "@prefix ex: <http://e.org/> .\nex:a ex:p .",   # missing object
        "@prefix ex: <http://e.org/> .\nex:a ex:p ex:b",  # missing dot
        '@prefix ex: <http://e.org/> .\n"lit" ex:p ex:b .',
    ])
    def test_malformed_turtle_raises(self, bad):
        with pytest.raises(Exception):
            turtle.parse_string(bad)

    def test_ontology_round_trips_via_turtle(self):
        from repro.ontology import soccer_ontology, to_graph
        g = to_graph(soccer_ontology(), include_abox=False)
        text = turtle.serialize_to_string(g)
        assert turtle.parse_string(text) == g
