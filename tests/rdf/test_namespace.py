"""Tests for namespaces and the namespace manager."""

import pytest

from repro.errors import TermError
from repro.rdf.namespace import (OWL, RDF, RDFS, SOCCER, XSD, Namespace,
                                 NamespaceManager)
from repro.rdf.term import URIRef


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://e.org/ns#")
        assert ns.Player == URIRef("http://e.org/ns#Player")

    def test_item_access(self):
        ns = Namespace("http://e.org/ns#")
        assert ns["Player"] == URIRef("http://e.org/ns#Player")

    def test_term_method(self):
        ns = Namespace("http://e.org/ns#")
        assert ns.term("x") == "http://e.org/ns#x"

    def test_contains(self):
        ns = Namespace("http://e.org/ns#")
        assert "http://e.org/ns#Player" in ns
        assert "http://other.org/x" not in ns

    def test_underscore_attributes_raise(self):
        ns = Namespace("http://e.org/ns#")
        with pytest.raises(AttributeError):
            ns._private

    def test_rejects_empty_base(self):
        with pytest.raises(TermError):
            Namespace("")

    def test_standard_vocabularies(self):
        assert RDF.type.endswith("#type")
        assert RDFS.subClassOf.endswith("#subClassOf")
        assert OWL.Class.endswith("#Class")
        assert XSD.integer.endswith("#integer")
        assert str(SOCCER).startswith("http://")


class TestNamespaceManager:
    def test_default_bindings(self):
        manager = NamespaceManager()
        assert "rdf" in manager
        assert "owl" in manager

    def test_expand(self):
        manager = NamespaceManager()
        assert manager.expand("rdf:type") == RDF.type

    def test_expand_unbound_prefix(self):
        manager = NamespaceManager()
        with pytest.raises(TermError):
            manager.expand("nope:thing")

    def test_expand_requires_colon(self):
        manager = NamespaceManager()
        with pytest.raises(TermError):
            manager.expand("plainword")

    def test_bind_and_qname(self):
        manager = NamespaceManager()
        manager.bind("pre", SOCCER)
        assert manager.qname(SOCCER.Goal) == "pre:Goal"

    def test_qname_unknown_namespace(self):
        manager = NamespaceManager()
        assert manager.qname(URIRef("http://nowhere.org/x")) is None

    def test_bind_no_replace_keeps_existing(self):
        manager = NamespaceManager()
        manager.bind("pre", "http://a.org/")
        manager.bind("pre", "http://b.org/", replace=False)
        assert manager.expand("pre:x") == "http://a.org/x"

    def test_rebinding_replaces(self):
        manager = NamespaceManager()
        manager.bind("pre", "http://a.org/")
        manager.bind("pre", "http://b.org/")
        assert manager.expand("pre:x") == "http://b.org/x"
        # the old namespace no longer compacts through the old prefix
        assert manager.qname(URIRef("http://a.org/x")) is None

    def test_namespaces_sorted(self):
        manager = NamespaceManager()
        prefixes = [prefix for prefix, _ in manager.namespaces()]
        assert prefixes == sorted(prefixes)
