"""Tests for RDF terms."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TermError
from repro.rdf.term import (BNode, Literal, URIRef, Variable, XSD_BOOLEAN,
                            XSD_DOUBLE, XSD_INTEGER, bnode,
                            reset_bnode_counter)


class TestURIRef:
    def test_is_a_string(self):
        uri = URIRef("http://example.org/x")
        assert uri == "http://example.org/x"
        assert isinstance(uri, str)

    def test_rejects_empty(self):
        with pytest.raises(TermError):
            URIRef("")

    @pytest.mark.parametrize("bad", ["http://x y", "a<b", 'a"b', "a\nb"])
    def test_rejects_forbidden_characters(self, bad):
        with pytest.raises(TermError):
            URIRef(bad)

    def test_local_name_from_fragment(self):
        assert URIRef("http://example.org/ns#Player").local_name == "Player"

    def test_local_name_from_path(self):
        assert URIRef("http://example.org/ns/Player").local_name == "Player"

    def test_namespace_complements_local_name(self):
        uri = URIRef("http://example.org/ns#Player")
        assert uri.namespace + uri.local_name == str(uri)

    def test_n3_form(self):
        assert URIRef("http://e.org/x").n3() == "<http://e.org/x>"

    def test_usable_as_dict_key_interchangeably_with_str(self):
        d = {URIRef("http://e.org/x"): 1}
        assert d["http://e.org/x"] == 1


class TestBNode:
    def test_label(self):
        assert BNode("b1") == "b1"

    def test_n3_form(self):
        assert BNode("b1").n3() == "_:b1"

    def test_rejects_whitespace(self):
        with pytest.raises(TermError):
            BNode("a b")

    def test_rejects_empty(self):
        with pytest.raises(TermError):
            BNode("")

    def test_minting_is_sequential(self):
        reset_bnode_counter()
        first, second = bnode(), bnode()
        assert first == "b1"
        assert second == "b2"

    def test_minting_with_prefix(self):
        reset_bnode_counter()
        assert bnode("tmp") == "tmp1"


class TestVariable:
    def test_strips_question_mark(self):
        assert Variable("?player") == "player"

    def test_plain_name(self):
        assert Variable("player") == "player"

    def test_n3_form(self):
        assert Variable("x").n3() == "?x"

    def test_rejects_empty(self):
        with pytest.raises(TermError):
            Variable("?")


class TestLiteral:
    def test_plain_string(self):
        lit = Literal("hello")
        assert lit.lexical == "hello"
        assert lit.datatype is None
        assert lit.to_python() == "hello"

    def test_integer_gets_datatype(self):
        lit = Literal(42)
        assert lit.datatype == XSD_INTEGER
        assert lit.to_python() == 42

    def test_float_gets_datatype(self):
        lit = Literal(2.5)
        assert lit.datatype == XSD_DOUBLE
        assert lit.to_python() == 2.5

    def test_boolean_gets_datatype(self):
        lit = Literal(True)
        assert lit.datatype == XSD_BOOLEAN
        assert lit.lexical == "true"
        assert lit.to_python() is True

    def test_term_equality_not_value_equality(self):
        assert Literal(1) != Literal("1")

    def test_language_literal(self):
        lit = Literal("gol", language="tr")
        assert lit.language == "tr"
        assert lit.n3() == '"gol"@tr'

    def test_datatype_and_language_conflict(self):
        with pytest.raises(TermError):
            Literal("x", datatype=XSD_INTEGER, language="en")

    def test_immutable(self):
        lit = Literal("x")
        with pytest.raises(AttributeError):
            lit.lexical = "y"

    def test_n3_escapes_quotes_and_newlines(self):
        assert Literal('say "hi"\n').n3() == '"say \\"hi\\"\\n"'

    def test_n3_typed(self):
        assert Literal(7).n3() == f'"7"^^<{XSD_INTEGER}>'

    def test_hashable_and_equal(self):
        assert hash(Literal("a")) == hash(Literal("a"))
        assert Literal("a") == Literal("a")

    def test_numeric_ordering(self):
        assert Literal(2) < Literal(10)

    def test_lexical_ordering_fallback(self):
        assert Literal("apple") < Literal("banana")

    @given(st.integers())
    def test_integer_roundtrip(self, value):
        assert Literal(value).to_python() == value

    @given(st.text(max_size=50))
    def test_string_lexical_preserved(self, value):
        assert Literal(value).lexical == value
