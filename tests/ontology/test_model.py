"""Tests for the ontology model and builder."""

import pytest

from repro.errors import OntologyError
from repro.rdf import Literal, Namespace
from repro.ontology import (Individual, OntClass, Ontology,
                            OntologyBuilder, OntProperty, PropertyKind,
                            Restriction, RestrictionKind)

EX = Namespace("http://example.org/ns#")


@pytest.fixture
def builder():
    return OntologyBuilder(EX, name="test")


class TestClasses:
    def test_add_and_get(self, builder):
        builder.klass("Event")
        onto = builder.ontology
        assert onto.has_class(EX.Event)
        assert onto.get_class(EX.Event).label == "Event"

    def test_duplicate_class_rejected(self, builder):
        builder.klass("Event")
        with pytest.raises(OntologyError):
            builder.klass("Event")

    def test_multiple_parents(self, builder):
        event = builder.klass("Event")
        positive = builder.klass("PositiveEvent", event)
        ball = builder.klass("BallEvent", event)
        goal = builder.klass("Goal", positive, ball)
        assert goal.parents == {positive.uri, ball.uri}

    def test_direct_subclasses(self, builder):
        event = builder.klass("Event")
        builder.klass("Goal", event)
        builder.klass("Foul", event)
        assert set(builder.ontology.direct_subclasses(event.uri)) \
            == {EX.Goal, EX.Foul}

    def test_roots(self, builder):
        event = builder.klass("Event")
        builder.klass("Goal", event)
        assert builder.ontology.roots() == [event.uri]

    def test_unknown_class_raises(self, builder):
        with pytest.raises(OntologyError):
            builder.ontology.get_class(EX.Nope)

    def test_validation_catches_dangling_parent(self):
        onto = Ontology()
        onto.add_class(OntClass(EX.Goal, parents={EX.Missing}))
        with pytest.raises(OntologyError):
            onto.validate()


class TestProperties:
    def test_object_property(self, builder):
        event = builder.klass("Event")
        player = builder.klass("Player")
        prop = builder.object_property("subjectPlayer", domain=event,
                                       range=player)
        assert prop.kind == PropertyKind.OBJECT
        assert prop.domain == event.uri
        assert prop.range == player.uri

    def test_data_property(self, builder):
        event = builder.klass("Event")
        prop = builder.data_property("inMinute", domain=event,
                                     functional=True)
        assert prop.kind == PropertyKind.DATA
        assert prop.functional

    def test_subproperty_kind_mismatch_fails_validation(self, builder):
        builder.klass("Event")
        parent = builder.object_property("subjectPlayer")
        builder.data_property("weird", parents=[parent])
        with pytest.raises(OntologyError):
            builder.build()

    def test_duplicate_property_rejected(self, builder):
        builder.object_property("p")
        with pytest.raises(OntologyError):
            builder.object_property("p")

    def test_direct_subproperties(self, builder):
        parent = builder.object_property("subjectPlayer")
        builder.object_property("scorerPlayer", parents=[parent])
        assert builder.ontology.direct_subproperties(parent.uri) \
            == [EX.scorerPlayer]

    def test_invalid_kind_rejected(self):
        with pytest.raises(OntologyError):
            OntProperty(EX.p, kind="weird")

    def test_unknown_inverse_fails_validation(self, builder):
        builder.object_property("p", inverse_of=EX.missing)
        with pytest.raises(OntologyError):
            builder.build()


class TestRestrictions:
    def test_all_values_from(self, builder):
        save = builder.klass("Save")
        keeper = builder.klass("Goalkeeper")
        prop = builder.object_property("savingGoalkeeper")
        restriction = builder.all_values_from(save, prop, keeper)
        assert restriction.kind == RestrictionKind.ALL_VALUES_FROM
        assert list(builder.ontology.restrictions(save.uri)) \
            == [restriction]

    def test_cardinality_needs_integer(self, builder):
        match = builder.klass("Match")
        builder.object_property("homeTeam")
        with pytest.raises(OntologyError):
            Restriction(match.uri, EX.homeTeam,
                        RestrictionKind.CARDINALITY, "one")

    def test_negative_cardinality_rejected(self, builder):
        match = builder.klass("Match")
        builder.object_property("homeTeam")
        with pytest.raises(OntologyError):
            Restriction(match.uri, EX.homeTeam,
                        RestrictionKind.CARDINALITY, -1)

    def test_restriction_on_unknown_class_rejected(self, builder):
        builder.object_property("p")
        with pytest.raises(OntologyError):
            builder.ontology.add_restriction(Restriction(
                EX.Nope, EX.p, RestrictionKind.MAX_CARDINALITY, 1))

    def test_unknown_kind_rejected(self, builder):
        save = builder.klass("Save")
        builder.object_property("p")
        with pytest.raises(OntologyError):
            Restriction(save.uri, EX.p, "weird", 1)


class TestDisjointness:
    def test_symmetric(self, builder):
        a = builder.klass("Person")
        b = builder.klass("Team")
        builder.disjoint(a, b)
        assert b.uri in builder.ontology.get_class(a.uri).disjoint_with
        assert a.uri in builder.ontology.get_class(b.uri).disjoint_with


class TestIndividuals:
    def test_add_and_query(self, builder):
        goal_class = builder.klass("Goal")
        ind = builder.individual("goal1", goal_class)
        assert builder.ontology.has_individual(ind.uri)
        assert list(builder.ontology.individuals(goal_class.uri)) == [ind]

    def test_property_values_deduplicate(self):
        ind = Individual(EX.goal1)
        ind.add(EX.scorer, EX.messi)
        ind.add(EX.scorer, EX.messi)
        assert ind.get(EX.scorer) == [EX.messi]

    def test_first(self):
        ind = Individual(EX.goal1)
        assert ind.first(EX.scorer) is None
        ind.add(EX.scorer, EX.messi)
        assert ind.first(EX.scorer) == EX.messi

    def test_merge_on_re_add(self, builder):
        goal_class = builder.klass("Goal")
        event = builder.klass("Event")
        first = Individual(EX.goal1, {goal_class.uri})
        first.add(EX.minute, Literal(10))
        second = Individual(EX.goal1, {event.uri})
        second.add(EX.minute, Literal(10))
        second.add(EX.scorer, EX.messi)
        builder.ontology.add_individual(first)
        merged = builder.ontology.add_individual(second)
        assert merged is builder.ontology.individual(EX.goal1)
        assert merged.types == {goal_class.uri, event.uri}
        assert merged.get(EX.minute) == [Literal(10)]

    def test_unknown_individual_raises(self, builder):
        with pytest.raises(OntologyError):
            builder.ontology.individual(EX.ghost)


class TestAboxViews:
    def test_spawn_shares_tbox(self, builder):
        builder.klass("Goal")
        onto = builder.build()
        view = onto.spawn_abox("match1")
        assert view.has_class(EX.Goal)
        assert view.individual_count == 0

    def test_spawned_individuals_stay_local(self, builder):
        goal_class = builder.klass("Goal")
        onto = builder.build()
        view1 = onto.spawn_abox("m1")
        view2 = onto.spawn_abox("m2")
        view1.add_individual(Individual(EX.g1, {goal_class.uri}))
        assert view1.individual_count == 1
        assert view2.individual_count == 0
        assert onto.individual_count == 0

    def test_tbox_changes_visible_in_views(self, builder):
        builder.klass("Goal")
        onto = builder.build()
        view = onto.spawn_abox("m1")
        onto.add_class(OntClass(EX.Corner))
        assert view.has_class(EX.Corner)
