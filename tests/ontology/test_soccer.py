"""Tests for the soccer domain ontology (paper §3.2, Fig. 2)."""

import pytest

from repro.ontology import (CLASS_COUNT, PROPERTY_COUNT, PropertyKind,
                            soccer_ontology)
from repro.rdf import SOCCER
from repro.reasoning import Taxonomy


@pytest.fixture(scope="module")
def onto():
    return soccer_ontology()


@pytest.fixture(scope="module")
def taxonomy(onto):
    return Taxonomy(onto)


class TestPublishedCounts:
    def test_79_concepts(self, onto):
        assert onto.class_count == CLASS_COUNT == 79

    def test_95_properties(self, onto):
        assert onto.property_count == PROPERTY_COUNT == 95

    def test_singleton(self):
        assert soccer_ontology() is soccer_ontology()

    def test_validates(self, onto):
        onto.validate()   # raises on any dangling reference


class TestEventHierarchy:
    @pytest.mark.parametrize("child,ancestor", [
        ("Goal", "Event"),
        ("Goal", "PositiveEvent"),
        ("Goal", "Shoot"),
        ("LongPass", "Pass"),
        ("LongPass", "BallEvent"),
        ("LongPass", "Event"),
        ("YellowCard", "Punishment"),
        ("RedCard", "Punishment"),
        ("Punishment", "NegativeEvent"),
        ("MissedGoal", "Shoot"),
        ("MissedGoal", "NegativeEvent"),
        ("Offside", "RuleViolation"),
        ("Corner", "SetPiece"),
        ("UnknownEvent", "Event"),
        ("OwnGoal", "Goal"),
        ("Assist", "PositiveEvent"),
    ])
    def test_subclass_links(self, taxonomy, child, ancestor):
        assert taxonomy.is_subclass_of(SOCCER.term(child),
                                       SOCCER.term(ancestor))

    def test_miss_label(self, onto):
        # the paper calls the class "Miss" ("the type of the event
        # above is a Miss", §3.6.2)
        assert onto.get_class(SOCCER.MissedGoal).label == "Miss"

    def test_goal_not_negative(self, taxonomy):
        assert not taxonomy.is_subclass_of(SOCCER.Goal,
                                           SOCCER.NegativeEvent)


class TestPlayerHierarchy:
    @pytest.mark.parametrize("position", [
        "LeftBack", "RightBack", "CentreBack", "Sweeper"])
    def test_defence_positions(self, taxonomy, position):
        assert taxonomy.is_subclass_of(SOCCER.term(position),
                                       SOCCER.DefencePlayer)
        assert taxonomy.is_subclass_of(SOCCER.term(position),
                                       SOCCER.Player)

    def test_goalkeeper_is_player(self, taxonomy):
        assert taxonomy.is_subclass_of(SOCCER.Goalkeeper, SOCCER.Player)

    def test_goalkeeper_disjoint_with_outfield(self, onto):
        keeper = onto.get_class(SOCCER.Goalkeeper)
        assert SOCCER.DefencePlayer in keeper.disjoint_with
        assert SOCCER.ForwardPlayer in keeper.disjoint_with


class TestGenericRoleProperties:
    """The §3.4 decoupling: four generic properties with
    event-specific sub-properties."""

    @pytest.mark.parametrize("sub,generic", [
        ("scorerPlayer", "subjectPlayer"),
        ("missingPlayer", "subjectPlayer"),
        ("savingGoalkeeper", "subjectPlayer"),
        ("bookedPlayer", "subjectPlayer"),
        ("cornerTaker", "subjectPlayer"),
        ("passReceiver", "objectPlayer"),
        ("injuredPlayer", "objectPlayer"),
        ("beatenGoalkeeper", "objectPlayer"),
        ("scoringTeam", "subjectTeam"),
        ("concedingTeam", "objectTeam"),
    ])
    def test_subproperty_links(self, taxonomy, sub, generic):
        assert taxonomy.is_subproperty_of(SOCCER.term(sub),
                                          SOCCER.term(generic))

    def test_scorer_player_domain_is_goal(self, onto):
        assert onto.get_property(SOCCER.scorerPlayer).domain == SOCCER.Goal

    def test_saving_goalkeeper_range_is_goalkeeper(self, onto):
        # "only the goalkeepers … are allowed in the position of
        # goalkeeping" (§3.5)
        prop = onto.get_property(SOCCER.savingGoalkeeper)
        assert prop.range == SOCCER.Goalkeeper


class TestActorHierarchy:
    """Q-7's machinery: actorOfX ⊑ actorOfNegativeMove (§4)."""

    @pytest.mark.parametrize("sub", [
        "actorOfMissedGoal", "actorOfOffside", "actorOfRedCard",
        "actorOfYellowCard", "actorOfFoul", "actorOfOwnGoal"])
    def test_negative_moves(self, taxonomy, sub):
        assert taxonomy.is_subproperty_of(SOCCER.term(sub),
                                          SOCCER.actorOfNegativeMove)

    @pytest.mark.parametrize("sub", [
        "actorOfGoal", "actorOfAssist", "actorOfSave", "actorOfPass"])
    def test_positive_moves(self, taxonomy, sub):
        assert taxonomy.is_subproperty_of(SOCCER.term(sub),
                                          SOCCER.actorOfPositiveMove)

    def test_both_under_actor_of_move(self, taxonomy):
        assert taxonomy.is_subproperty_of(SOCCER.actorOfNegativeMove,
                                          SOCCER.actorOfMove)
        assert taxonomy.is_subproperty_of(SOCCER.actorOfPositiveMove,
                                          SOCCER.actorOfMove)


class TestRestrictions:
    def test_one_goalkeeper_per_team(self, onto):
        # "only one goalkeeper is allowed in the game" (§3.5)
        kinds = [(r.kind, r.filler) for r in
                 onto.restrictions(SOCCER.Team)
                 if r.on_property == SOCCER.hasGoalkeeper]
        assert ("maxCardinality", 1) in kinds
        assert ("allValuesFrom", SOCCER.Goalkeeper) in kinds

    def test_match_has_exactly_one_home_team(self, onto):
        kinds = [(r.on_property.local_name, r.kind, r.filler)
                 for r in onto.restrictions(SOCCER.Match)]
        assert ("homeTeam", "cardinality", 1) in kinds
        assert ("awayTeam", "cardinality", 1) in kinds


class TestPropertyKinds:
    def test_in_minute_is_data_property(self, onto):
        assert onto.get_property(SOCCER.inMinute).kind == PropertyKind.DATA

    def test_in_match_is_functional(self, onto):
        assert onto.get_property(SOCCER.inMatch).functional

    def test_plays_for_inverse(self, onto):
        assert onto.get_property(SOCCER.hasPlayer).inverse_of \
            == SOCCER.playsFor
