"""Tests for the ontology documentation generator."""

import pytest

from repro.ontology import OntologyBuilder, soccer_ontology
from repro.ontology.docgen import generate_markdown
from repro.rdf import Namespace, XSD

EX = Namespace("http://example.org/ns#")


@pytest.fixture(scope="module")
def soccer_doc():
    return generate_markdown(soccer_ontology())


class TestSoccerReference:
    def test_headline_counts(self, soccer_doc):
        assert "79 classes, 95 properties" in soccer_doc

    def test_hierarchy_indentation(self, soccer_doc):
        assert "- **Agent**" in soccer_doc
        assert "    - **Player**" in soccer_doc or \
            "  - **Player**" in soccer_doc

    def test_custom_labels_shown(self, soccer_doc):
        assert '**MissedGoal** ("Miss")' in soccer_doc

    def test_property_tables(self, soccer_doc):
        assert "## Object properties" in soccer_doc
        assert "## Data properties" in soccer_doc
        assert "| scorerPlayer | subjectPlayer | Goal | Player" \
            in soccer_doc

    def test_restrictions_table(self, soccer_doc):
        assert "## Restrictions" in soccer_doc
        assert "| Team | hasGoalkeeper | maxCardinality | 1 |" \
            in soccer_doc

    def test_disjointness_section(self, soccer_doc):
        assert "## Disjoint classes" in soccer_doc
        assert "Person ⊥ Team" in soccer_doc

    def test_generated_doc_file_in_sync(self, soccer_doc):
        """docs/ontology.md is a generated artifact; keep it fresh."""
        from pathlib import Path
        path = Path(__file__).parents[2] / "docs" / "ontology.md"
        stored = path.read_text(encoding="utf-8")
        regenerated = generate_markdown(
            soccer_ontology(),
            title="Soccer ontology reference (paper §3.2, Fig. 2)")
        assert stored == regenerated


class TestSmallOntology:
    def test_functional_and_inverse_notes(self):
        b = OntologyBuilder(EX)
        team = b.klass("Team")
        player = b.klass("Player")
        plays = b.object_property("playsFor", domain=player, range=team,
                                  functional=True)
        b.object_property("hasPlayer", domain=team, range=player,
                          inverse_of=plays)
        text = generate_markdown(b.build())
        assert "functional" in text
        assert "inverse of playsFor" in text

    def test_data_property_range_rendered(self):
        b = OntologyBuilder(EX)
        event = b.klass("Event")
        b.data_property("minute", domain=event, range=XSD.integer)
        text = generate_markdown(b.build())
        assert "integer" in text

    def test_no_restriction_section_when_empty(self):
        b = OntologyBuilder(EX)
        b.klass("Event")
        text = generate_markdown(b.build())
        assert "## Restrictions" not in text
