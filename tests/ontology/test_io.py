"""Tests for ontology ↔ RDF graph round trips."""

import pytest

from repro.ontology import (Individual, OntologyBuilder, abox_to_graph,
                            individuals_from_graph, soccer_ontology,
                            to_graph)
from repro.rdf import (OWL, RDF, RDFS, SOCCER, BNode, Graph, Literal,
                       Namespace, URIRef)

EX = Namespace("http://example.org/ns#")


@pytest.fixture
def small_ontology():
    b = OntologyBuilder(EX)
    event = b.klass("Event")
    goal = b.klass("Goal", event)
    player = b.klass("Player")
    b.object_property("scorerPlayer", domain=goal, range=player,
                      functional=True)
    b.data_property("inMinute", domain=event)
    b.max_cardinality(goal, "scorerPlayer", 1)
    return b.build()


class TestTBoxSerialization:
    def test_classes_as_owl(self, small_ontology):
        graph = to_graph(small_ontology)
        assert (EX.Goal, RDF.type, OWL.Class) in graph
        assert (EX.Goal, RDFS.subClassOf, EX.Event) in graph

    def test_property_metadata(self, small_ontology):
        graph = to_graph(small_ontology)
        assert (EX.scorerPlayer, RDF.type, OWL.ObjectProperty) in graph
        assert (EX.scorerPlayer, RDF.type, OWL.FunctionalProperty) in graph
        assert (EX.scorerPlayer, RDFS.domain, EX.Goal) in graph
        assert (EX.scorerPlayer, RDFS.range, EX.Player) in graph
        assert (EX.inMinute, RDF.type, OWL.DatatypeProperty) in graph

    def test_restrictions_as_bnodes(self, small_ontology):
        graph = to_graph(small_ontology)
        restrictions = list(graph.subjects(RDF.type, OWL.Restriction))
        assert len(restrictions) == 1
        node = restrictions[0]
        assert graph.value(node, OWL.onProperty, None) == EX.scorerPlayer
        assert graph.value(node, OWL.maxCardinality, None) == Literal(1)

    def test_full_soccer_tbox_serializes(self):
        graph = to_graph(soccer_ontology(), include_abox=False)
        classes = set(graph.subjects(RDF.type, OWL.Class))
        assert len(classes) == 79


class TestAboxRoundTrip:
    def test_individual_round_trip(self, small_ontology):
        abox = small_ontology.spawn_abox("m1")
        goal = Individual(EX.goal1, {EX.Goal})
        goal.add(EX.scorerPlayer, EX.messi)
        goal.add(EX.inMinute, Literal(10))
        player = Individual(EX.messi, {EX.Player})
        abox.add_individual(goal)
        abox.add_individual(player)

        graph = abox_to_graph(abox)
        loaded = individuals_from_graph(graph, small_ontology)
        reloaded = loaded.individual(EX.goal1)
        assert reloaded.types == {EX.Goal}
        assert reloaded.get(EX.scorerPlayer) == [EX.messi]
        assert reloaded.get(EX.inMinute) == [Literal(10)]

    def test_unknown_predicates_dropped_on_load(self, small_ontology):
        graph = Graph()
        graph.add((EX.goal1, RDF.type, EX.Goal))
        graph.add((EX.goal1, EX.mystery, Literal("x")))
        loaded = individuals_from_graph(graph, small_ontology)
        assert loaded.individual(EX.goal1).properties == {}

    def test_untyped_subjects_ignored(self, small_ontology):
        graph = Graph()
        graph.add((EX.something, EX.scorerPlayer, EX.messi))
        loaded = individuals_from_graph(graph, small_ontology)
        assert loaded.individual_count == 0

    def test_blank_nodes_skolemized(self, small_ontology):
        graph = Graph()
        temp = BNode("tmp_123")
        graph.add((temp, RDF.type, EX.Goal))
        graph.add((temp, EX.inMinute, Literal(9)))
        loaded = individuals_from_graph(graph, small_ontology)
        [individual] = list(loaded.individuals())
        assert isinstance(individual.uri, URIRef)
        assert "skolem" in str(individual.uri)
        assert individual.get(EX.inMinute) == [Literal(9)]

    def test_types_outside_ontology_ignored(self, small_ontology):
        graph = Graph()
        graph.add((EX.x, RDF.type, EX.NotAClass))
        loaded = individuals_from_graph(graph, small_ontology)
        assert loaded.individual_count == 0
