"""Tests for gold relevance, the harness and report rendering."""

import pytest

from repro.evaluation import (PAPER_TABLE4, RelevanceJudge, TABLE3_QUERIES,
                              TABLE6_QUERIES, format_cell, render_table)
from repro.soccer import EventKind


class TestRelevanceJudge:
    @pytest.fixture(scope="class")
    def judge(self, corpus):
        return RelevanceJudge(corpus)

    def test_q1_counts_all_goal_kinds(self, judge, corpus):
        gold = judge.for_query("Q-1")
        expected = sum(
            1 for m in corpus.matches for e in m.events
            if e.kind in (EventKind.GOAL, EventKind.PENALTY_GOAL,
                          EventKind.OWN_GOAL))
        assert len(gold) == expected

    def test_q3_messi_three_goals(self, judge):
        assert judge.relevant_count("Q-3") == 3

    def test_q5_alex_two_cards(self, judge):
        assert judge.relevant_count("Q-5") == 2

    def test_q8_counts_subject_and_object(self, judge, corpus):
        gold = judge.for_query("Q-8")
        for event_id in gold:
            event = next(e for m in corpus.matches for e in m.events
                         if e.event_id == event_id)
            assert event.involves("Ronaldo")

    def test_all_queries_have_relevant_events(self, judge):
        for query in (*TABLE3_QUERIES, *TABLE6_QUERIES):
            assert judge.relevant_count(query.query_id) > 0, \
                query.query_id

    def test_unknown_query_raises(self, judge):
        with pytest.raises(KeyError):
            judge.for_query("Q-99")

    def test_resolve_event_id_passthrough(self, judge, corpus):
        event = corpus.matches[0].events[0]
        assert judge.resolve(event.event_id) == event.event_id

    def test_resolve_narration_id(self, judge, corpus):
        crawled = corpus.crawled[0]
        for index, narration in enumerate(crawled.narrations):
            if narration.event_id is not None:
                key = f"{crawled.match_id}_n{index:04d}"
                assert judge.resolve(key) == narration.event_id
                break

    def test_resolve_color_narration_is_none(self, judge, corpus):
        crawled = corpus.crawled[0]
        for index, narration in enumerate(crawled.narrations):
            if narration.event_id is None:
                key = f"{crawled.match_id}_n{index:04d}"
                assert judge.resolve(key) is None
                break

    def test_resolve_unknown_key_is_none(self, judge):
        assert judge.resolve("skolem_tmp_whatever") is None


class TestHarness:
    def test_table4_structure(self, harness):
        table = harness.table4()
        assert table.systems == ["TRAD", "BASIC_EXT", "FULL_EXT",
                                 "FULL_INF"]
        assert table.query_ids() == [q.query_id for q in TABLE3_QUERIES]

    def test_query_result_fields(self, harness):
        table = harness.table4()
        result = table.get("Q-1", "FULL_INF")
        assert result.relevant_count > 0
        assert 0.0 <= result.average_precision <= 1.0
        assert result.scaled == pytest.approx(
            result.average_precision * result.relevant_count)

    def test_table6_structure(self, harness):
        table = harness.table6()
        assert table.systems == ["FULL_INF", "PHR_EXP"]
        assert len(table.query_ids()) == 3


class TestReport:
    def test_format_cell(self, harness):
        result = harness.table4().get("Q-1", "FULL_INF")
        cell = format_cell(result)
        assert "/" in cell and "%" in cell

    def test_render_contains_all_queries(self, harness):
        text = render_table(harness.table4(), "Table 4")
        for query in TABLE3_QUERIES:
            assert query.query_id in text
        assert "MAP" in text

    def test_paper_reference_numbers_complete(self):
        assert set(PAPER_TABLE4) == {q.query_id for q in TABLE3_QUERIES}
        for row in PAPER_TABLE4.values():
            assert set(row) == {"TRAD", "BASIC_EXT", "FULL_EXT",
                                "FULL_INF"}
