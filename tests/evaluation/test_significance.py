"""Tests for significance testing."""

import pytest

from repro.errors import EvaluationError
from repro.evaluation.significance import (compare_systems,
                                           paired_bootstrap_test,
                                           paired_randomization_test)


class TestRandomizationTest:
    def test_obvious_difference_is_significant(self):
        a = [0.0] * 10
        b = [1.0] * 10
        result = paired_randomization_test(a, b, iterations=2000)
        assert result.mean_difference == pytest.approx(1.0)
        # with constant differences every flip of all-10 signs is
        # needed to reach |observed|; p ≈ 2/2^10
        assert result.p_value < 0.05
        assert result.significant()

    def test_identical_systems_not_significant(self):
        scores = [0.3, 0.5, 0.7, 0.2, 0.9]
        result = paired_randomization_test(scores, scores,
                                           iterations=1000)
        assert result.mean_difference == 0.0
        assert result.p_value == 1.0
        assert not result.significant()

    def test_noisy_small_difference_not_significant(self):
        a = [0.50, 0.40, 0.60, 0.45, 0.55]
        b = [0.52, 0.38, 0.61, 0.44, 0.57]
        result = paired_randomization_test(a, b, iterations=2000)
        assert not result.significant(alpha=0.01)

    def test_deterministic_for_seed(self):
        a = [0.1, 0.5, 0.3]
        b = [0.2, 0.7, 0.4]
        first = paired_randomization_test(a, b, seed=7)
        second = paired_randomization_test(a, b, seed=7)
        assert first == second

    def test_length_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            paired_randomization_test([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            paired_randomization_test([], [])


class TestBootstrapTest:
    def test_consistent_improvement_significant(self):
        a = [0.1, 0.2, 0.15, 0.3, 0.25, 0.1, 0.2, 0.3]
        b = [0.8, 0.9, 0.85, 0.9, 0.95, 0.8, 0.9, 0.85]
        result = paired_bootstrap_test(a, b, iterations=2000)
        assert result.p_value < 0.01

    def test_sign_symmetric(self):
        a = [0.1, 0.2, 0.15, 0.3]
        b = [0.8, 0.9, 0.85, 0.9]
        forward = paired_bootstrap_test(a, b, iterations=2000, seed=3)
        backward = paired_bootstrap_test(b, a, iterations=2000, seed=3)
        assert forward.mean_difference \
            == pytest.approx(-backward.mean_difference)


class TestCompareSystems:
    def test_full_inf_beats_trad_significantly(self, harness):
        """The headline claim survives a proper significance test."""
        table = harness.table4()
        result = compare_systems(table, "TRAD", "FULL_INF",
                                 iterations=5000)
        assert result.mean_difference > 0.5
        assert result.significant(alpha=0.01)

    def test_basic_vs_full_ext_direction(self, harness):
        table = harness.table4()
        result = compare_systems(table, "BASIC_EXT", "FULL_EXT")
        assert result.mean_difference > 0    # FULL_EXT is the better
