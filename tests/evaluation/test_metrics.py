"""Tests for retrieval metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.evaluation import (average_precision, f1_score,
                              mean_average_precision, precision, recall,
                              reciprocal_rank)


class TestPrecisionRecall:
    def test_perfect_ranking(self):
        assert precision(["a", "b"], {"a", "b"}) == 1.0
        assert recall(["a", "b"], {"a", "b"}) == 1.0

    def test_half_relevant(self):
        assert precision(["a", "x"], {"a", "b"}) == 0.5
        assert recall(["a", "x"], {"a", "b"}) == 0.5

    def test_empty_ranking(self):
        assert precision([], {"a"}) == 0.0
        assert recall([], {"a"}) == 0.0

    def test_empty_relevant_set(self):
        assert recall(["a"], set()) == 0.0
        assert average_precision(["a"], set()) == 0.0

    def test_precision_at_k(self):
        assert precision(["a", "x", "b"], {"a", "b"}, at=1) == 1.0
        assert precision(["a", "x", "b"], {"a", "b"}, at=2) == 0.5

    def test_f1(self):
        # P = 1/2, R = 1/2 → F1 = 1/2
        assert f1_score(["a", "x"], {"a", "b"}) == pytest.approx(0.5)

    def test_f1_zero_when_nothing_found(self):
        assert f1_score(["x"], {"a"}) == 0.0


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision(["a", "b", "c"], {"a", "b", "c"}) == 1.0

    def test_relevant_at_bottom(self):
        # one relevant doc at rank 3 of 3 → AP = 1/3
        assert average_precision(["x", "y", "a"], {"a"}) \
            == pytest.approx(1 / 3)

    def test_interleaved(self):
        # relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2
        assert average_precision(["a", "x", "b"], {"a", "b"}) \
            == pytest.approx((1.0 + 2 / 3) / 2)

    def test_unretrieved_relevant_counts_against(self):
        # 1 of 2 relevant retrieved at rank 1 → AP = (1/1)/2
        assert average_precision(["a"], {"a", "b"}) == pytest.approx(0.5)

    def test_resolver_maps_keys(self):
        resolve = {"doc1": "a", "doc2": None, "doc3": "b"}.get
        ap = average_precision(["doc1", "doc2", "doc3"], {"a", "b"},
                               resolve)
        assert ap == pytest.approx((1.0 + 2 / 3) / 2)

    def test_duplicates_skipped_not_penalized(self):
        # second retrieval of "a" occupies no rank position
        resolve = {"d1": "a", "d2": "a", "d3": "b"}.get
        ap = average_precision(["d1", "d2", "d3"], {"a", "b"}, resolve)
        assert ap == pytest.approx(1.0)

    @given(st.lists(st.sampled_from("abcdefgh"), unique=True,
                    max_size=8),
           st.sets(st.sampled_from("abcdefgh"), max_size=8))
    def test_bounded_zero_one(self, ranking, relevant):
        ap = average_precision(ranking, relevant)
        assert 0.0 <= ap <= 1.0

    @given(st.sets(st.sampled_from("abcdefgh"), min_size=1, max_size=8))
    def test_perfect_ranking_is_one(self, relevant):
        assert average_precision(sorted(relevant), relevant) == 1.0

    @given(st.lists(st.sampled_from("abcd"), unique=True, min_size=1,
                    max_size=4),
           st.lists(st.sampled_from("wxyz"), unique=True, max_size=4))
    def test_prepending_junk_never_helps(self, relevant_docs, junk):
        relevant = set(relevant_docs)
        clean = average_precision(relevant_docs, relevant)
        polluted = average_precision(junk + relevant_docs, relevant)
        assert polluted <= clean


class TestOtherMetrics:
    def test_reciprocal_rank(self):
        assert reciprocal_rank(["x", "a"], {"a"}) == 0.5
        assert reciprocal_rank(["a"], {"a"}) == 1.0
        assert reciprocal_rank(["x"], {"a"}) == 0.0

    def test_map(self):
        assert mean_average_precision([1.0, 0.5]) == 0.75
        assert mean_average_precision([]) == 0.0
