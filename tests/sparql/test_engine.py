"""Tests for SPARQL evaluation."""

import pytest

from repro.rdf import Graph, Literal, Namespace, RDF
from repro.sparql import ask, construct, query

EX = Namespace("http://example.org/ns#")


@pytest.fixture
def graph():
    g = Graph()
    g.namespace_manager.bind("ex", EX)
    for name, minute in (("goal1", 10), ("goal2", 43), ("goal3", 88)):
        g.add((EX.term(name), RDF.type, EX.Goal))
        g.add((EX.term(name), EX.minute, Literal(minute)))
    g.add((EX.goal1, EX.scorer, EX.messi))
    g.add((EX.goal2, EX.scorer, EX.eto))
    g.add((EX.goal3, EX.scorer, EX.messi))
    g.add((EX.messi, EX.name, Literal("Lionel Messi")))
    g.add((EX.pass1, RDF.type, EX.Pass))
    return g


class TestSelect:
    def test_single_pattern(self, graph):
        rows = query(graph, "SELECT ?g WHERE { ?g a ex:Goal }")
        assert len(rows) == 3

    def test_join(self, graph):
        rows = query(graph,
                     "SELECT ?g WHERE { ?g a ex:Goal . "
                     "?g ex:scorer ex:messi }")
        assert {row["g"] for row in rows} == {EX.goal1, EX.goal3}

    def test_projection_order(self, graph):
        rows = query(graph,
                     "SELECT ?m ?g WHERE { ?g ex:minute ?m }")
        for row in rows:
            assert row[0] == row["m"]
            assert row[1] == row["g"]

    def test_filter_comparison(self, graph):
        rows = query(graph,
                     "SELECT ?g WHERE { ?g ex:minute ?m "
                     "FILTER (?m > 40) }")
        assert {row["g"] for row in rows} == {EX.goal2, EX.goal3}

    def test_filter_regex(self, graph):
        rows = query(graph,
                     'SELECT ?p WHERE { ?p ex:name ?n '
                     'FILTER (REGEX(?n, "messi", "i")) }')
        assert rows.column("p") == [EX.messi]

    def test_order_by(self, graph):
        rows = query(graph,
                     "SELECT ?g ?m WHERE { ?g ex:minute ?m } ORDER BY ?m")
        minutes = [row["m"].to_python() for row in rows]
        assert minutes == sorted(minutes)

    def test_order_by_desc(self, graph):
        rows = query(graph,
                     "SELECT ?m WHERE { ?g ex:minute ?m } "
                     "ORDER BY DESC(?m)")
        minutes = [row["m"].to_python() for row in rows]
        assert minutes == sorted(minutes, reverse=True)

    def test_limit_offset(self, graph):
        rows = query(graph,
                     "SELECT ?m WHERE { ?g ex:minute ?m } "
                     "ORDER BY ?m LIMIT 1 OFFSET 1")
        assert [row["m"].to_python() for row in rows] == [43]

    def test_distinct(self, graph):
        rows = query(graph,
                     "SELECT DISTINCT ?s WHERE { ?g ex:scorer ?s }")
        assert len(rows) == 2

    def test_optional_binds_when_present(self, graph):
        rows = query(graph,
                     "SELECT ?s ?n WHERE { ?g ex:scorer ?s "
                     "OPTIONAL { ?s ex:name ?n } }")
        by_scorer = {row["s"]: row["n"] for row in rows}
        assert by_scorer[EX.messi] == Literal("Lionel Messi")
        assert by_scorer[EX.eto] is None

    def test_no_results(self, graph):
        rows = query(graph, "SELECT ?x WHERE { ?x a ex:Corner }")
        assert len(rows) == 0
        assert not rows

    def test_shared_variable_must_corefer(self, graph):
        # ?x used in both subject and object positions must be the
        # same binding; no goal scores itself.
        rows = query(graph, "SELECT ?x WHERE { ?x ex:scorer ?x }")
        assert len(rows) == 0


class TestUnion:
    def test_union_concatenates_branches(self, graph):
        rows = query(graph,
                     "SELECT ?x WHERE { { ?x a ex:Goal } "
                     "UNION { ?x a ex:Pass } }")
        assert len(rows) == 4

    def test_union_joins_with_surrounding_triples(self, graph):
        rows = query(graph,
                     "SELECT ?g WHERE { ?g ex:minute ?m "
                     "{ ?g ex:scorer ex:messi } "
                     "UNION { ?g ex:scorer ex:eto } }")
        assert len(rows) == 3

    def test_three_way_union(self, graph):
        rows = query(graph,
                     "SELECT ?x WHERE { { ?x a ex:Goal } "
                     "UNION { ?x a ex:Pass } "
                     "UNION { ?x ex:name ?n } }")
        assert len(rows) == 5

    def test_union_branch_filters_apply(self, graph):
        rows = query(graph,
                     "SELECT ?g WHERE { "
                     "{ ?g ex:minute ?m FILTER (?m > 80) } "
                     "UNION { ?g ex:minute ?m FILTER (?m < 20) } }")
        assert {str(row["g"]) for row in rows} \
            == {str(EX.goal1), str(EX.goal3)}

    def test_lone_group_without_union_rejected(self, graph):
        import pytest as _pytest
        from repro.errors import ParseError
        with _pytest.raises(ParseError):
            query(graph, "SELECT ?x WHERE { { ?x a ex:Goal } }")


class TestAsk:
    def test_true(self, graph):
        assert ask(graph, "ASK { ex:goal1 a ex:Goal }") is True

    def test_false(self, graph):
        assert ask(graph, "ASK { ex:goal1 a ex:Pass }") is False

    def test_mixing_apis_raises(self, graph):
        with pytest.raises(TypeError):
            query(graph, "ASK { ?s ?p ?o }")
        with pytest.raises(TypeError):
            ask(graph, "SELECT ?s WHERE { ?s ?p ?o }")


class TestConstruct:
    def test_builds_derived_triples(self, graph):
        out = construct(graph,
                        "CONSTRUCT { ?p ex:scored ?g } "
                        "WHERE { ?g a ex:Goal . ?g ex:scorer ?p }")
        assert len(out) == 3
        assert (EX.messi, EX.scored, EX.goal1) in out

    def test_multi_triple_template(self, graph):
        out = construct(graph,
                        "CONSTRUCT { ?p a ex:Scorer . "
                        "?p ex:scored ?g } "
                        "WHERE { ?g ex:scorer ?p }")
        assert (EX.messi, RDF.type, EX.Scorer) in out
        assert len(list(out.subjects(RDF.type, EX.Scorer))) == 2

    def test_constants_in_template(self, graph):
        out = construct(graph,
                        "CONSTRUCT { ex:report ex:mentions ?p } "
                        "WHERE { ?g ex:scorer ?p }")
        assert (EX.report, EX.mentions, EX.messi) in out

    def test_unbound_optional_var_skips_triple(self, graph):
        out = construct(graph,
                        "CONSTRUCT { ?s ex:alias ?n } WHERE { "
                        "?g ex:scorer ?s OPTIONAL { ?s ex:name ?n } }")
        # only messi has a name; eto's triple is skipped
        assert len(out) == 1
        assert (EX.messi, EX.alias,
                Literal("Lionel Messi")) in out

    def test_literal_subject_skipped(self, graph):
        out = construct(graph,
                        "CONSTRUCT { ?m ex:of ?g } "
                        "WHERE { ?g ex:minute ?m }")
        assert len(out) == 0

    def test_empty_template_rejected(self, graph):
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            construct(graph, "CONSTRUCT { } WHERE { ?s ?p ?o }")

    def test_wrong_api_raises(self, graph):
        with pytest.raises(TypeError):
            construct(graph, "SELECT ?s WHERE { ?s ?p ?o }")
        with pytest.raises(TypeError):
            query(graph,
                  "CONSTRUCT { ?s ex:x ?o } WHERE { ?s ex:scorer ?o }")

    def test_rule_like_construct_over_match_model(self, graph):
        """CONSTRUCT can express rule-style derivations — an
        alternative surface for the Fig. 6 pattern."""
        out = construct(graph,
                        "CONSTRUCT { ?g ex:lateGoal ex:true } "
                        "WHERE { ?g ex:minute ?m FILTER (?m > 80) }")
        assert (EX.goal3, EX.lateGoal, EX.true) in out
        assert len(out) == 1


class TestRowApi:
    def test_attribute_access(self, graph):
        rows = query(graph, "SELECT ?g WHERE { ?g a ex:Goal }")
        assert rows[0].g == rows[0]["g"]

    def test_asdict(self, graph):
        rows = query(graph, "SELECT ?g ?m WHERE { ?g ex:minute ?m }")
        d = rows[0].asdict()
        assert set(d) == {"g", "m"}

    def test_unknown_variable_raises(self, graph):
        rows = query(graph, "SELECT ?g WHERE { ?g a ex:Goal }")
        with pytest.raises(KeyError):
            rows[0]["nope"]
