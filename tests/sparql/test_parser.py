"""Tests for the SPARQL lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.rdf import RDF, Literal, URIRef, Variable
from repro.sparql.ast import (AskQuery, BoundCall, Comparison, LogicalAnd,
                              LogicalNot, LogicalOr, RegexCall, SelectQuery)
from repro.sparql.lexer import tokenize
from repro.sparql.parser import parse_query


class TestLexer:
    def test_basic_kinds(self):
        tokens = tokenize('SELECT ?x WHERE { ?x <http://e.org/p> "v" }')
        kinds = [t.kind for t in tokens]
        assert kinds == ["KEYWORD", "VAR", "KEYWORD", "OP", "VAR", "IRI",
                         "STRING", "OP", "EOF"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT # a comment\n ?x")
        assert [t.kind for t in tokens] == ["KEYWORD", "VAR", "EOF"]

    def test_pname(self):
        tokens = tokenize("pre:Goal")
        assert tokens[0].kind == "PNAME"

    def test_line_tracking(self):
        tokens = tokenize("SELECT\n?x")
        assert tokens[1].line == 2

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @")


class TestSelectParsing:
    def test_simple_select(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s <http://e.org/p> ?o }")
        assert isinstance(query, SelectQuery)
        assert query.variables == [Variable("s")]
        assert len(query.where.triples) == 1

    def test_select_star(self):
        query = parse_query("SELECT * WHERE { ?s ?p ?o }")
        assert query.variables == []
        assert set(query.projection) == {Variable("s"), Variable("p"),
                                         Variable("o")}

    def test_distinct(self):
        query = parse_query("SELECT DISTINCT ?s WHERE { ?s ?p ?o }")
        assert query.distinct is True

    def test_prefix_resolution(self):
        query = parse_query(
            "PREFIX ex: <http://e.org/> "
            "SELECT ?s WHERE { ?s a ex:Goal }")
        pattern = query.where.triples[0]
        assert pattern.predicate == RDF.type
        assert pattern.obj == URIRef("http://e.org/Goal")

    def test_semicolon_shares_subject(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s <http://e.org/p> ?a ; "
            "<http://e.org/q> ?b . }")
        subjects = {t.subject for t in query.where.triples}
        assert subjects == {Variable("s")}
        assert len(query.where.triples) == 2

    def test_comma_shares_predicate(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s <http://e.org/p> ?a , ?b }")
        assert len(query.where.triples) == 2
        predicates = {t.predicate for t in query.where.triples}
        assert len(predicates) == 1

    def test_numeric_literal(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s <http://e.org/minute> 10 }")
        assert query.where.triples[0].obj == Literal(10)

    def test_order_limit_offset(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) "
            "LIMIT 5 OFFSET 2")
        assert query.order_by[0].descending is True
        assert query.limit == 5
        assert query.offset == 2

    def test_where_keyword_optional(self):
        query = parse_query("SELECT ?s { ?s ?p ?o }")
        assert len(query.where.triples) == 1

    def test_optional_group(self):
        query = parse_query(
            "SELECT ?s ?n WHERE { ?s ?p ?o "
            "OPTIONAL { ?s <http://e.org/name> ?n } }")
        assert len(query.where.optionals) == 1


class TestFilterParsing:
    def test_comparison(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s <http://e.org/m> ?m "
            "FILTER (?m > 45) }")
        expr = query.where.filters[0].expression
        assert isinstance(expr, Comparison)
        assert expr.operator == ">"

    def test_logical_combination(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s ?p ?o "
            "FILTER (?o > 1 && ?o < 9 || !BOUND(?s)) }")
        expr = query.where.filters[0].expression
        assert isinstance(expr, LogicalOr)
        assert isinstance(expr.left, LogicalAnd)
        assert isinstance(expr.right, LogicalNot)
        assert isinstance(expr.right.operand, BoundCall)

    def test_regex(self):
        query = parse_query(
            'SELECT ?s WHERE { ?s ?p ?o FILTER (REGEX(?o, "mes", "i")) }')
        expr = query.where.filters[0].expression
        assert isinstance(expr, RegexCall)
        assert expr.pattern == "mes"
        assert expr.flags == "i"


class TestAskParsing:
    def test_ask(self):
        query = parse_query("ASK { ?s ?p ?o }")
        assert isinstance(query, AskQuery)


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "SELECT WHERE { ?s ?p ?o }",
        "SELECT ?s WHERE { ?s ?p }",
        "SELECT ?s WHERE { ?s ?p ?o ",
        "FOO ?s WHERE { ?s ?p ?o }",
        "SELECT ?s WHERE { ?s ?p ?o } trailing",
        "SELECT ?s WHERE { ?s pre:Goal ?o }",   # unbound prefix
        "SELECT ?s WHERE { ?s ?p ?o } LIMIT x",
    ])
    def test_malformed_queries_raise(self, bad):
        with pytest.raises(Exception):
            parse_query(bad)
