"""Shared fixtures.

Expensive artifacts (the standard corpus, the full pipeline run) are
session-scoped: they are deterministic, read-only for tests, and take
seconds to build.
"""

from __future__ import annotations

import pytest

from repro.core import SemanticRetrievalPipeline
from repro.evaluation import EvaluationHarness
from repro.ontology import soccer_ontology
from repro.reasoning import Reasoner
from repro.reasoning.rules import soccer_rules
from repro.soccer import standard_corpus


@pytest.fixture(scope="session")
def ontology():
    return soccer_ontology()


@pytest.fixture(scope="session")
def corpus():
    """The paper's standard corpus: 10 matches, 1182 narrations."""
    return standard_corpus()


@pytest.fixture(scope="session")
def small_corpus():
    """A 2-match corpus for tests that only need pipeline mechanics."""
    from repro.soccer.names import FIXTURES
    return standard_corpus(fixtures=FIXTURES[:2], total_narrations=240)


@pytest.fixture(scope="session")
def pipeline():
    return SemanticRetrievalPipeline()


@pytest.fixture(scope="session")
def pipeline_result(pipeline, corpus):
    """The full Fig. 1 pipeline over the standard corpus."""
    return pipeline.run(corpus.crawled)


@pytest.fixture(scope="session")
def harness(corpus, pipeline_result):
    return EvaluationHarness(corpus, pipeline_result)


@pytest.fixture(scope="session")
def reasoner(ontology):
    return Reasoner(ontology, soccer_rules())
