"""Fig. 1 — the overall system flow, timed stage by stage.

The figure is a diagram, not a measurement; what we regenerate is a
stage-timing profile of every box in it (crawl → TRAD → populate →
BASIC_EXT → IE → FULL_EXT → reason → FULL_INF), proving the whole
pipeline runs end-to-end, plus an end-to-end pipeline benchmark.
"""

from __future__ import annotations

import time

from repro.core import SemanticIndexer, SemanticRetrievalPipeline
from repro.extraction import InformationExtractor
from repro.population import OntologyPopulator
from benchmarks.conftest import write_result


def test_fig1_stage_profile(pipeline, corpus, results_dir, benchmark):
    populator = OntologyPopulator(pipeline.ontology)
    indexer = SemanticIndexer(pipeline.ontology,
                              pipeline.reasoner.taxonomy)

    def profile():
        timings = {}

        def stage(name, fn):
            started = time.perf_counter()
            value = fn()
            timings[name] = time.perf_counter() - started
            return value

        stage("2. TRAD index",
              lambda: indexer.build_traditional(corpus.crawled))
        basic = stage("3. initial OWL models (population)",
                      lambda: [populator.populate_basic(c)
                               for c in corpus.crawled])
        stage("4. BASIC_EXT index",
              lambda: indexer.build_semantic(basic, "BASIC_EXT"))
        extracted = stage("5. information extraction",
                          lambda: [InformationExtractor(c).extract_all()
                                   for c in corpus.crawled])
        full = stage("5b. extracted OWL models",
                     lambda: [populator.populate_full(c, e)
                              for c, e in zip(corpus.crawled, extracted)])
        stage("6. FULL_EXT index",
              lambda: indexer.build_semantic(full, "FULL_EXT"))
        inferred = stage("7. reasoning + rules (per match, offline)",
                         lambda: [pipeline.reasoner.infer(
                             m, check_consistency=False).abox
                             for m in full])
        stage("8. FULL_INF index",
              lambda: indexer.build_semantic(inferred, "FULL_INF",
                                             inferred=True))
        return timings

    timings = benchmark.pedantic(profile, rounds=1, iterations=1)
    total = sum(timings.values())
    lines = ["Fig. 1 — pipeline stage profile "
             f"(10 matches, {corpus.narration_count} narrations)", ""]
    for name, seconds in timings.items():
        lines.append(f"{name:45} {seconds * 1000:9.1f} ms "
                     f"({seconds / total * 100:5.1f}%)")
    lines.append(f"{'TOTAL':45} {total * 1000:9.1f} ms")
    text = "\n".join(lines)
    write_result(results_dir, "fig1_stage_profile.txt", text)
    print("\n" + text)
    assert total < 60


def test_end_to_end_pipeline(corpus, benchmark):
    """Full Fig. 1 flow as one measurement."""
    def run():
        return SemanticRetrievalPipeline().run(corpus.crawled)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.index("FULL_INF").doc_count > 1000
