"""Fig. 6 — the Jena assist rule.

Runs the paper's printed rule verbatim through our parser and engine
on a hand-built match graph, and benchmarks the full soccer rule base
on one populated match model.
"""

from __future__ import annotations

from repro.extraction import InformationExtractor
from repro.population import OntologyPopulator
from repro.ontology import abox_to_graph
from repro.rdf import RDF, SOCCER, Graph, Literal, URIRef
from repro.reasoning.rules import (ASSIST_RULE_TEXT, RuleEngine,
                                   parse_rules, soccer_namespaces,
                                   soccer_rules)
from benchmarks.conftest import write_result


def _assist_scenario() -> Graph:
    g = Graph()
    match = URIRef(SOCCER + "m")
    goal = URIRef(SOCCER + "goal")
    pass_ = URIRef(SOCCER + "pass")
    passer = URIRef(SOCCER + "xavi")
    scorer = URIRef(SOCCER + "messi")
    g.add((goal, RDF.type, SOCCER.Goal))
    g.add((goal, SOCCER.scorerPlayer, scorer))
    g.add((goal, SOCCER.inMatch, match))
    g.add((goal, SOCCER.inMinute, Literal(10)))
    g.add((pass_, RDF.type, SOCCER.Pass))
    g.add((pass_, SOCCER.passingPlayer, passer))
    g.add((pass_, SOCCER.passReceiver, scorer))
    g.add((pass_, SOCCER.inMatch, match))
    g.add((pass_, SOCCER.inMinute, Literal(10)))
    return g


def test_fig6_assist_rule_verbatim(results_dir, benchmark):
    rules = parse_rules(ASSIST_RULE_TEXT, soccer_namespaces())

    def run():
        graph = _assist_scenario()
        record = RuleEngine(rules).run(graph)
        return graph, record

    graph, record = benchmark(run)
    assists = list(graph.subjects(RDF.type, SOCCER.Assist))
    assert len(assists) == 1
    [assist] = assists
    assert (assist, SOCCER.passingPlayer,
            URIRef(SOCCER + "xavi")) in graph

    text = ("Fig. 6 — the assist rule, executed verbatim\n\n"
            + ASSIST_RULE_TEXT.strip() + "\n\n"
            + f"fired in {record.iterations} iteration(s), added "
            f"{record.triples_added} triples; inferred assist: "
            f"{assist.n3()}")
    write_result(results_dir, "fig6_assist_rule.txt", text)
    print("\n" + text)


def test_full_rule_base_on_match(pipeline, corpus, benchmark):
    """Domain rules + schema rules to fixpoint over one real populated
    match model (the per-match offline reasoning of §3.5)."""
    crawled = corpus.crawled[1]
    populator = OntologyPopulator(pipeline.ontology)
    extractor = InformationExtractor(crawled)
    model = populator.populate_full(crawled, extractor.extract_all())

    def infer():
        return pipeline.reasoner.infer(model, check_consistency=False)

    result = benchmark(infer)
    assert result.firing.triples_added > 100
    assert list(result.abox.individuals(SOCCER.Assist)) or True


def test_rule_parse_speed(benchmark):
    """Cost of parsing the entire soccer rule base from text."""
    from repro.reasoning.rules import SOCCER_RULES_TEXT

    rules = benchmark(parse_rules, SOCCER_RULES_TEXT,
                      soccer_namespaces())
    assert len(rules) == len(soccer_rules())
