"""Table 4 — evaluation results over the four-index ladder.

Regenerates the paper's main table (mean average precision of the ten
Table 3 queries over TRAD / BASIC_EXT / FULL_EXT / FULL_INF), prints
it next to the published percentages, writes it to
``benchmarks/results/table4.txt`` and benchmarks the keyword query
latency on the final index.
"""

from __future__ import annotations

from repro.core import IndexName
from repro.evaluation import (PAPER_TABLE4, TABLE3_QUERIES,
                              compare_systems, render_table)
from benchmarks.conftest import write_result


def _comparison_text(table) -> str:
    lines = [render_table(table, "Table 4 — reproduced"), "",
             "Paper's published percentages for comparison:",
             "Queries  " + "  ".join(f"{s:>9}" for s in table.systems)]
    for query in TABLE3_QUERIES:
        row = PAPER_TABLE4[query.query_id]
        lines.append(f"{query.query_id:7}  "
                     + "  ".join(f"{row[s]:>8.1f}%" for s in table.systems))
    lines.append("")
    lines.append("Paired randomization tests (10 queries):")
    for system_a, system_b in (("TRAD", "FULL_INF"),
                               ("TRAD", "BASIC_EXT"),
                               ("FULL_EXT", "FULL_INF")):
        result = compare_systems(table, system_a, system_b,
                                 iterations=5000)
        verdict = ("significant at α=0.05"
                   if result.significant() else "not significant")
        lines.append(f"  {system_b} − {system_a}: "
                     f"ΔMAP={result.mean_difference:+.3f}, "
                     f"p={result.p_value:.4f} ({verdict})")
    return "\n".join(lines)


def test_table4_regeneration(harness, results_dir, benchmark):
    table = benchmark.pedantic(harness.table4, rounds=1, iterations=1)
    text = _comparison_text(table)
    write_result(results_dir, "table4.txt", text)
    print("\n" + text)

    # shape assertions (the acceptance criteria)
    def ap(query_id, system):
        return table.get(query_id, system).average_precision

    assert ap("Q-1", "TRAD") < 0.1 and ap("Q-1", "FULL_INF") > 0.95
    assert ap("Q-4", "FULL_EXT") == 0.0 and ap("Q-4", "FULL_INF") > 0.95
    assert ap("Q-10", "TRAD") < 0.05
    assert 0.05 < ap("Q-10", "FULL_EXT") < 0.7
    assert ap("Q-10", "FULL_INF") > 0.9
    maps = [table.mean_ap(s) for s in table.systems]
    assert maps == sorted(maps)


def test_query_latency_full_inf(pipeline_result, benchmark):
    """The §2 'instant query answering' claim: keyword search over the
    semantic index answers in milliseconds."""
    engine = pipeline_result.engine(IndexName.FULL_INF)

    def run_all_queries():
        for query in TABLE3_QUERIES:
            engine.search(query.keywords, limit=20)

    benchmark(run_all_queries)


def test_query_latency_trad(pipeline_result, benchmark):
    """Baseline latency on the traditional index."""
    engine = pipeline_result.engine(IndexName.TRAD)

    def run_all_queries():
        for query in TABLE3_QUERIES:
            engine.search(query.keywords, limit=20)

    benchmark(run_all_queries)
