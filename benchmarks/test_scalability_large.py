"""Large-corpus scaling: 4× the paper's corpus.

Grows a round-robin corpus to 40 matches (~4,700 narrations) and
checks that the per-unit costs the paper's architecture promises stay
flat: per-match inference time, per-query latency, per-narration IE
time.
"""

from __future__ import annotations

import time

from repro.core import IndexName, SemanticRetrievalPipeline
from repro.soccer import standard_corpus
from repro.soccer.names import round_robin_fixtures
from benchmarks.conftest import write_result

_QUERIES = ["goal", "punishment", "save goalkeeper barcelona",
            "henry negative moves", "shoot defence players"]


def test_forty_match_corpus_end_to_end(results_dir, benchmark):
    def build_and_measure():
        rows = []
        for count in (10, 20, 40):
            corpus = standard_corpus(
                fixtures=round_robin_fixtures(count),
                total_narrations=118 * count)
            pipeline = SemanticRetrievalPipeline()
            started = time.perf_counter()
            result = pipeline.run(corpus.crawled)
            build_seconds = time.perf_counter() - started
            engine = result.engine(IndexName.FULL_INF)
            for text in _QUERIES:          # warm up
                engine.search(text, limit=20)
            started = time.perf_counter()
            for text in _QUERIES:
                engine.search(text, limit=20)
            query_seconds = (time.perf_counter() - started) / len(_QUERIES)
            per_match_inference = (sum(result.inference_seconds)
                                   / len(result.inference_seconds))
            rows.append((count, corpus.narration_count, build_seconds,
                         per_match_inference, query_seconds))
        return rows

    rows = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    lines = ["Large-corpus scaling (round-robin fixtures)", "",
             f"{'matches':>8} {'narr.':>7} {'build s':>8} "
             f"{'infer ms/match':>15} {'query ms':>9}"]
    for count, narrations, build, infer, query in rows:
        lines.append(f"{count:>8} {narrations:>7} {build:>8.1f} "
                     f"{infer * 1000:>15.1f} {query * 1000:>9.2f}")
    text = "\n".join(lines)
    write_result(results_dir, "scalability_large.txt", text)
    print("\n" + text)

    # per-match inference flat across a 4x corpus growth
    assert rows[-1][3] < rows[0][3] * 1.75
    # total build time roughly linear (not quadratic): 4x matches
    # must cost clearly less than 8x the 10-match build
    assert rows[-1][2] < rows[0][2] * 8
    # query latency grows sublinearly
    assert rows[-1][4] < rows[0][4] * 4
