"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures.
Regenerated artifacts are also written to ``benchmarks/results/`` so
the evidence survives the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import SemanticRetrievalPipeline
from repro.evaluation import EvaluationHarness
from repro.ontology import soccer_ontology
from repro.soccer import standard_corpus

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def ontology():
    return soccer_ontology()


@pytest.fixture(scope="session")
def corpus():
    return standard_corpus()


@pytest.fixture(scope="session")
def pipeline():
    return SemanticRetrievalPipeline()


@pytest.fixture(scope="session")
def pipeline_result(pipeline, corpus):
    return pipeline.run(corpus.crawled)


@pytest.fixture(scope="session")
def harness(corpus, pipeline_result):
    return EvaluationHarness(corpus, pipeline_result)


def write_result(results_dir: Path, name: str, content: str) -> None:
    (results_dir / name).write_text(content, encoding="utf-8")
