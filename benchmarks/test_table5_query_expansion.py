"""Table 5 — comparison with query expansion (§5).

Regenerates TRAD vs QUERY_EXP vs FULL_INF over the ten queries and
benchmarks the expansion overhead.
"""

from __future__ import annotations

from repro.evaluation import PAPER_TABLE5, TABLE3_QUERIES, render_table
from benchmarks.conftest import write_result


def test_table5_regeneration(harness, results_dir, benchmark):
    table = benchmark.pedantic(harness.table5, rounds=1, iterations=1)
    lines = [render_table(table, "Table 5 — reproduced", absolute=False),
             "", "Paper's published percentages for comparison:",
             "Queries  " + "  ".join(f"{s:>9}" for s in table.systems)]
    for query in TABLE3_QUERIES:
        row = PAPER_TABLE5[query.query_id]
        lines.append(f"{query.query_id:7}  "
                     + "  ".join(f"{row[s]:>8.1f}%" for s in table.systems))
    text = "\n".join(lines)
    write_result(results_dir, "table5.txt", text)
    print("\n" + text)

    def ap(query_id, system):
        return table.get(query_id, system).average_precision

    # expansion helps where expansions exist …
    assert ap("Q-1", "QUERY_EXP") > ap("Q-1", "TRAD")
    assert ap("Q-4", "QUERY_EXP") > ap("Q-4", "TRAD")
    # … but never beats semantic indexing …
    for query in TABLE3_QUERIES:
        assert ap(query.query_id, "QUERY_EXP") \
            <= ap(query.query_id, "FULL_INF") + 1e-9
    # … and sits between the two on average.
    assert table.mean_ap("TRAD") < table.mean_ap("QUERY_EXP") \
        < table.mean_ap("FULL_INF")


def test_expansion_overhead(pipeline_result, benchmark):
    """Expanded queries add terms; measure the latency cost."""
    engine = pipeline_result.expansion_engine

    def run_all():
        for query in TABLE3_QUERIES:
            engine.search(query.keywords, limit=20)

    benchmark(run_all)
