"""Tables 1 & 2 — the semantic index structure.

Regenerates an example index entry like the paper's Table 1 (a foul in
the extracted index) and Table 2 (the additional fields the inferred
index adds), and benchmarks index construction.
"""

from __future__ import annotations

from repro.core import F, IndexName, SemanticIndexer
from benchmarks.conftest import write_result

#: fields in the paper's Table 1 presentation order
_TABLE1_FIELDS = (F.EVENT, F.MATCH, F.TEAM1, F.TEAM2, F.DATE, F.MINUTE,
                  F.SUBJECT_PLAYER, F.SUBJECT_TEAM, F.OBJECT_PLAYER,
                  F.OBJECT_TEAM, F.NARRATION)

_TABLE2_FIELDS = (F.EVENT, F.SUBJECT_PLAYER_PROP, F.SUBJECT_TEAM,
                  F.OBJECT_PLAYER_PROP, F.OBJECT_TEAM, F.FROM_RULES)


def _find_foul_doc(index):
    for doc_id in range(index.doc_count):
        event = index.stored_value(doc_id, F.EVENT) or ""
        narration = index.stored_value(doc_id, F.NARRATION) or ""
        if "foul" in event and narration:
            return doc_id
    raise AssertionError("no foul document found")


def _render_entry(index, doc_id, fields) -> str:
    lines = [f"docNo {doc_id}", f"{'Field':18} Value",
             "-" * 60]
    for field_name in fields:
        value = index.stored_value(doc_id, field_name) or "-"
        lines.append(f"{field_name:18} {value}")
    return "\n".join(lines)


def test_table1_extracted_entry(pipeline_result, results_dir, benchmark):
    index = pipeline_result.index(IndexName.FULL_EXT)
    doc_id = benchmark.pedantic(_find_foul_doc, args=(index,), rounds=1,
                                iterations=1)
    text = ("Table 1 — example entry of the extracted index "
            "(FULL_EXT)\n\n" + _render_entry(index, doc_id,
                                             _TABLE1_FIELDS))
    write_result(results_dir, "table1_index_structure.txt", text)
    print("\n" + text)

    # Table 1's tell-tale details
    assert index.stored_value(doc_id, F.SUBJECT_PLAYER)    # filled
    assert index.stored_value(doc_id, F.SUBJECT_TEAM) is None   # "-"
    assert index.stored_value(doc_id, F.NARRATION)


def test_table2_inferred_entry(pipeline_result, results_dir, benchmark):
    index = pipeline_result.index(IndexName.FULL_INF)
    doc_id = benchmark.pedantic(_find_foul_doc, args=(index,), rounds=1,
                                iterations=1)
    text = ("Table 2 — additional information in the inferred index "
            "(FULL_INF)\n\n" + _render_entry(index, doc_id,
                                             _TABLE2_FIELDS))
    write_result(results_dir, "table2_inferred_fields.txt", text)
    print("\n" + text)

    event = index.stored_value(doc_id, F.EVENT)
    assert "negative event" in event and "foul" in event
    assert index.stored_value(doc_id, F.SUBJECT_PLAYER_PROP)
    assert index.stored_value(doc_id, F.SUBJECT_TEAM)       # via rules


def test_index_construction_speed(pipeline, corpus, benchmark):
    """Cost of building the extracted index over the populated models
    (steps 5-6 of §3.1)."""
    from repro.extraction import InformationExtractor
    models = []
    for crawled in corpus.crawled:
        extractor = InformationExtractor(crawled)
        models.append(pipeline.populator.populate_full(
            crawled, extractor.extract_all()))

    indexer = SemanticIndexer(pipeline.ontology,
                              pipeline.reasoner.taxonomy)
    result = benchmark(indexer.build_semantic, models, "bench")
    assert result.doc_count == corpus.narration_count
