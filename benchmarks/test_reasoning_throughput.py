"""Naive vs semi-naive offline reasoning (§3.5's cost center).

Runs both fixpoint strategies over a simulator corpus scaled to ~10×
the paper's size (100 matches vs the paper's 10; override with
``REASON_BENCH_MATCHES``, the CI smoke job uses 30) and emits
machine-readable ``benchmarks/results/BENCH_reason.json``.

Deliberately does NOT use the pytest-benchmark fixture so the CI smoke
job can run it with plain pytest.  Two properties are asserted inside
the benchmark itself:

* **parity** — for every match the two strategies must produce
  bit-identical inferred models: the same triples asserted in the same
  order (triple order feeds dict/set insertion order downstream, all
  the way to FULL_INF postings), the same deterministic ``makeTemp``
  nodes, and the same firing statistics;
* **speedup** — the semi-naive reasoning stages (rules + realize) must
  be ≥ 2× faster than naive over the whole corpus.  Timings are
  paired per match (naive then semi, back to back) so ambient noise —
  GC, scheduler, thermal shifts — hits both modes alike.
"""

from __future__ import annotations

import gc
import json
import os
import time

from repro.extraction import InformationExtractor
from repro.population import OntologyPopulator
from repro.soccer import standard_corpus
from repro.soccer.names import round_robin_fixtures
from benchmarks.conftest import write_result

PAPER_MATCHES = 10
TRIALS = 3
MIN_SPEEDUP = 2.0


def _scaled_models(pipeline, match_count):
    corpus = standard_corpus(fixtures=round_robin_fixtures(match_count),
                             total_narrations=118 * match_count)
    populator = OntologyPopulator(pipeline.ontology)
    models = []
    for crawled in corpus.crawled:
        extractor = InformationExtractor(crawled)
        models.append(populator.populate_full(
            crawled, extractor.extract_all()))
    return corpus, models


def _snapshot(abox):
    """Order-sensitive view of an inferred model (insertion order of
    individuals, types and property values all included)."""
    return [(individual.uri, sorted(individual.types),
             [(prop, list(values))
              for prop, values in individual.properties.items()])
            for individual in abox.individuals()]


def _assert_parity(naive_result, semi_result, match_index):
    context = f"match {match_index}"
    everything = (None, None, None)
    assert list(naive_result.graph.triples(everything)) \
        == list(semi_result.graph.triples(everything)), \
        f"{context}: inferred triple sequences diverge"
    assert _snapshot(naive_result.abox) == _snapshot(semi_result.abox), \
        f"{context}: inferred models diverge"
    assert naive_result.firing.firings_per_rule \
        == semi_result.firing.firings_per_rule, \
        f"{context}: firing counts diverge"
    assert naive_result.firing.iterations \
        == semi_result.firing.iterations, \
        f"{context}: iteration counts diverge"


def _mode_bucket():
    return {"reason_seconds": 0.0,
            "stage_seconds": {"rules": 0.0, "realize": 0.0},
            "iterations": 0, "matches_attempted": 0,
            "rule_firings": 0, "triples_inferred": 0,
            "rules_skipped": 0, "delta_triples": 0}


def _tally(bucket, stats):
    bucket["reason_seconds"] += (stats.seconds["rules"]
                                 + stats.seconds["realize"])
    bucket["stage_seconds"]["rules"] += stats.seconds["rules"]
    bucket["stage_seconds"]["realize"] += stats.seconds["realize"]
    bucket["iterations"] += stats.iterations
    bucket["matches_attempted"] += stats.matches_attempted
    bucket["rule_firings"] += stats.firings_total
    bucket["triples_inferred"] += stats.triples_added
    bucket["rules_skipped"] += stats.rules_skipped
    bucket["delta_triples"] += stats.delta_total


def test_semi_naive_vs_naive_reasoning(pipeline, results_dir):
    match_count = int(os.environ.get("REASON_BENCH_MATCHES",
                                     10 * PAPER_MATCHES))
    corpus, models = _scaled_models(pipeline, match_count)
    reasoner = pipeline.reasoner

    # parity: every model, both strategies, bit-identical output
    for index, model in enumerate(models):
        naive_result = reasoner.infer(model, check_consistency=False,
                                      naive=True)
        semi_result = reasoner.infer(model, check_consistency=False)
        _assert_parity(naive_result, semi_result, index)

    # timing: per-match naive/semi pairs, summed over TRIALS rounds
    naive = _mode_bucket()
    semi = _mode_bucket()
    started = time.perf_counter()
    gc.disable()
    try:
        for _ in range(TRIALS):
            for model in models:
                result = reasoner.infer(model, check_consistency=False,
                                        naive=True)
                _tally(naive, result.stats)
                result = reasoner.infer(model, check_consistency=False)
                _tally(semi, result.stats)
    finally:
        gc.enable()
    wall_seconds = time.perf_counter() - started

    speedup = naive["reason_seconds"] / semi["reason_seconds"]
    document = {
        "corpus": {"matches": match_count,
                   "narrations": corpus.narration_count,
                   "scale_vs_paper": round(match_count / PAPER_MATCHES, 1),
                   "trials": TRIALS},
        "naive": naive,
        "semi_naive": semi,
        "speedup": round(speedup, 2),
        "parity": "bit-identical",
        "wall_seconds": round(wall_seconds, 2),
    }
    for bucket in (naive, semi):
        bucket["reason_seconds"] = round(bucket["reason_seconds"], 3)
        for stage in bucket["stage_seconds"]:
            bucket["stage_seconds"][stage] = round(
                bucket["stage_seconds"][stage], 3)
    write_result(results_dir, "BENCH_reason.json",
                 json.dumps(document, indent=2) + "\n")
    print("\n" + json.dumps(document, indent=2))

    # the delta engine must actually skip work ...
    assert semi["matches_attempted"] < naive["matches_attempted"]
    # ... and convert it into wall-clock
    assert speedup >= MIN_SPEEDUP, (
        f"semi-naive reasoning only {speedup:.2f}x faster than naive "
        f"(need >= {MIN_SPEEDUP}x)")
