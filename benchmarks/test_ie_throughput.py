"""Throughput benchmarks for the IE module and the analysis chain.

The paper's §3.3 motivation for template-based IE is avoiding heavy
NLP machinery ("they need heavy computational processes"); these
benchmarks quantify how cheap the template approach is.
"""

from __future__ import annotations

from repro.extraction import InformationExtractor, NamedEntityRecognizer
from repro.search.analysis import PorterStemmer, StandardAnalyzer
from benchmarks.conftest import write_result


def test_extraction_throughput(corpus, results_dir, benchmark):
    """Full-corpus IE: 1182 narrations through NER + both lexical
    levels."""
    def extract_everything():
        total = typed = 0
        for crawled in corpus.crawled:
            for event in InformationExtractor(crawled).extract_all():
                total += 1
                if not event.is_unknown:
                    typed += 1
        return total, typed

    total, typed = benchmark(extract_everything)
    assert total == 1182 and typed == 902
    stats = benchmark.stats.stats
    rate = total / stats.mean
    text = (f"IE throughput: {total} narrations "
            f"({typed} typed) in {stats.mean * 1000:.0f} ms "
            f"≈ {rate:,.0f} narrations/s")
    write_result(results_dir, "ie_throughput.txt", text)
    print("\n" + text)


def test_ner_tagging_speed(corpus, benchmark):
    """NER alone, amortized over one match's narrations."""
    crawled = corpus.crawled[0]
    ner = NamedEntityRecognizer(crawled)
    texts = [n.text for n in crawled.narrations]

    def tag_all():
        return [ner.tag(text) for text in texts]

    tagged = benchmark(tag_all)
    assert len(tagged) == len(texts)


def test_analyzer_throughput(corpus, benchmark):
    """The standard analysis chain over every narration."""
    analyzer = StandardAnalyzer()
    texts = [n.text for crawled in corpus.crawled
             for n in crawled.narrations]

    def analyze_all():
        return sum(len(analyzer.analyze(text)) for text in texts)

    tokens = benchmark(analyze_all)
    assert tokens > 5000


def test_stemmer_throughput(benchmark):
    """Raw Porter stemmer speed over a realistic vocabulary."""
    stemmer = PorterStemmer()
    words = ("scores misses saves punishment goalkeeper defensive "
             "challenged flagged delivered substitution possession "
             "brilliant dangerous attacking clearances interceptions "
             ).split() * 200

    def stem_all():
        return [stemmer.stem(word) for word in words]

    stems = benchmark(stem_all)
    assert len(stems) == len(words)
