"""Fig. 2 — the domain ontology class hierarchy.

Regenerates the full class tree (79 concepts) as text, checks the
published counts and benchmarks taxonomy construction.
"""

from __future__ import annotations

from typing import List

from repro.ontology import CLASS_COUNT, PROPERTY_COUNT
from repro.rdf import SOCCER
from repro.reasoning import Taxonomy
from benchmarks.conftest import write_result


def _render_tree(ontology) -> str:
    lines: List[str] = []

    def walk(uri, depth):
        lines.append("    " * depth + uri.local_name)
        for child in sorted(ontology.direct_subclasses(uri)):
            walk(child, depth + 1)

    for root in sorted(ontology.roots()):
        walk(root, 0)
    return "\n".join(lines)


def test_fig2_class_hierarchy(ontology, results_dir, benchmark):
    tree = benchmark.pedantic(_render_tree, args=(ontology,), rounds=1,
                              iterations=1)
    header = (f"Fig. 2 — domain ontology class hierarchy\n"
              f"{ontology.class_count} concepts, "
              f"{ontology.property_count} properties "
              f"(paper: {CLASS_COUNT} / {PROPERTY_COUNT})\n\n")
    write_result(results_dir, "fig2_class_hierarchy.txt", header + tree)
    print("\n" + header + tree)

    assert ontology.class_count == CLASS_COUNT
    assert ontology.property_count == PROPERTY_COUNT
    # multi-parent classes appear once per parent in the rendered tree
    assert tree.count("Goal") >= 2      # under Shoot and PositiveEvent


def test_taxonomy_construction_speed(ontology, benchmark):
    """Classification cost over the full 79-class / 95-property TBox."""
    taxonomy = benchmark(Taxonomy, ontology)
    assert taxonomy.is_subclass_of(SOCCER.LongPass, SOCCER.Event)
