"""Serving-scale load benchmark: the §1 "millions of users" claim.

Every earlier BENCH file measured the engine closed-loop — one caller
in a ``for`` loop, which can never show queueing.  This one drives
the keyword engine with the open-loop harness (``repro.loadgen``)
over a 2×2 matrix: {cache_friendly, cache_hostile} workload profiles
× {monolithic, segmented} backends — plus an **end-to-end service
row**: the segmented directory served over HTTP by ``repro.serve``
and driven through :class:`~repro.loadgen.http.HttpSearchClient`, so
the report separates engine latency from whole-service latency.
For each cell it reports exact
p50/p95/p99/max response and service latency (reservoir-backed
metrics histograms), offered vs. achieved throughput, and a
saturation sweep over geometrically stepped offered rates — plus an
in-benchmark **parity check**: every concurrent result must be
bit-identical to the single-threaded run of the same query, so a
number produced under load is a number you can trust.

Evidence lands in ``benchmarks/results/BENCH_serving.json``.
"""

from __future__ import annotations

import gc
import json
import time

import pytest

from repro.core import IndexName, KeywordSearchEngine
from repro.loadgen import (OpenLoopDriver, arrival_times,
                           build_workload, saturation_sweep)

from benchmarks.conftest import write_result

PROFILE_NAMES = ("cache_friendly", "cache_hostile")
LOAD_REQUESTS = 600
LOAD_RATE = 300.0
SWEEP_RATES = (200.0, 800.0, 3200.0, 6400.0)
# long enough that the highest-rate window spans ~100ms: achieved-QPS
# capacity estimates from a few tens of milliseconds are scheduler
# noise, not measurements
SWEEP_REQUESTS = 600
THREADS = 8
LIMIT = 10
SEED = 42

# Pre-optimisation numbers (same harness, same corpus, same container
# class) from the decode-once/worker-pool build — i.e. *before* the
# typed postings columns, batched block scoring and block-max pruning
# landed.  Kept hardcoded so every regeneration reports the
# improvement ratios alongside the fresh numbers.
BASELINE = {
    "monolithic": {
        "cache_friendly": {"p50": 0.0005, "p95": 0.0040,
                           "p99": 0.0691, "saturation_qps": 3199.75},
        "cache_hostile": {"p50": 0.0033, "p95": 0.0143,
                          "p99": 0.0244, "saturation_qps": 3179.47},
    },
    "segmented": {
        "cache_friendly": {"p50": 0.0006, "p95": 0.0035,
                           "p99": 0.0073, "saturation_qps": 3087.28},
        "cache_hostile": {"p50": 0.0036, "p95": 0.0120,
                          "p99": 0.0178, "saturation_qps": 3043.89},
    },
    "http_service": {
        "cache_friendly": {"p50": 0.0009, "p95": 0.0017,
                           "p99": 0.0028},
        "cache_hostile": {"p50": 0.0063, "p95": 0.0430,
                          "p99": 0.0724},
    },
}


@pytest.fixture(scope="session")
def segmented_pipeline_result(pipeline, corpus, tmp_path_factory):
    result = pipeline.run_segmented(
        corpus.crawled, tmp_path_factory.mktemp("bench_serving"),
        segment_size=2)
    yield result
    result.close()


def fresh_engine(result) -> KeywordSearchEngine:
    # a new engine per measurement: its result cache starts cold, so
    # cache_friendly vs cache_hostile numbers measure the profile,
    # not leftovers of the previous cell
    return KeywordSearchEngine(result.index(IndexName.FULL_INF))


def parity_check(engine, workload) -> int:
    """Every unique query answered serially first, then the whole
    workload replayed at 8 threads — each concurrent result must be
    bit-identical (doc keys *and* scores) to its serial oracle.
    Returns the number of requests checked."""
    oracle = {query: [(hit.doc_key, hit.score)
                      for hit in engine.search(query, limit=LIMIT)]
              for query in workload.unique_queries()}
    load = OpenLoopDriver(
        engine.search, workload.queries,
        arrival_times("fixed", 2000.0, len(workload)),
        threads=THREADS, limit=LIMIT, capture_results=True,
        name="parity").run()
    assert load.errors == 0, load.error_samples
    for record in load.records:
        got = [(hit.doc_key, hit.score) for hit in record.result]
        assert got == oracle[record.query], \
            f"concurrent result diverged for {record.query!r}"
    return load.completed


def measure_cell(result, profile: str) -> dict:
    workload = build_workload(profile, LOAD_REQUESTS, seed=SEED)
    checked = parity_check(fresh_engine(result), workload)

    engine = fresh_engine(result)
    # measurement isolation: drain garbage accumulated by earlier
    # cells (oracles, previous engines) before driving load, so a
    # full collection triggered by *their* leftovers doesn't land
    # mid-cell and bill a multi-ms pause to this cell's tail
    gc.collect()
    load = OpenLoopDriver(
        engine.search, workload.queries,
        arrival_times("poisson", LOAD_RATE, LOAD_REQUESTS, seed=SEED),
        threads=THREADS, limit=LIMIT,
        name=f"{profile}@{LOAD_RATE:g}qps").run()
    assert load.completed == LOAD_REQUESTS
    assert load.errors == 0
    assert load.percentile_source == "reservoir_exact"
    assert 0.0 < load.response["p50"] <= load.response["p99"] \
        <= load.response["max"]

    sweep_workload = build_workload(profile, SWEEP_REQUESTS, seed=SEED)
    sweep_engine = fresh_engine(result)
    # steady-state sweep: serve each unique query once up front so
    # the lowest rate doesn't pay the cold-cache warm-up and read as
    # falsely saturated relative to the later (warmed) points
    for query in sweep_workload.unique_queries():
        sweep_engine.search(query, limit=LIMIT)

    def run_at(rate: float):
        return OpenLoopDriver(
            sweep_engine.search, sweep_workload.queries,
            arrival_times("fixed", rate, SWEEP_REQUESTS, seed=SEED),
            threads=THREADS, limit=LIMIT,
            name=f"{profile}@{rate:g}qps").run()

    sweep = saturation_sweep(run_at, SWEEP_RATES)
    assert sweep["saturation_qps"] > 0

    cache = engine.cache_info()
    lookups = cache.hits + cache.misses
    return {
        "profile": profile,
        "parity_checked_requests": checked,
        "load": load.to_json(),
        "saturation": sweep,
        "cache_hit_rate": round(cache.hits / lookups, 4)
        if lookups else None,
    }


def measure_http_cell(service_url: str, profile: str,
                      oracle_engine) -> dict:
    """One profile driven over HTTP against a live service — the
    end-to-end row: JSON encode, socket, handler thread, pinned
    query, JSON decode all inside the measured latency.  Results are
    parity-checked against the in-process engine (JSON floats
    round-trip exactly, so scores must match bit-for-bit)."""
    from repro.loadgen import HttpSearchClient
    client = HttpSearchClient(service_url, index=IndexName.FULL_INF)
    workload = build_workload(profile, LOAD_REQUESTS, seed=SEED)
    for query in workload.unique_queries():
        got = [(hit.doc_key, hit.score)
               for hit in client.search(query, limit=LIMIT)]
        want = [(hit.doc_key, hit.score)
                for hit in oracle_engine.search(query, limit=LIMIT)]
        assert got == want, f"service diverged for {query!r}"
    gc.collect()                      # same isolation as measure_cell
    load = OpenLoopDriver(
        client.search, workload.queries,
        arrival_times("poisson", LOAD_RATE, LOAD_REQUESTS, seed=SEED),
        threads=THREADS, limit=LIMIT,
        name=f"http:{profile}@{LOAD_RATE:g}qps").run()
    assert load.completed == LOAD_REQUESTS
    assert load.errors == 0, load.error_samples
    return {
        "profile": profile,
        "parity_checked_queries": len(workload.unique_queries()),
        "load": load.to_json(),
    }


def test_serving_load_matrix(pipeline_result,
                             segmented_pipeline_result, results_dir):
    backends = {
        "monolithic": pipeline_result,
        "segmented": segmented_pipeline_result,
    }
    report = {
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
        "index": IndexName.FULL_INF,
        "threads": THREADS,
        "limit": LIMIT,
        "arrival": "poisson",
        "offered_qps": LOAD_RATE,
        "requests_per_cell": LOAD_REQUESTS,
        "backends": {},
    }
    for backend, result in backends.items():
        cells = {profile: measure_cell(result, profile)
                 for profile in PROFILE_NAMES}
        report["backends"][backend] = cells
        # the cache-friendly profile must actually be cache-friendly
        assert cells["cache_friendly"]["cache_hit_rate"] \
            > cells["cache_hostile"]["cache_hit_rate"]

    # the end-to-end service row: the same segmented directory served
    # over HTTP by repro.serve, every request a real socket round trip
    from repro.serve import ReproService, ServiceConfig
    directory = segmented_pipeline_result.directories[
        IndexName.FULL_INF].path.parent
    config = ServiceConfig(directory, maintenance=False)
    with ReproService(config) as service:
        oracle = fresh_engine(segmented_pipeline_result)
        report["backends"]["http_service"] = {
            profile: measure_http_cell(service.url, profile, oracle)
            for profile in PROFILE_NAMES}

    # before/after: every cell annotated with its pre-optimisation
    # numbers and the resulting improvement ratios
    for backend, cells in report["backends"].items():
        for profile, cell in cells.items():
            before = BASELINE[backend][profile]
            response = cell["load"]["response_seconds"]
            versus = {"before": before,
                      "p95_speedup": round(
                          before["p95"] / response["p95"], 2),
                      "p99_speedup": round(
                          before["p99"] / response["p99"], 2)}
            if "saturation" in cell:
                versus["saturation_gain"] = round(
                    cell["saturation"]["saturation_qps"]
                    / before["saturation_qps"], 2)
            cell["versus_baseline"] = versus

    write_result(results_dir, "BENCH_serving.json",
                 json.dumps(report, indent=2) + "\n")

    # regression gates for the hot-path optimisation:
    # 1. the segmented cache-hostile cell — every miss now scored
    #    through the batched block path — must saturate >= 1.2x the
    #    per-posting-loop build
    hostile = report["backends"]["segmented"]["cache_hostile"]
    assert hostile["versus_baseline"]["saturation_gain"] >= 1.2, \
        hostile["versus_baseline"]
    # 2. machine-independent tail gap: segmented cache-friendly p95
    #    within 3x of monolithic measured in the same run (was ~20x
    #    before the df-cache/pin contention fixes)
    segmented_p95 = report["backends"]["segmented"]["cache_friendly"][
        "load"]["response_seconds"]["p95"]
    monolithic_p95 = report["backends"]["monolithic"][
        "cache_friendly"]["load"]["response_seconds"]["p95"]
    assert segmented_p95 <= 3.0 * monolithic_p95, \
        (segmented_p95, monolithic_p95)

    for backend, cells in report["backends"].items():
        for profile, cell in cells.items():
            response = cell["load"]["response_seconds"]
            line = (f"{backend:12} {profile:15} "
                    f"p50={response['p50'] * 1000:7.2f}ms "
                    f"p99={response['p99'] * 1000:7.2f}ms "
                    f"achieved={cell['load']['achieved_qps']:7.1f}qps")
            if "saturation" in cell:
                line += (f" saturation="
                         f"{cell['saturation']['saturation_qps']:8.1f}"
                         f"qps")
            print(line)
