"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not published tables, but the load-bearing decisions behind them:

* field boosts (§3.6.2) — without them the event field no longer
  dominates and 'goal' misranks misses;
* the preserved narration field (§3.6.1) — dropping it breaks the
  "worst case ≥ traditional" guarantee on name-only queries;
* stemming — without it 'goal' and 'goals', 'scores' and 'score'
  diverge.
"""

from __future__ import annotations

from repro.core import F, IndexName, KeywordSearchEngine
from repro.core.fields import SEARCHED_FIELDS
from repro.evaluation import (EvaluationHarness, TABLE3_QUERIES,
                              average_precision, RelevanceJudge)
from benchmarks.conftest import write_result


def _map_over_queries(engine, judge, query_ids=None):
    total, count = 0.0, 0
    for query in TABLE3_QUERIES:
        if query_ids and query.query_id not in query_ids:
            continue
        hits = engine.search(query.keywords)
        gold = judge.for_query(query.query_id)
        total += average_precision([h.doc_key for h in hits], gold,
                                   judge.resolve)
        count += 1
    return total / count


def test_field_boost_ablation(pipeline_result, corpus, results_dir,
                              benchmark):
    """Query-time evidence: restrict search to the narration field
    only (no semantic fields) — the MAP collapses toward TRAD."""
    judge = RelevanceJudge(corpus)
    index = pipeline_result.index(IndexName.FULL_INF)
    full_engine = KeywordSearchEngine(index)
    narration_only = KeywordSearchEngine(index, fields=[F.NARRATION])

    def measure():
        return (_map_over_queries(full_engine, judge),
                _map_over_queries(narration_only, judge))

    full_map, ablated_map = benchmark.pedantic(measure, rounds=1,
                                               iterations=1)
    text = ("Ablation — searching semantic fields vs narration only "
            "(FULL_INF)\n\n"
            f"all fields (boosted):   MAP = {full_map:.1%}\n"
            f"narration field only:   MAP = {ablated_map:.1%}")
    write_result(results_dir, "ablation_field_boosts.txt", text)
    print("\n" + text)
    assert full_map > ablated_map + 0.3


def test_narration_field_ablation(pipeline_result, corpus, results_dir,
                                  benchmark):
    """Drop the narration field from search: the name-only query Q-8
    loses the free-text fallback the paper guarantees (§3.6.1)."""
    judge = RelevanceJudge(corpus)
    index = pipeline_result.index(IndexName.FULL_INF)
    semantic_only = [f for f in SEARCHED_FIELDS if f != F.NARRATION]
    with_narration = KeywordSearchEngine(index)
    without_narration = KeywordSearchEngine(index, fields=semantic_only)

    def measure():
        return (_map_over_queries(with_narration, judge, {"Q-8"}),
                _map_over_queries(without_narration, judge, {"Q-8"}))

    kept, dropped = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = ("Ablation — narration field kept vs dropped (query Q-8)\n\n"
            f"with narration field:    AP = {kept:.1%}\n"
            f"without narration field: AP = {dropped:.1%}")
    write_result(results_dir, "ablation_narration_field.txt", text)
    print("\n" + text)
    # with names in subjectPlayer/objectPlayer the drop may be small,
    # but recall must not improve by removing evidence
    assert kept >= dropped - 1e-9


def test_similarity_ablation(pipeline_result, corpus, results_dir,
                             benchmark):
    """Classic TF-IDF (the paper's Lucene) vs BM25 on Table 3."""
    from repro.search.similarity import BM25Similarity
    judge = RelevanceJudge(corpus)
    index = pipeline_result.index(IndexName.FULL_INF)
    classic = KeywordSearchEngine(index)
    bm25 = KeywordSearchEngine(index, similarity=BM25Similarity())

    def measure():
        return (_map_over_queries(classic, judge),
                _map_over_queries(bm25, judge))

    classic_map, bm25_map = benchmark.pedantic(measure, rounds=1,
                                               iterations=1)
    text = ("Ablation — Lucene-classic TF-IDF vs BM25 (FULL_INF)\n\n"
            f"classic TF-IDF: MAP = {classic_map:.1%}\n"
            f"BM25:           MAP = {bm25_map:.1%}")
    write_result(results_dir, "ablation_similarity.txt", text)
    print("\n" + text)
    assert classic_map > 0.8      # the reproduction target
    assert bm25_map > 0.5         # ranking-model robustness
