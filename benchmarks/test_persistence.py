"""Persistence benchmarks: index save/load and model round trips.

The paper's offline/online split presumes the artifacts can be
materialized and reloaded quickly; these benchmarks measure the JSON
index files and the per-match N-Triples model files.
"""

from __future__ import annotations

from pathlib import Path

from repro.core import IndexName, ModelStore
from repro.search import load_index, save_index
from benchmarks.conftest import write_result


def test_index_save_load_round_trip(pipeline_result, tmp_path_factory,
                                    results_dir, benchmark):
    directory = tmp_path_factory.mktemp("indexes")
    index = pipeline_result.index(IndexName.FULL_INF)

    def round_trip():
        path = save_index(index, directory)
        loaded = load_index(directory, IndexName.FULL_INF)
        return path, loaded

    path, loaded = benchmark(round_trip)
    assert loaded.doc_count == index.doc_count
    size_kb = path.stat().st_size / 1024
    text = (f"FULL_INF index persistence\n\n"
            f"documents:  {index.doc_count}\n"
            f"terms:      {index.unique_term_count()}\n"
            f"file size:  {size_kb:,.0f} KiB\n"
            f"round trip: {benchmark.stats.stats.mean * 1000:.0f} ms")
    write_result(results_dir, "persistence_index.txt", text)
    print("\n" + text)


def test_model_store_round_trip(pipeline, pipeline_result, corpus,
                                tmp_path_factory, benchmark):
    directory = tmp_path_factory.mktemp("models")
    store = ModelStore(directory, pipeline.ontology)
    match_id = corpus.matches[0].match_id
    model = pipeline_result.inferred_models[0]

    def round_trip():
        store.save("inferred", match_id, model)
        return store.load("inferred", match_id)

    loaded = benchmark(round_trip)
    assert loaded.individual_count == model.individual_count


def test_load_only_startup_cost(pipeline_result, tmp_path_factory,
                                benchmark):
    """The online process's cold-start cost: load the serving index."""
    directory = tmp_path_factory.mktemp("startup")
    save_index(pipeline_result.index(IndexName.FULL_INF), directory)

    loaded = benchmark(load_index, directory, IndexName.FULL_INF)
    assert loaded.doc_count > 1000
