"""§8 — "the system can get close to the performance of SPARQL, which
is the best that can be achieved with semantic querying."

Runs formal SPARQL queries (perfect precision/recall by construction)
for a subset of the Table 3 information needs and compares FULL_INF's
AP against that ceiling.
"""

from __future__ import annotations

from repro.core import IndexName
from repro.evaluation import RelevanceJudge, average_precision
from repro.ontology import abox_to_graph
from repro.rdf import Graph, SOCCER
from repro.sparql import query as sparql_query
from benchmarks.conftest import write_result

#: query id → SPARQL equivalent over the inferred models
_SPARQL_QUERIES = {
    "Q-1": "SELECT ?k WHERE { ?e a pre:Goal . ?e pre:hasEventId ?k }",
    "Q-4": ("SELECT ?k WHERE { ?e a pre:Punishment . "
            "?e pre:hasEventId ?k }"),
    "Q-6": ("SELECT ?k WHERE { ?e a pre:Goal . "
            "?e pre:beatenGoalkeeper ?gk . ?gk pre:hasName ?n "
            'FILTER (REGEX(?n, "Casillas")) . ?e pre:hasEventId ?k }'),
    "Q-10": ("SELECT ?k WHERE { ?e a pre:Shoot . "
             "?e pre:subjectPlayer ?p . ?p a pre:DefencePlayer . "
             "?e pre:hasEventId ?k }"),
}

_KEYWORDS = {"Q-1": "goal", "Q-4": "punishment",
             "Q-6": "goal scored to casillas",
             "Q-10": "shoot defence players"}


def _merged_graph(pipeline_result) -> Graph:
    merged = Graph()
    merged.namespace_manager.bind("pre", SOCCER)
    for model in pipeline_result.inferred_models:
        merged |= abox_to_graph(model)
    return merged


def test_sparql_is_the_ceiling(pipeline_result, corpus, results_dir,
                               benchmark):
    judge = RelevanceJudge(corpus)
    graph = _merged_graph(pipeline_result)
    engine = pipeline_result.engine(IndexName.FULL_INF)

    def evaluate():
        rows = []
        for query_id, sparql_text in _SPARQL_QUERIES.items():
            gold = judge.for_query(query_id)
            sparql_keys = [str(row[0]) for row in
                           sparql_query(graph, sparql_text)]
            sparql_ap = average_precision(sparql_keys, gold,
                                          judge.resolve)
            hits = engine.search(_KEYWORDS[query_id])
            keyword_ap = average_precision(
                [h.doc_key for h in hits], gold, judge.resolve)
            rows.append((query_id, sparql_ap, keyword_ap))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    lines = ["SPARQL ceiling vs FULL_INF keyword search (§8)", "",
             f"{'query':>6}  {'SPARQL AP':>10}  {'FULL_INF AP':>12}"]
    for query_id, sparql_ap, keyword_ap in rows:
        lines.append(f"{query_id:>6}  {sparql_ap:>9.1%}  "
                     f"{keyword_ap:>11.1%}")
    text = "\n".join(lines)
    write_result(results_dir, "sparql_ceiling.txt", text)
    print("\n" + text)

    for query_id, sparql_ap, keyword_ap in rows:
        assert sparql_ap > 0.99, query_id          # formal = perfect
        assert keyword_ap > sparql_ap - 0.15, query_id   # "close to"


def test_sparql_query_cost(pipeline_result, benchmark):
    """Cost of the heaviest formal query (Q-6's three-way join)."""
    graph = _merged_graph(pipeline_result)
    benchmark(sparql_query, graph, _SPARQL_QUERIES["Q-6"])
