"""Ingestion throughput: serial vs parallel batch ingestion.

Measures full steps 2–8 (IE → population → inference → indexing →
merge) over the standard corpus, serial and with a 4-worker process
pool, and writes machine-readable ``BENCH_ingest.json`` so future
scaling PRs can track the perf trajectory.

The parallel path must be bit-identical to the serial one regardless
of hardware; the ≥1.5× speedup assertion only runs on multi-core
machines (a process pool cannot beat serial on a single core — the
JSON records why the assertion was skipped).  The segmented section
times the segment-native build the same corpus goes through with
``run_segmented``: per-segment processing and sealing are recorded
separately from the merge, so regressions in either phase show up on
their own trend line.
"""

from __future__ import annotations

import json
import os
import time

from repro.core import (IndexName, Observability,
                        SemanticRetrievalPipeline)
from benchmarks.conftest import write_result

PARALLEL_WORKERS = 4
REQUIRED_SPEEDUP = 1.5
#: loose ceiling on the tracing+metrics overhead so the benchmark
#: doesn't flake on loaded CI machines; typical overhead is < 5%
#: (recorded in the JSON payload for the trend line).
MAX_OBSERVED_OVERHEAD = 1.5


def _timed_run(corpus, workers: int, profile: bool = False,
               observability=None):
    pipeline = SemanticRetrievalPipeline()
    started = time.perf_counter()
    result = pipeline.run(corpus.crawled, workers=workers,
                          profile=profile, observability=observability)
    return time.perf_counter() - started, result


def _timed_segmented(corpus, directory, workers: int,
                     segment_size: int = 2):
    pipeline = SemanticRetrievalPipeline()
    started = time.perf_counter()
    result = pipeline.run_segmented(corpus.crawled, directory,
                                    workers=workers,
                                    segment_size=segment_size)
    return time.perf_counter() - started, result


def test_ingestion_throughput(corpus, results_dir, tmp_path):
    matches = len(corpus.crawled)
    narrations = sum(len(crawled.narrations)
                     for crawled in corpus.crawled)
    cpu_count = os.cpu_count() or 1

    serial_seconds, serial = _timed_run(corpus, workers=1, profile=True)
    parallel_seconds, parallel = _timed_run(corpus,
                                            workers=PARALLEL_WORKERS)
    observed_seconds, observed = _timed_run(
        corpus, workers=1,
        observability=Observability(tracing=True, metrics=True))

    parity = all(serial.index(name).to_json()
                 == parallel.index(name).to_json()
                 for name in IndexName.BUILT)
    observed_parity = all(serial.index(name).to_json()
                          == observed.index(name).to_json()
                          for name in IndexName.BUILT)
    overhead = observed_seconds / serial_seconds
    speedup = serial_seconds / parallel_seconds
    # a pool cannot beat serial without a second core; any multi-core
    # machine must show a real speedup now that workers seal their own
    # segments instead of pickling indexes back for a serial merge.
    assert_speedup = cpu_count >= 2

    segmented_seconds, segmented = _timed_segmented(
        corpus, tmp_path / "segments", workers=1)
    merge_started = time.perf_counter()
    merges = segmented.directories[IndexName.FULL_INF].merge(force=True)
    merge_seconds = time.perf_counter() - merge_started
    segmented_parity = all(
        segmented.index(name).to_inverted().to_json()
        == serial.index(name).to_json()
        for name in IndexName.BUILT)
    segmented.close()

    profile = serial.profile.to_json() if serial.profile else {}
    payload = {
        "benchmark": "ingestion_throughput",
        "corpus": {"matches": matches, "narrations": narrations},
        "cpu_count": cpu_count,
        "serial": {
            "workers": 1,
            "seconds": round(serial_seconds, 3),
            "matches_per_sec": round(matches / serial_seconds, 3),
        },
        "parallel": {
            "workers": PARALLEL_WORKERS,
            "seconds": round(parallel_seconds, 3),
            "matches_per_sec": round(matches / parallel_seconds, 3),
        },
        "observed": {
            "workers": 1,
            "seconds": round(observed_seconds, 3),
            "overhead_vs_serial": round(overhead, 3),
        },
        "segmented": {
            "workers": 1,
            "segment_size": 2,
            "seconds": round(segmented_seconds, 3),
            "segment_build_seconds": [
                round(seconds, 3)
                for seconds in segmented.chunk_build_seconds],
            "segment_seal_seconds": [
                round(seconds, 3)
                for seconds in segmented.chunk_seal_seconds],
            "merge_seconds": round(merge_seconds, 3),
            "merges": merges,
            "parity": segmented_parity,
        },
        "speedup": round(speedup, 3),
        "parity": parity,
        "observed_parity": observed_parity,
        "speedup_asserted": assert_speedup,
        "speedup_assertion_note": (
            f"asserted >= {REQUIRED_SPEEDUP}x" if assert_speedup else
            f"skipped: single core ({cpu_count})"),
        "serial_profile": profile,
    }
    write_result(results_dir, "BENCH_ingest.json",
                 json.dumps(payload, indent=2) + "\n")

    text = (f"ingestion: {matches} matches / {narrations} narrations — "
            f"serial {serial_seconds:.2f}s "
            f"({matches / serial_seconds:.2f} matches/s), "
            f"{PARALLEL_WORKERS} workers {parallel_seconds:.2f}s "
            f"({matches / parallel_seconds:.2f} matches/s), "
            f"speedup {speedup:.2f}x on {cpu_count} core(s), "
            f"tracing overhead {overhead:.2f}x; "
            f"segmented build {segmented_seconds:.2f}s "
            f"({len(segmented.chunk_build_seconds)} segments, "
            f"seal {sum(segmented.chunk_seal_seconds):.2f}s, "
            f"merge {merge_seconds:.2f}s)")
    write_result(results_dir, "ingest_throughput.txt", text)
    print("\n" + text)

    assert parity, "parallel ingestion diverged from serial output"
    assert observed_parity, \
        "tracing+metrics changed the ingestion output"
    assert segmented_parity, \
        "segment-native ingestion diverged from serial output"
    assert overhead < MAX_OBSERVED_OVERHEAD, (
        f"observability overhead {overhead:.2f}x exceeds the "
        f"{MAX_OBSERVED_OVERHEAD}x flake ceiling")
    if assert_speedup:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected >= {REQUIRED_SPEEDUP}x speedup at "
            f"{PARALLEL_WORKERS} workers on {cpu_count} cores, "
            f"got {speedup:.2f}x")


def test_cache_hit_rates_on_hot_path(corpus, results_dir):
    """The analysis caches must actually absorb the repeated work."""
    from repro.search.analysis.stemmer import PorterStemmer

    PorterStemmer.cache_clear()
    pipeline = SemanticRetrievalPipeline()
    result = pipeline.run(corpus.crawled, profile=True)
    caches = result.profile.caches

    stem_info = caches["stemmer.porter"]
    stem_total = stem_info["hits"] + stem_info["misses"]
    assert stem_total > 0
    assert stem_info["hit_rate"] > 0.9, stem_info

    token_info = caches["analyzer.token_stream"]
    assert token_info["hits"] + token_info["misses"] > 0
    assert token_info["hit_rate"] > 0.3, token_info

    for name in ("indexer.event_class", "indexer.class_label"):
        info = caches[name]
        assert info["hit_rate"] > 0.9, (name, info)
