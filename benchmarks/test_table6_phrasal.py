"""Table 6 — phrasal expression support (§6).

Regenerates the structural-ambiguity experiment: FULL_INF vs PHR_EXP
on the three "foul by/to" queries.
"""

from __future__ import annotations

from repro.evaluation import PAPER_TABLE6, TABLE6_QUERIES, render_table
from benchmarks.conftest import write_result


def test_table6_regeneration(harness, results_dir, benchmark):
    table = benchmark.pedantic(harness.table6, rounds=1, iterations=1)
    lines = [render_table(table, "Table 6 — reproduced", absolute=False),
             "", "Paper's published percentages for comparison:",
             "Queries  " + "  ".join(f"{s:>9}" for s in table.systems)]
    for query in TABLE6_QUERIES:
        row = PAPER_TABLE6[query.query_id]
        lines.append(f"{query.query_id:7}  "
                     + "  ".join(f"{row[s]:>8.1f}%" for s in table.systems))
    text = "\n".join(lines)
    write_result(results_dir, "table6.txt", text)
    print("\n" + text)

    for query in TABLE6_QUERIES:
        phr = table.get(query.query_id, "PHR_EXP").average_precision
        inf = table.get(query.query_id, "FULL_INF").average_precision
        assert phr >= 0.99, query.query_id          # PHR_EXP resolves all
        assert phr >= inf - 1e-9                     # and never regresses
    # at least one query demonstrates the ambiguity FULL_INF suffers
    assert any(table.get(q.query_id, "FULL_INF").average_precision < 0.9
               for q in TABLE6_QUERIES)


def test_phrasal_query_latency(pipeline_result, benchmark):
    engine = pipeline_result.phrasal_engine

    def run_all():
        for query in TABLE6_QUERIES:
            engine.search(query.keywords, limit=20)

    benchmark(run_all)
