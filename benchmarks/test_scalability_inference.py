"""Scalability of inferencing (§3.5).

The paper's design claim: "we keep each soccer game separate from each
other and run the inferencing separately … the time needed for the
inferencing of a soccer game becomes independent of the total number
of games."  We measure per-match inference time while growing the
corpus from 2 to 10 matches and assert it stays flat, then contrast it
with the superlinear cost of reasoning over one merged model.
"""

from __future__ import annotations

import time

from repro.extraction import InformationExtractor
from repro.ontology import Ontology
from repro.population import OntologyPopulator
from repro.soccer import standard_corpus
from repro.soccer.names import FIXTURES
from benchmarks.conftest import write_result


def _full_models(pipeline, crawled_matches):
    populator = OntologyPopulator(pipeline.ontology)
    models = []
    for crawled in crawled_matches:
        extractor = InformationExtractor(crawled)
        models.append(populator.populate_full(
            crawled, extractor.extract_all()))
    return models


def test_per_match_inference_flat_in_corpus_size(pipeline, results_dir,
                                                 benchmark):
    def measure():
        rows = []
        for count in (2, 4, 6, 8, 10):
            corpus = standard_corpus(fixtures=FIXTURES[:count],
                                     total_narrations=118 * count)
            models = _full_models(pipeline, corpus.crawled)
            started = time.perf_counter()
            for model in models:
                pipeline.reasoner.infer(model, check_consistency=False)
            elapsed = time.perf_counter() - started
            rows.append((count, elapsed / count))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Per-match inference time vs corpus size (§3.5 claim)",
             "", f"{'matches':>8}  {'ms / match':>12}"]
    for count, per_match in rows:
        lines.append(f"{count:>8}  {per_match * 1000:>12.1f}")
    text = "\n".join(lines)
    write_result(results_dir, "scalability_inference.txt", text)
    print("\n" + text)

    # per-match time must not grow with corpus size (allow 75% noise)
    smallest = rows[0][1]
    largest = rows[-1][1]
    assert largest < smallest * 1.75


def test_incremental_update_cost(pipeline, corpus, results_dir,
                                 benchmark):
    """Why the paper divides the world into small models (§3.5): when
    a new match arrives, only *its* model is reasoned over ("we
    disjunctively add the inferred information to the knowledge
    base"), while a single-world design must re-run inference over
    the whole merged ABox."""
    models = _full_models(pipeline, corpus.crawled)
    existing, new_match = models[:-1], models[-1]

    def merged_world_update():
        # single-model design: the new match joins the world, and the
        # reasoner runs over everything again
        merged = pipeline.ontology.spawn_abox("merged")
        for model in (*existing, new_match):
            for individual in model.individuals():
                merged.add_individual(individual)
        return pipeline.reasoner.infer(merged, check_consistency=False)

    def independent_model_update():
        # the paper's design: only the new match is inferred
        return pipeline.reasoner.infer(new_match,
                                       check_consistency=False)

    started = time.perf_counter()
    independent_result = independent_model_update()
    independent_seconds = time.perf_counter() - started

    started = time.perf_counter()
    merged_result = benchmark.pedantic(merged_world_update, rounds=1,
                                       iterations=1)
    merged_seconds = time.perf_counter() - started

    text = ("Cost of adding one new match to a 9-match knowledge base\n"
            "(the §3.5 independent-models design vs a single world "
            "model)\n\n"
            f"independent models (infer 1 match): "
            f"{independent_seconds * 1000:9.1f} ms\n"
            f"single world model (re-infer all):  "
            f"{merged_seconds * 1000:9.1f} ms")
    write_result(results_dir, "scalability_incremental_update.txt", text)
    print("\n" + text)
    assert merged_result.abox.individual_count > 0
    assert independent_seconds < merged_seconds


def test_single_match_inference(pipeline, corpus, benchmark):
    """Absolute per-match reasoning cost (the §3.5 offline unit)."""
    [model] = _full_models(pipeline, corpus.crawled[:1])
    benchmark(pipeline.reasoner.infer, model, check_consistency=False)
