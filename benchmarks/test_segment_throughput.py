"""Segment architecture benchmarks → ``BENCH_segments.json``.

Three claims of the segment design are measured and pinned:

1. **O(1) open** — a segment directory opens by mmapping files and
   parsing O(fields) headers; postings and term dictionaries decode
   lazily.  Open latency must stay flat while the corpus grows 10×.
2. **Scatter-gather serving** — searching N segments through the
   shared-heap top-k driver stays within a small constant of the
   monolithic single-index scan, and the per-segment score bounds
   actually skip whole segments (pruning counters > 0).
3. **Parallel segment build** — ingestion workers seal their own
   segments, so multi-core builds beat serial (asserted only on
   multi-core machines; a pool cannot win on one core).
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.core import IndexName, SemanticRetrievalPipeline
from repro.search.index import (IndexDirectory, InvertedIndex,
                                SegmentedIndex)
from repro.search.query.queries import DisMaxQuery, TermQuery
from repro.search.searcher import IndexSearcher
from repro.search.topk import run_top_k
from repro.search.similarity import ClassicSimilarity
from benchmarks.conftest import write_result

VOCAB = ["goal", "messi", "pass", "foul", "corner", "shot", "save",
         "header", "cross", "tackle"]

PARALLEL_WORKERS = 4
REQUIRED_PARALLEL_SPEEDUP = 1.3
MAX_SCATTER_GATHER_RATIO = 1.3
MAX_OPEN_GROWTH = 5.0          # "flat": generous CI-noise ceiling
SEGMENT_COUNTS = (1, 2, 4, 8)
QUERY_REPS = 30


def synthetic_docs(docs: int, seed: int = 42):
    rng = random.Random(seed)
    specs = []
    for number in range(docs):
        terms = [(rng.choice(VOCAB), position)
                 for position in range(rng.randint(2, 8))]
        # the first tenth of the corpus carries boosted docs: later
        # segments' max-boost bounds fall below the top-k heap, which
        # is what lets the driver skip them whole.
        boost = 3.0 if number < docs // 10 else 1.0
        specs.append((terms, boost))
    return specs


def build_monolithic(specs) -> InvertedIndex:
    index = InvertedIndex("bench")
    for terms, boost in specs:
        doc_id = index.new_doc_id()
        index.index_terms(doc_id, "body", terms, boost=boost)
        index.store_value(doc_id, "doc_key", f"doc-{doc_id}")
    return index


def build_segmented(specs, segments: int, path) -> IndexDirectory:
    directory = IndexDirectory(path, name="bench")
    size = (len(specs) + segments - 1) // segments
    for start in range(0, len(specs), size):
        chunk = InvertedIndex("bench")
        for offset, (terms, boost) in enumerate(specs[start:start + size]):
            doc_id = chunk.new_doc_id()
            chunk.index_terms(doc_id, "body", terms, boost=boost)
            chunk.store_value(doc_id, "doc_key",
                              f"doc-{start + offset}")
        directory.add_index(chunk)
    return directory


def open_latency(path) -> float:
    """Seconds to open the directory and serve one point lookup
    (min of 5 — the O(1)-open claim under test)."""
    best = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        with SegmentedIndex(IndexDirectory(path)) as index:
            index.doc_frequency("body", "goal")
        best = min(best, time.perf_counter() - started)
    return best


def query_workload():
    queries = [TermQuery("body", term) for term in VOCAB[:6]]
    queries.append(DisMaxQuery([TermQuery("body", "goal"),
                                TermQuery("body", "messi")],
                               tie_breaker=0.1))
    return queries


def time_queries(index, queries):
    """(best-of-3 batch seconds, segments searched, segments pruned,
    rankings) for QUERY_REPS passes over the workload."""
    similarity = ClassicSimilarity()
    searched = pruned = 0
    rankings = []
    best = float("inf")
    for attempt in range(3):
        started = time.perf_counter()
        for _ in range(QUERY_REPS):
            for query in queries:
                result = run_top_k(index, similarity, query, 5)
                if attempt == 0:
                    searched += result.segments_searched
                    pruned += result.segments_pruned
        best = min(best, time.perf_counter() - started)
    for query in queries:
        top = IndexSearcher(index, similarity, cache_size=0
                            ).search(query, 5)
        rankings.append([(hit.doc_id, hit.score) for hit in top])
    return best, searched, pruned, rankings


def test_segment_throughput(corpus, results_dir, tmp_path):
    cpu_count = os.cpu_count() or 1

    # -- 1: open latency stays flat across 10x corpus growth ---------
    small_docs, large_docs = 400, 4000
    small = build_segmented(synthetic_docs(small_docs), 4,
                            tmp_path / "small.segd")
    large = build_segmented(synthetic_docs(large_docs), 4,
                            tmp_path / "large.segd")
    open_small = open_latency(small.path)
    open_large = open_latency(large.path)
    open_growth = open_large / open_small

    # -- 2: scatter-gather vs monolithic at 1/2/4/8 segments ---------
    specs = synthetic_docs(2000)
    mono = build_monolithic(specs)
    queries = query_workload()
    mono_seconds, _, _, mono_rankings = time_queries(mono, queries)
    per_segments = {}
    for count in SEGMENT_COUNTS:
        directory = build_segmented(specs, count,
                                    tmp_path / f"sg{count}.segd")
        with SegmentedIndex(directory) as index:
            seconds, searched, pruned, rankings = time_queries(
                index, queries)
        assert rankings == mono_rankings, \
            f"rankings diverged at {count} segments"
        per_segments[count] = {
            "seconds": round(seconds, 4),
            "ratio_vs_monolithic": round(seconds / mono_seconds, 3),
            "segments_searched": searched,
            "segments_pruned": pruned,
        }
    ratio_at_4 = per_segments[4]["ratio_vs_monolithic"]
    pruned_at_4 = per_segments[4]["segments_pruned"]

    # -- 3: parallel segment build ------------------------------------
    pipeline = SemanticRetrievalPipeline()
    started = time.perf_counter()
    serial = pipeline.run_segmented(corpus.crawled,
                                    tmp_path / "build_serial",
                                    workers=1, segment_size=1)
    serial_seconds = time.perf_counter() - started
    serial.close()
    started = time.perf_counter()
    parallel = pipeline.run_segmented(corpus.crawled,
                                      tmp_path / "build_parallel",
                                      workers=PARALLEL_WORKERS,
                                      segment_size=1)
    parallel_seconds = time.perf_counter() - started
    parallel.close()
    build_speedup = serial_seconds / parallel_seconds
    assert_build = cpu_count >= 2

    payload = {
        "benchmark": "segment_throughput",
        "cpu_count": cpu_count,
        "open_latency": {
            "docs_small": small_docs,
            "docs_large": large_docs,
            "open_small_ms": round(open_small * 1000, 3),
            "open_large_ms": round(open_large * 1000, 3),
            "growth_at_10x_docs": round(open_growth, 3),
        },
        "scatter_gather": {
            "docs": len(specs),
            "queries": len(queries),
            "reps": QUERY_REPS,
            "monolithic_seconds": round(mono_seconds, 4),
            "per_segment_count": {str(count): stats for count, stats
                                  in per_segments.items()},
        },
        "parallel_build": {
            "matches": len(corpus.crawled),
            "serial_seconds": round(serial_seconds, 3),
            "parallel_workers": PARALLEL_WORKERS,
            "parallel_seconds": round(parallel_seconds, 3),
            "speedup": round(build_speedup, 3),
            "speedup_asserted": assert_build,
            "speedup_assertion_note": (
                f"asserted >= {REQUIRED_PARALLEL_SPEEDUP}x"
                if assert_build
                else f"skipped: single core ({cpu_count})"),
        },
    }
    write_result(results_dir, "BENCH_segments.json",
                 json.dumps(payload, indent=2) + "\n")

    text = (f"segments: open {open_small * 1000:.2f}ms → "
            f"{open_large * 1000:.2f}ms at 10x docs "
            f"(growth {open_growth:.2f}x); scatter-gather at 4 "
            f"segments {ratio_at_4:.2f}x monolithic, "
            f"{pruned_at_4} segment(s) pruned; parallel build "
            f"{build_speedup:.2f}x on {cpu_count} core(s)")
    write_result(results_dir, "segment_throughput.txt", text)
    print("\n" + text)

    assert open_growth < MAX_OPEN_GROWTH, (
        f"open latency grew {open_growth:.2f}x across a 10x corpus — "
        f"opening is supposed to be O(1) in documents")
    assert pruned_at_4 > 0, \
        "score bounds never skipped a segment at 4 segments"
    assert ratio_at_4 <= MAX_SCATTER_GATHER_RATIO, (
        f"scatter-gather at 4 segments is {ratio_at_4:.2f}x "
        f"monolithic (ceiling {MAX_SCATTER_GATHER_RATIO}x)")
    if assert_build:
        assert build_speedup >= REQUIRED_PARALLEL_SPEEDUP, (
            f"expected >= {REQUIRED_PARALLEL_SPEEDUP}x parallel build "
            f"speedup on {cpu_count} cores, got {build_speedup:.2f}x")
