"""Fig. 5 — inferring the class hierarchy of "Long Pass".

Regenerates the figure's inference chain (LongPass ⊑ Pass ⊑ BallEvent
⊑ Event) via the classification service and benchmarks realization of
a typed individual.
"""

from __future__ import annotations

from repro.ontology import Individual
from repro.rdf import SOCCER
from repro.reasoning import Realizer, Taxonomy
from benchmarks.conftest import write_result


def test_fig5_long_pass_lineage(ontology, results_dir, benchmark):
    taxonomy = Taxonomy(ontology)
    lineage = benchmark.pedantic(taxonomy.lineage,
                                 args=(SOCCER.LongPass,), rounds=1,
                                 iterations=1)
    rendered = "\n   is-a\n".join(uri.local_name for uri in lineage)
    text = ("Fig. 5 — inferred class hierarchy of Long Pass\n\n"
            + rendered)
    write_result(results_dir, "fig5_long_pass.txt", text)
    print("\n" + text)

    names = [uri.local_name for uri in lineage]
    assert names[0] == "LongPass"
    assert "Pass" in names
    assert "BallEvent" in names
    assert names[-1] == "Event"


def test_realization_of_typed_individual(ontology, benchmark):
    """A LongPass individual gains every supertype when realized —
    the inference Fig. 5 depicts, applied to ABox data."""
    realizer = Realizer(ontology)

    def realize_one():
        abox = ontology.spawn_abox("bench")
        individual = Individual(SOCCER.term("lp1"), {SOCCER.LongPass})
        abox.add_individual(individual)
        realizer.realize(abox)
        return individual

    individual = benchmark(realize_one)
    assert {SOCCER.Pass, SOCCER.BallEvent, SOCCER.Event} \
        <= individual.types
