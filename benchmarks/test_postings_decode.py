"""Postings decode micro-benchmark: the serving hot path's inner loop.

Three measurements on the real FULL_INF index / segment built from
the standard corpus:

1. **Bulk vs scalar varint decode** — every term's postings payload
   decoded with :func:`decode_uvarints` (one tight loop per byte
   range) versus the byte-at-a-time :func:`_read_uvarint` call chain
   it replaced.  Outputs are asserted identical, so the speedup is a
   pure mechanical win.
2. **Cold vs warm postings cache** — first materialisation of every
   term (decode + LRU insert + column build) versus the second pass,
   which must be all hits on shared :class:`DecodedTerm` arrays.
3. **Batched block scoring vs the per-posting loop** — every term
   scored through :meth:`TermScorer.score_block` (typed-column zip,
   one call per skip block) versus the per-document
   :meth:`score_one` walk it replaced.  Identical floats out; the
   report gates on the batched path being ≥ 1.5× faster.

Evidence lands in ``benchmarks/results/BENCH_decode.json``.
"""

from __future__ import annotations

import json
import time

from repro.core import IndexName
from repro.search.index.codec import _read_uvarint, decode_uvarints
from repro.search.index.segment import SegmentReader, write_segment
from repro.search.query.queries import TermQuery
from repro.search.similarity import BM25Similarity

from benchmarks.conftest import write_result

REPEATS = 5

#: the batched typed-column scoring loop must clearly beat the
#: per-posting probe-and-score walk it replaced
MIN_BLOCK_SCORING_SPEEDUP = 1.5


def scalar_decode(data, start: int, end: int) -> list:
    """The pre-optimisation shape: one function call per varint."""
    values = []
    pos = start
    while pos < end:
        value, pos = _read_uvarint(data, pos)
        values.append(value)
    return values


def best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_postings_decode_benchmark(pipeline_result, results_dir,
                                   tmp_path):
    index = pipeline_result.index(IndexName.FULL_INF)
    path = write_segment(index, tmp_path / "decode_bench.ridx")

    with SegmentReader(path) as reader:
        ranges = []
        for field in reader.field_names():
            for meta in reader.term_metas(field).values():
                ranges.append((meta.offset, meta.offset + meta.length))
        payload_bytes = sum(end - start for start, end in ranges)
        data = reader._mmap

        # correctness first: bulk and scalar must agree on every range
        for start, end in ranges:
            assert decode_uvarints(data, start, end) \
                == scalar_decode(data, start, end)

        def bulk_pass():
            for start, end in ranges:
                decode_uvarints(data, start, end)

        def scalar_pass():
            for start, end in ranges:
                scalar_decode(data, start, end)

        bulk_s = best_of(REPEATS, bulk_pass)
        scalar_s = best_of(REPEATS, scalar_pass)

    # cold vs warm: fresh readers for the cold passes so every term
    # decode really happens; the warm pass reuses one reader's LRU.
    # Decoding is block-lazy now, so touching doc_ids forces the
    # actual column materialisation both passes compare.
    terms = [(field, term) for field in index.field_names()
             for term in index.terms(field)]

    def cold_pass():
        with SegmentReader(path) as cold_reader:
            for field, term in terms:
                cold_reader.postings(field, term).doc_ids()

    cold_s = best_of(REPEATS, cold_pass)

    # the warm reader's LRU must hold the whole vocabulary, or a
    # sequential full-vocab sweep evicts every entry before reuse
    warm_reader = SegmentReader(path,
                                postings_cache_size=len(terms) + 64)
    try:
        for field, term in terms:
            warm_reader.postings(field, term).doc_ids()

        def warm_pass():
            for field, term in terms:
                warm_reader.postings(field, term).doc_ids()

        warm_s = best_of(REPEATS, warm_pass)
        info = warm_reader.postings_cache_info()
        assert info.hits >= REPEATS * len(terms)
        assert info.misses == len(terms)
    finally:
        warm_reader.close()

    # batched block scoring vs the per-posting loop, over the same
    # TermScorer the serving path uses — identical floats, then time
    similarity = BM25Similarity()
    scorers = [TermQuery(field, term).scorer(index, similarity)
               for field, term in terms]
    docs_scored = 0
    for scorer in scorers:
        batched = [pair
                   for block in range(scorer.block_count())
                   for pair in scorer.score_block(block)]
        by_doc = [(doc_id, scorer.score_one(doc_id))
                  for doc_id in scorer.doc_ids()]
        assert batched == by_doc
        docs_scored += len(by_doc)

    def per_posting_pass():
        for scorer in scorers:
            score_one = scorer.score_one
            for doc_id in scorer.doc_ids():
                score_one(doc_id)

    def block_pass():
        for scorer in scorers:
            score_block = scorer.score_block
            for block in range(scorer.block_count()):
                score_block(block)

    per_posting_s = best_of(REPEATS, per_posting_pass)
    block_s = best_of(REPEATS, block_pass)
    block_speedup = per_posting_s / block_s

    report = {
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
        "index": IndexName.FULL_INF,
        "term_count": len(terms),
        "postings_payload_bytes": payload_bytes,
        "varint_decode": {
            "bulk_ms": round(bulk_s * 1000, 3),
            "scalar_ms": round(scalar_s * 1000, 3),
            "speedup": round(scalar_s / bulk_s, 2),
        },
        "postings_cache": {
            "cold_pass_ms": round(cold_s * 1000, 3),
            "warm_pass_ms": round(warm_s * 1000, 3),
            "speedup": round(cold_s / warm_s, 2),
            "warm_hit_rate": round(
                info.hits / (info.hits + info.misses), 4),
        },
        "block_scoring": {
            "docs_scored": docs_scored,
            "per_posting_ms": round(per_posting_s * 1000, 3),
            "batched_ms": round(block_s * 1000, 3),
            "speedup": round(block_speedup, 2),
            "min_speedup": MIN_BLOCK_SCORING_SPEEDUP,
        },
    }
    write_result(results_dir, "BENCH_decode.json",
                 json.dumps(report, indent=2) + "\n")
    print(f"bulk={bulk_s * 1000:.2f}ms scalar={scalar_s * 1000:.2f}ms "
          f"({scalar_s / bulk_s:.2f}x)  "
          f"cold={cold_s * 1000:.2f}ms warm={warm_s * 1000:.2f}ms "
          f"({cold_s / warm_s:.2f}x)  "
          f"block-scoring={block_speedup:.2f}x")

    # machine-independent: the warm pass skips every decode, so it
    # must not be slower than decoding the whole vocabulary cold
    assert warm_s < cold_s
    # the batched typed-column loop is the tentpole claim: gate it
    assert block_speedup >= MIN_BLOCK_SCORING_SPEEDUP, (
        f"batched block scoring only {block_speedup:.2f}x over the "
        f"per-posting loop (need {MIN_BLOCK_SCORING_SPEEDUP}x)")
