"""Scalability of querying (§1, §3.6).

The paper's second scalability argument: answering keyword queries
from the inverted index is near-constant in corpus size, unlike
RDF-graph traversal.  We grow the corpus and measure query latency on
the FULL_INF index, and compare against evaluating the equivalent
SPARQL query over the match graphs.
"""

from __future__ import annotations

import time

from repro.core import IndexName, SemanticRetrievalPipeline
from repro.rdf import Graph
from repro.soccer import standard_corpus
from repro.soccer.names import FIXTURES
from repro.sparql import query as sparql_query
from benchmarks.conftest import write_result

_QUERIES = ["goal", "barcelona goal", "punishment",
            "save goalkeeper barcelona", "shoot defence players"]

_SPARQL = """
PREFIX pre: <http://repro.example.org/soccer#>
SELECT ?g WHERE { ?g a pre:Goal . ?g pre:beatenGoalkeeper ?k }
"""


def _latency(engine) -> float:
    started = time.perf_counter()
    for text in _QUERIES:
        engine.search(text, limit=20)
    return (time.perf_counter() - started) / len(_QUERIES)


def test_query_latency_vs_corpus_size(results_dir, benchmark):
    def measure():
        rows = []
        for count in (2, 6, 10):
            corpus = standard_corpus(fixtures=FIXTURES[:count],
                                     total_narrations=118 * count)
            result = SemanticRetrievalPipeline().run(corpus.crawled)
            engine = result.engine(IndexName.FULL_INF)
            _latency(engine)                      # warm up
            rows.append((count, _latency(engine)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Keyword query latency vs corpus size (FULL_INF)", "",
             f"{'matches':>8}  {'ms / query':>12}"]
    for count, seconds in rows:
        lines.append(f"{count:>8}  {seconds * 1000:>12.2f}")
    text = "\n".join(lines)
    write_result(results_dir, "scalability_query.txt", text)
    print("\n" + text)

    # sub-linear: 5x corpus must cost far less than 5x latency
    assert rows[-1][1] < rows[0][1] * 4


def test_index_vs_sparql_graph_traversal(pipeline_result, corpus,
                                         results_dir, benchmark):
    """§2: systems that 'do real-time traversals in large RDF graphs'
    cannot scale — quantify the gap on Q-6-style retrieval."""
    engine = pipeline_result.engine(IndexName.FULL_INF)
    graphs = [pipeline_result.inferred_models[i] for i in range(10)]
    from repro.ontology import abox_to_graph
    merged = Graph()
    for model in graphs:
        merged |= abox_to_graph(model)

    def keyword():
        return engine.search("goal scored to casillas", limit=20)

    def sparql():
        return sparql_query(merged, _SPARQL)

    started = time.perf_counter()
    hits = keyword()
    keyword_seconds = time.perf_counter() - started

    started = time.perf_counter()
    rows = sparql()
    sparql_seconds = time.perf_counter() - started

    benchmark(keyword)
    text = ("Keyword-over-index vs SPARQL-over-graph (10 matches)\n\n"
            f"keyword search:  {keyword_seconds * 1000:9.2f} ms "
            f"({len(hits)} hits)\n"
            f"SPARQL BGP eval: {sparql_seconds * 1000:9.2f} ms "
            f"({len(rows)} rows)")
    write_result(results_dir, "scalability_index_vs_sparql.txt", text)
    print("\n" + text)
    assert hits and len(rows) > 0
