"""Sustained query-throughput benchmark.

Generates a realistic query log (player names, team names, event
vocabulary — alone and combined, plus a fraction of misses) and
measures sustained QPS on the FULL_INF index — the "answering
millions of queries in reasonable time" claim of §1, scaled to the
corpus at hand.
"""

from __future__ import annotations

import random

from repro.core import IndexName
from benchmarks.conftest import write_result

_EVENT_WORDS = ["goal", "foul", "save", "corner", "offside",
                "yellow card", "punishment", "pass", "tackle",
                "substitution"]
_NAMES = ["messi", "ronaldo", "henry", "casillas", "alex", "drogba",
          "gerrard", "robben", "sneijder", "rooney"]
_TEAMS = ["barcelona", "chelsea", "liverpool", "arsenal",
          "real madrid", "bayern"]
_NOISE = ["xylophone", "quantum", "zebra"]


def _query_log(count: int, seed: int = 42) -> list:
    rng = random.Random(seed)
    log = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.3:
            log.append(rng.choice(_EVENT_WORDS))
        elif roll < 0.5:
            log.append(rng.choice(_NAMES))
        elif roll < 0.75:
            log.append(f"{rng.choice(_NAMES)} "
                       f"{rng.choice(_EVENT_WORDS)}")
        elif roll < 0.95:
            log.append(f"{rng.choice(_TEAMS)} "
                       f"{rng.choice(_EVENT_WORDS)}")
        else:
            log.append(rng.choice(_NOISE) + " goal")
    return log


def test_sustained_query_throughput(pipeline_result, results_dir,
                                    benchmark):
    engine = pipeline_result.engine(IndexName.FULL_INF)
    log = _query_log(200)

    def run_log():
        answered = 0
        for text in log:
            hits = engine.search(text, limit=10)
            if hits:
                answered += 1
        return answered

    answered = benchmark(run_log)
    assert answered > 150
    mean = benchmark.stats.stats.mean
    qps = len(log) / mean
    text = (f"Sustained keyword-query throughput (FULL_INF, "
            f"{len(log)}-query log)\n\n"
            f"mean wall time: {mean * 1000:.0f} ms\n"
            f"throughput:     {qps:,.0f} queries/s\n"
            f"answered:       {answered}/{len(log)}")
    write_result(results_dir, "query_throughput.txt", text)
    print("\n" + text)
