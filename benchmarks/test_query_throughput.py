"""Sustained query-throughput benchmark.

Generates a realistic query log (player names, team names, event
vocabulary — alone and combined, plus a fraction of misses) and
measures sustained QPS on the FULL_INF index — the "answering
millions of queries in reasonable time" claim of §1, scaled to the
corpus at hand.
"""

from __future__ import annotations

import json
import random
import time

from repro.core import IndexName
from benchmarks.conftest import write_result

_EVENT_WORDS = ["goal", "foul", "save", "corner", "offside",
                "yellow card", "punishment", "pass", "tackle",
                "substitution"]
_NAMES = ["messi", "ronaldo", "henry", "casillas", "alex", "drogba",
          "gerrard", "robben", "sneijder", "rooney"]
_TEAMS = ["barcelona", "chelsea", "liverpool", "arsenal",
          "real madrid", "bayern"]
_NOISE = ["xylophone", "quantum", "zebra"]


def _query_log(count: int, seed: int = 42) -> list:
    rng = random.Random(seed)
    log = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.3:
            log.append(rng.choice(_EVENT_WORDS))
        elif roll < 0.5:
            log.append(rng.choice(_NAMES))
        elif roll < 0.75:
            log.append(f"{rng.choice(_NAMES)} "
                       f"{rng.choice(_EVENT_WORDS)}")
        elif roll < 0.95:
            log.append(f"{rng.choice(_TEAMS)} "
                       f"{rng.choice(_EVENT_WORDS)}")
        else:
            log.append(rng.choice(_NOISE) + " goal")
    return log


def test_sustained_query_throughput(pipeline_result, results_dir,
                                    benchmark):
    engine = pipeline_result.engine(IndexName.FULL_INF)
    log = _query_log(200)

    def run_log():
        answered = 0
        for text in log:
            hits = engine.search(text, limit=10)
            if hits:
                answered += 1
        return answered

    answered = benchmark(run_log)
    assert answered > 150
    mean = benchmark.stats.stats.mean
    qps = len(log) / mean
    text = (f"Sustained keyword-query throughput (FULL_INF, "
            f"{len(log)}-query log)\n\n"
            f"mean wall time: {mean * 1000:.0f} ms\n"
            f"throughput:     {qps:,.0f} queries/s\n"
            f"answered:       {answered}/{len(log)}")
    write_result(results_dir, "query_throughput.txt", text)
    print("\n" + text)


def _serving_scale_index(doc_count: int = 12000, seed: int = 7):
    """Synthetic index with the term-frequency skew real query logs
    meet at serving scale: a handful of ubiquitous terms, a mid tier,
    and rare discriminative terms, over documents of varying length.
    The paper's 10-match corpus is small enough that every query's
    candidate set fits in a screenful — pruning has nothing to skip
    there — so the latency headline is measured here, where the
    MaxScore bounds have headroom to retire the common clauses.
    """
    from repro.search.index.inverted import InvertedIndex

    rng = random.Random(seed)
    index = InvertedIndex("serving")
    common = [f"common{i}" for i in range(8)]
    mid = [f"mid{i}" for i in range(40)]
    rare = [f"rare{i}" for i in range(120)]
    for _ in range(doc_count):
        doc_id = index.new_doc_id()
        terms, position = [], 0
        for word in rng.sample(common, rng.randint(2, 5)):
            terms.append((word, position))
            position += 1
        for word in rng.sample(mid, rng.randint(1, 4)):
            terms.append((word, position))
            position += 1
        if rng.random() < 0.6:
            terms.append((rng.choice(rare), position))
            position += 1
        for _ in range(rng.randint(0, 20)):   # vary the length norm
            terms.append((f"filler{rng.randrange(400)}", position))
            position += 1
        index.index_terms(doc_id, "body", terms)
    return index, common, mid, rare


def _serving_scale_log(common, mid, rare, count: int = 100,
                       seed: int = 11) -> list:
    """Disjunctions pairing a rare discriminative term with one or two
    ubiquitous ones — the shape MaxScore exists for."""
    from repro.search.query.queries import BooleanQuery, TermQuery

    rng = random.Random(seed)
    log = []
    for _ in range(count):
        tree = BooleanQuery()
        tree.add(TermQuery("body", rng.choice(rare)))
        tree.add(TermQuery("body", rng.choice(common)))
        if rng.random() < 0.5:
            tree.add(TermQuery("body", rng.choice(common)))
        if rng.random() < 0.3:
            tree.add(TermQuery("body", rng.choice(mid)))
        log.append(tree)
    return log


def _measure_modes(index, similarity, trees, limit, metrics):
    """Time the three serving paths over ``trees`` on one index and
    count postings read per path; returns the measurement dict plus
    the searchers (for parity checks) and the cache statistics."""
    from repro.search.searcher import IndexSearcher

    def scanned() -> int:
        return int(metrics.counter(
            "query_postings_scanned_total", "postings read").value)

    def timed(searcher_run):
        start = time.perf_counter()
        for tree in trees:
            searcher_run(tree)
        return time.perf_counter() - start

    # exhaustive baseline (oracle path; counts postings itself)
    oracle = IndexSearcher(index, similarity, cache_size=0)
    base = scanned()
    exhaustive_s = timed(lambda tree: oracle.search_exhaustive(tree, limit))
    exhaustive_scanned = scanned() - base

    # pruned top-k, cache off
    pruned_searcher = IndexSearcher(index, similarity, cache_size=0)
    base = scanned()
    pruned_s = timed(lambda tree: pruned_searcher.search(tree, limit))
    pruned_scanned = scanned() - base

    # warm result cache
    cached_searcher = IndexSearcher(index, similarity, cache_size=1024)
    for tree in trees:
        cached_searcher.search(tree, limit)
    base = scanned()
    cached_s = timed(lambda tree: cached_searcher.search(tree, limit))
    cached_scanned = scanned() - base

    queries = len(trees)
    measurement = {
        "docs": index.doc_count,
        "queries": queries,
        "limit": limit,
        "latency_ms_per_query": {
            "exhaustive": round(exhaustive_s / queries * 1000, 4),
            "pruned": round(pruned_s / queries * 1000, 4),
            "cached": round(cached_s / queries * 1000, 4),
        },
        "postings_scanned": {
            "exhaustive": exhaustive_scanned,
            "pruned": pruned_scanned,
            "cached": cached_scanned,
        },
    }
    timings = (exhaustive_s, pruned_s, cached_s)
    searchers = (oracle, pruned_searcher, cached_searcher)
    return measurement, timings, searchers


def _assert_parity(searchers, trees, limit) -> None:
    oracle, pruned_searcher, cached_searcher = searchers
    for tree in trees:
        a = oracle.search_exhaustive(tree, limit)
        b = pruned_searcher.search(tree, limit)
        c = cached_searcher.search(tree, limit)
        assert [(h.doc_id, h.score) for h in a] \
            == [(h.doc_id, h.score) for h in b] \
            == [(h.doc_id, h.score) for h in c]


def test_query_serving_modes(pipeline_result, results_dir, tmp_path):
    """Compare the three serving paths and the two index formats on
    the same run; emit ``benchmarks/results/BENCH_query.json``.

    Deliberately does NOT use the pytest-benchmark fixture so the CI
    smoke job can run it with plain pytest.  The emitted document
    records exhaustive / pruned / cached top-10 latency and postings
    scanned per path on two corpora — the serving-scale synthetic
    index (headline: where early termination has headroom) and the
    paper's 10-match corpus (where candidate sets are tiny and tie
    groups dense, so pruning saves postings but not wall time) — plus
    JSON vs binary load time for the paper's FULL_INF index.  The
    asserts hold the pruned+cached paths and the binary format to
    actually beating their baselines within this run.
    """
    from repro.core import KeywordSearchEngine
    from repro.core.observability import (Observability, get_observability,
                                          install_observability)
    from repro.search.index import load_index, save_index
    from repro.search.searcher import IndexSearcher
    from repro.search.similarity import ClassicSimilarity

    limit = 10
    paper_index = pipeline_result.index(IndexName.FULL_INF)
    engine = KeywordSearchEngine(paper_index)
    paper_trees = [engine.build_query(text) for text in _query_log(200)]
    scale_index, common, mid, rare = _serving_scale_index()
    scale_trees = _serving_scale_log(common, mid, rare)

    previous = install_observability(Observability(metrics=True))
    try:
        metrics = get_observability().metrics
        scale, scale_timings, scale_searchers = _measure_modes(
            scale_index, ClassicSimilarity(), scale_trees, limit, metrics)
        paper, paper_timings, paper_searchers = _measure_modes(
            paper_index, engine.searcher.similarity, paper_trees, limit,
            metrics)
        cache_info = paper_searchers[2].cache.cache_info()
    finally:
        install_observability(previous)

    # results must stay bit-identical across paths
    _assert_parity(scale_searchers, scale_trees[:25], limit)
    _assert_parity(paper_searchers, paper_trees[:25], limit)

    # index load: JSON vs binary (lazy header-only decode)
    json_path = save_index(paper_index, tmp_path / "json", format="json")
    binary_path = save_index(paper_index, tmp_path / "binary",
                             format="binary")
    start = time.perf_counter()
    load_index(tmp_path / "json", paper_index.name)
    json_load_s = time.perf_counter() - start
    start = time.perf_counter()
    load_index(tmp_path / "binary", paper_index.name)
    binary_load_s = time.perf_counter() - start

    scale["synthetic"] = True
    paper["result_cache"] = {"hits": cache_info.hits,
                             "misses": cache_info.misses,
                             "entries": cache_info.currsize}
    document = {
        "corpus": {"docs": scale["docs"], "queries": scale["queries"],
                   "limit": limit, "synthetic": True},
        "latency_ms_per_query": scale["latency_ms_per_query"],
        "postings_scanned": scale["postings_scanned"],
        "paper_corpus": paper,
        "index_load": {
            "json_bytes": json_path.stat().st_size,
            "binary_bytes": binary_path.stat().st_size,
            "json_load_ms": round(json_load_s * 1000, 3),
            "binary_load_ms": round(binary_load_s * 1000, 3),
        },
    }
    write_result(results_dir, "BENCH_query.json",
                 json.dumps(document, indent=2) + "\n")
    print("\n" + json.dumps(document, indent=2))

    # the optimized paths must beat their baselines, same run
    scale_exhaustive_s, scale_pruned_s, scale_cached_s = scale_timings
    assert scale["postings_scanned"]["pruned"] \
        < scale["postings_scanned"]["exhaustive"]
    assert scale["postings_scanned"]["cached"] == 0
    assert scale_pruned_s < scale_exhaustive_s
    assert scale_cached_s < scale_pruned_s

    # the paper corpus is too small for wall-time pruning wins (every
    # candidate set is tiny), but pruning must still read fewer
    # postings and the cache must beat both scoring paths
    paper_exhaustive_s, paper_pruned_s, paper_cached_s = paper_timings
    assert paper["postings_scanned"]["pruned"] \
        < paper["postings_scanned"]["exhaustive"]
    assert paper["postings_scanned"]["cached"] == 0
    assert paper_cached_s < paper_exhaustive_s
    assert paper_cached_s < paper_pruned_s

    assert binary_load_s < json_load_s
    assert binary_path.stat().st_size < json_path.stat().st_size
