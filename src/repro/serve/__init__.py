"""The online serving layer (HTTP/JSON over the search facade).

See :mod:`repro.serve.service` for the endpoint surface and
:mod:`repro.serve.ingest` for the live-ingestion path.
"""

from repro.serve.ingest import (IngestWorker, MaintenanceThread,
                                match_from_json, match_to_json)
from repro.serve.service import ReproService, ServiceConfig

__all__ = [
    "IngestWorker",
    "MaintenanceThread",
    "ReproService",
    "ServiceConfig",
    "match_from_json",
    "match_to_json",
]
