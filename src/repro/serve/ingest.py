"""Live ingestion: posted match events → committed delta segments.

One ``POST /ingest`` carries one match (its facts plus minute-by-minute
narrations) as JSON.  :func:`match_from_json` turns the payload back
into the :class:`~repro.soccer.crawler.CrawledMatch` crawl artifact the
offline pipeline consumes, and the :class:`IngestWorker` runs the
exact per-match steps 2–8 (:class:`~repro.core.parallel.MatchProcessor`
— IE, population, reasoning, semantic indexing), then seals the
resulting mini-indexes as **one delta segment per index variant** via
:meth:`IndexDirectory.add_index` and refreshes the serving
:class:`~repro.search.index.segments.SegmentedIndex` handles.  From
commit to searchable is one manifest swap: in-flight queries keep
their pinned snapshot, the next query sees the new generation.

A separate :class:`MaintenanceThread` amortizes the write side's
segment churn: every interval it runs the tiered merge policy, vacuums
superseded files (safe under pinned readers — POSIX keeps unlinked
mmaps alive), and refreshes the serving handles so externally
committed generations are picked up too.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import CrawlError
from repro.search.index.segments import IndexDirectory, SegmentedIndex
from repro.soccer.crawler import (BookingFact, CrawledMatch, GoalFact,
                                  LineupEntry, SubstitutionFact)
from repro.soccer.narration import Narration

__all__ = ["match_to_json", "match_from_json", "IngestWorker",
           "MaintenanceThread"]


# ----------------------------------------------------------------------
# the wire codec: CrawledMatch <-> JSON
# ----------------------------------------------------------------------

def match_to_json(crawled: CrawledMatch) -> dict:
    """Serialize one crawl artifact for ``POST /ingest``."""
    return {
        "match_id": crawled.match_id,
        "competition": crawled.competition,
        "date": crawled.date,
        "kick_off": crawled.kick_off,
        "stadium": crawled.stadium,
        "referee": crawled.referee,
        "home_team": crawled.home_team,
        "away_team": crawled.away_team,
        "home_score": crawled.home_score,
        "away_score": crawled.away_score,
        "lineups": {team: [{"name": entry.name,
                            "full_name": entry.full_name,
                            "shirt_number": entry.shirt_number,
                            "position": entry.position,
                            "starter": entry.starter}
                           for entry in entries]
                    for team, entries in crawled.lineups.items()},
        "goals": [{"minute": fact.minute, "scorer": fact.scorer,
                   "team": fact.team, "kind": fact.kind,
                   "source_id": fact.source_id}
                  for fact in crawled.goals],
        "substitutions": [{"minute": fact.minute, "team": fact.team,
                           "player_in": fact.player_in,
                           "player_out": fact.player_out,
                           "source_id": fact.source_id}
                          for fact in crawled.substitutions],
        "bookings": [{"minute": fact.minute, "team": fact.team,
                      "player": fact.player, "color": fact.color,
                      "source_id": fact.source_id}
                     for fact in crawled.bookings],
        "narrations": [{"minute": line.minute, "text": line.text,
                        "event_id": line.event_id}
                       for line in crawled.narrations],
    }


def _require(data: Mapping, key: str):
    try:
        return data[key]
    except KeyError:
        raise CrawlError(f"ingest payload missing {key!r}") from None


def match_from_json(data: Mapping) -> CrawledMatch:
    """Parse an ingest payload back into a validated
    :class:`CrawledMatch`.  Raises :class:`~repro.errors.CrawlError`
    on structurally unsound payloads (the service maps that to 400)."""
    if not isinstance(data, Mapping):
        raise CrawlError(f"ingest payload must be a JSON object, "
                         f"got {type(data).__name__}")
    try:
        crawled = CrawledMatch(
            match_id=str(_require(data, "match_id")),
            competition=str(data.get("competition", "")),
            date=str(data.get("date", "")),
            kick_off=str(data.get("kick_off", "")),
            stadium=str(data.get("stadium", "")),
            referee=str(data.get("referee", "")),
            home_team=str(_require(data, "home_team")),
            away_team=str(_require(data, "away_team")),
            home_score=int(data.get("home_score", 0)),
            away_score=int(data.get("away_score", 0)),
            lineups={
                str(team): [LineupEntry(
                    name=str(_require(entry, "name")),
                    full_name=str(entry.get("full_name",
                                            entry.get("name", ""))),
                    shirt_number=int(entry.get("shirt_number", 0)),
                    position=str(entry.get("position", "")),
                    starter=bool(entry.get("starter", True)))
                    for entry in entries]
                for team, entries in dict(data.get("lineups",
                                                   {})).items()},
            goals=[GoalFact(
                minute=int(_require(fact, "minute")),
                scorer=str(fact.get("scorer", "")),
                team=str(fact.get("team", "")),
                kind=str(fact.get("kind", "goal")),
                source_id=str(fact.get("source_id", "")))
                for fact in data.get("goals", ())],
            substitutions=[SubstitutionFact(
                minute=int(_require(fact, "minute")),
                team=str(fact.get("team", "")),
                player_in=str(fact.get("player_in", "")),
                player_out=str(fact.get("player_out", "")),
                source_id=str(fact.get("source_id", "")))
                for fact in data.get("substitutions", ())],
            bookings=[BookingFact(
                minute=int(_require(fact, "minute")),
                team=str(fact.get("team", "")),
                player=str(fact.get("player", "")),
                color=str(fact.get("color", "yellow")),
                source_id=str(fact.get("source_id", "")))
                for fact in data.get("bookings", ())],
            narrations=[Narration(
                minute=int(_require(line, "minute")),
                text=str(_require(line, "text")),
                event_id=(str(line["event_id"])
                          if line.get("event_id") is not None
                          else None))
                for line in _require(data, "narrations")],
        )
    except (TypeError, ValueError, AttributeError) as error:
        raise CrawlError(f"malformed ingest payload: {error}") from error
    return crawled.validate()


# ----------------------------------------------------------------------
# the ingest worker
# ----------------------------------------------------------------------

def _metrics():
    from repro.core.observability import get_observability
    return get_observability().metrics


class IngestWorker:
    """One background thread turning queued matches into committed
    delta segments.

    The HTTP handler only enqueues (``/ingest`` answers 202 in
    microseconds); this thread runs the expensive steps 2–8 and the
    commits.  One match becomes one segment per index directory —
    commits happen index-by-index, each a single atomic manifest
    rename, and the serving handles refresh after the last one so a
    query never sees a half-ingested match spread across variants
    mid-flight (each individual index is always complete; the refresh
    just keeps the variants moving together).
    """

    def __init__(self, directories: Mapping[str, IndexDirectory],
                 indexes: Mapping[str, SegmentedIndex],
                 on_commit: Optional[Callable[[CrawledMatch], None]]
                 = None,
                 metrics=None,
                 naive_inference: bool = False) -> None:
        self.directories = dict(directories)
        self.indexes = dict(indexes)
        self.on_commit = on_commit
        self.metrics = metrics if metrics is not None else _metrics()
        self.naive_inference = naive_inference
        self._queue: "queue.Queue" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._processor = None      # built lazily, in the worker
        self._lock = threading.Lock()
        self.ingested = 0
        self.failed = 0
        self.documents_added = 0
        self.last_error: Optional[str] = None
        self.match_ids: List[str] = []

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("ingest worker already started")
        self._thread = threading.Thread(target=self._run,
                                        name="serve-ingest",
                                        daemon=True)
        self._thread.start()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> bool:
        """Stop the worker.  ``drain=True`` processes everything
        already queued first (accepted events are not lost on a
        graceful shutdown); returns False when the drain timed out."""
        if self._thread is None:
            return True
        if not drain:
            # unprocessed items are dropped: swap the queue out so the
            # sentinel is the next thing the worker sees.
            self._queue = queue.Queue()
        self._queue.put(None)
        self._thread.join(timeout=timeout)
        alive = self._thread.is_alive()
        if not alive:
            self._thread = None
        return not alive

    # -- the request side ----------------------------------------------

    def submit(self, crawled: CrawledMatch) -> int:
        """Enqueue one validated match; returns the queue depth after
        the append (what ``/ingest`` reports back)."""
        self._queue.put(crawled)
        depth = self.queue_depth
        if self.metrics.enabled:
            self.metrics.counter("serve_ingest_submitted_total",
                                 "matches accepted by POST /ingest"
                                 ).inc()
            self.metrics.gauge("serve_ingest_queue_depth",
                               "matches waiting for the ingest worker"
                               ).set(depth)
        return depth

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # -- the worker side -----------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            try:
                self._ingest_one(item)
            except Exception as error:   # noqa: BLE001 — reported
                with self._lock:
                    self.failed += 1
                    self.last_error = f"{type(error).__name__}: {error}"
                if self.metrics.enabled:
                    self.metrics.counter(
                        "serve_ingest_failures_total",
                        "matches that failed mid-ingest").inc()
            finally:
                if self.metrics.enabled:
                    self.metrics.gauge(
                        "serve_ingest_queue_depth",
                        "matches waiting for the ingest worker"
                        ).set(self.queue_depth)

    def _ingest_one(self, crawled: CrawledMatch) -> None:
        from repro.core.parallel import MatchProcessor, MatchTask
        if self._processor is None:
            self._processor = MatchProcessor()
        started = time.perf_counter()
        partial = self._processor.process(MatchTask(
            position=0, crawled=crawled,
            naive_inference=self.naive_inference))
        build_seconds = time.perf_counter() - started

        commit_started = time.perf_counter()
        docs = 0
        for name, directory in self.directories.items():
            mini = partial.indexes.get(name)
            if mini is None or mini.doc_count == 0:
                continue
            directory.add_index(mini)
            docs += mini.doc_count
        for index in self.indexes.values():
            index.refresh()
        commit_seconds = time.perf_counter() - commit_started

        with self._lock:
            self.ingested += 1
            self.documents_added += docs
            self.match_ids.append(crawled.match_id)
        if self.on_commit is not None:
            self.on_commit(crawled)
        if self.metrics.enabled:
            self.metrics.counter("serve_ingested_matches_total",
                                 "matches ingested to searchable"
                                 ).inc()
            self.metrics.counter("serve_ingested_documents_total",
                                 "documents added by live ingestion"
                                 ).inc(docs)
            self.metrics.histogram(
                "serve_ingest_seconds",
                "posted match → committed+refreshed wall seconds",
                buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)
                ).observe(build_seconds + commit_seconds)
            self.metrics.counter(
                "serve_ingest_commit_seconds_total",
                "wall seconds sealing/committing delta segments"
                ).inc(commit_seconds)

    def stats(self) -> dict:
        with self._lock:
            return {
                "queued": self.queue_depth,
                "ingested": self.ingested,
                "failed": self.failed,
                "documents_added": self.documents_added,
                "last_error": self.last_error,
            }


# ----------------------------------------------------------------------
# background maintenance
# ----------------------------------------------------------------------

class MaintenanceThread:
    """Periodic tiered merges + vacuum + refresh over the serving
    directories.

    Live ingestion produces one small segment per match; without
    merging, scatter-gather costs grow linearly with matches served.
    Every ``interval`` seconds this thread runs
    :meth:`IndexDirectory.merge` (tiered policy — cheap no-op when no
    tier is full), vacuums superseded files after a merge, and
    refreshes the serving handles.  Vacuum under pinned readers is
    safe: an unlinked segment file stays readable through its mmap
    until the last pin drops.
    """

    def __init__(self, directories: Mapping[str, IndexDirectory],
                 indexes: Mapping[str, SegmentedIndex],
                 interval: float = 5.0,
                 merge_factor: int = 8,
                 vacuum: bool = True,
                 on_refresh: Optional[Callable[[], None]] = None,
                 metrics=None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, "
                             f"got {interval}")
        self.directories = dict(directories)
        self.indexes = dict(indexes)
        self.interval = interval
        self.merge_factor = merge_factor
        self.vacuum = vacuum
        self.on_refresh = on_refresh
        self.metrics = metrics if metrics is not None else _metrics()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.cycles = 0
        self.merges = 0

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("maintenance thread already started")
        self._thread = threading.Thread(target=self._run,
                                        name="serve-maintenance",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> bool:
        if self._thread is None:
            return True
        self._stop.set()
        self._thread.join(timeout=timeout)
        alive = self._thread.is_alive()
        if not alive:
            self._thread = None
        return not alive

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.run_once()
            except Exception:    # noqa: BLE001 — keep the loop alive
                if self.metrics.enabled:
                    self.metrics.counter(
                        "serve_maintenance_failures_total",
                        "maintenance cycles that raised").inc()

    def run_once(self) -> int:
        """One maintenance cycle; returns merges performed."""
        merges = 0
        for name, directory in self.directories.items():
            done = directory.merge(merge_factor=self.merge_factor)
            merges += done
            if done and self.vacuum:
                directory.vacuum()
        refreshed = False
        for index in self.indexes.values():
            if index.refresh():
                refreshed = True
        if refreshed and self.on_refresh is not None:
            self.on_refresh()
        self.cycles += 1
        self.merges += merges
        if self.metrics.enabled:
            self.metrics.counter("serve_maintenance_cycles_total",
                                 "background maintenance cycles"
                                 ).inc()
            if merges:
                self.metrics.counter(
                    "serve_maintenance_merges_total",
                    "tiered merges performed by maintenance"
                    ).inc(merges)
        return merges
