"""The online serving layer: an HTTP/JSON face over the facade.

:class:`ReproService` converts a ``build --segmented`` output
directory into a long-running retrieval service — the paper's online
half finally shaped like one:

* ``POST /search`` — one query through the full
  :class:`~repro.app.SemanticSearchApplication` stack (spell
  correction, phrasal routing, learned feedback expansions,
  snippets), or through a single named raw index when the request
  carries ``"index"`` (the evaluation/benchmark path — golden Tables
  4–6 reproduce bit-identically through it).
* ``POST /feedback`` — record a click; learned expansions refresh.
* ``POST /ingest`` — accept one match's crawl artifact, answer 202,
  and hand it to the :class:`~repro.serve.ingest.IngestWorker`, which
  commits it as delta segments and refreshes the serving handles.
* ``GET /metrics`` — Prometheus text exposition of the metrics
  registry (query latency, cache, segment and ``serve_*`` series).
* ``GET /healthz`` — liveness plus index generations and ingest
  counters; 503 while draining so load balancers stop routing first.

Everything is stdlib: :class:`http.server.ThreadingHTTPServer` with
``block_on_close`` and non-daemon handler threads, so
:meth:`ReproService.stop` drains in-flight requests before index
handles close.  Queries are safe against concurrent refresh because
every multi-call read path pins one snapshot
(:meth:`SegmentedIndex.pinned`) for its whole execution.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from dataclasses import dataclass, field
from http.server import (BaseHTTPRequestHandler, HTTPServer,
                         ThreadingHTTPServer)
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.app import SemanticSearchApplication
from repro.core import (ExpandedSearchEngine, IndexName,
                        KeywordSearchEngine, PhrasalSearchEngine,
                        SearchHit)
from repro.core.expansion import QueryExpander
from repro.core.observability import MetricsRegistry, get_observability
from repro.errors import CrawlError, ReproError
from repro.search import load_index
from repro.search.index.directory import list_indexes
from repro.search.searcher import QueryResultCache
from repro.search.index.segments import IndexDirectory, SegmentedIndex
from repro.serve.ingest import (IngestWorker, MaintenanceThread,
                                match_from_json)

__all__ = ["ServiceConfig", "ReproService"]

PathLike = Union[str, Path]

#: latency buckets for the request histogram (seconds).
_REQUEST_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                    0.25, 0.5, 1.0, 2.5)


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` is configured by."""

    index_dir: PathLike
    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests); read the real one off
    #: :attr:`ReproService.port` after :meth:`ReproService.start`.
    port: int = 0
    merge_factor: int = 8
    #: seconds between background merge/vacuum/refresh cycles.
    maintenance_interval: float = 5.0
    feedback_min_support: int = 3
    #: seconds :meth:`ReproService.stop` waits for the ingest queue
    #: to drain before giving up.
    drain_timeout: float = 30.0
    #: run background maintenance (tests sometimes drive
    #: :meth:`MaintenanceThread.run_once` by hand instead).
    maintenance: bool = True
    #: fixed HTTP worker pool size.  With HTTP/1.1 keep-alive a
    #: worker is held for a connection's lifetime, so this bounds
    #: concurrent *connections*, not just in-flight requests — keep
    #: it above the expected client concurrency.
    http_workers: int = 16
    #: accepted connections waiting for a worker; beyond this the
    #: server answers 503 immediately instead of queueing unboundedly.
    http_queue: int = 64
    #: entries in the serialized-response byte cache (0 disables).
    response_cache_size: int = 512


class _JsonError(Exception):
    """An error with an HTTP status attached."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_REJECT_BODY = b'{"error": "server overloaded, request queue full"}'
_REJECT_RESPONSE = (b"HTTP/1.1 503 Service Unavailable\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: "
                    + str(len(_REJECT_BODY)).encode("ascii")
                    + b"\r\nConnection: close\r\n\r\n" + _REJECT_BODY)


class _PooledHTTPServer(ThreadingHTTPServer):
    """HTTP server with a **fixed worker pool** and a bounded accept
    queue, replacing ``ThreadingMixIn``'s thread-per-connection.

    Under a thundering herd the mixin spawns one OS thread per
    connection — unbounded memory and scheduler churn exactly when
    the process is busiest.  Here ``serve_forever`` only accepts and
    enqueues; a fixed set of workers drains the queue.  When the
    queue is full the connection is answered with an immediate 503
    (load shedding) instead of queueing without limit, so tail
    latency stays bounded by queue capacity, not arrival rate.
    """

    def __init__(self, address, handler, workers: int,
                 queue_size: int, metrics) -> None:
        super().__init__(address, handler)
        self._pool: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self._depth_gauge = (metrics.gauge(
            "serve_queue_depth",
            "accepted connections waiting for an HTTP worker")
            if metrics.enabled else None)
        self._rejected = (metrics.counter(
            "serve_rejected_total",
            "connections shed with an immediate 503 (queue full)")
            if metrics.enabled else None)
        self._workers = [
            threading.Thread(target=self._work,
                             name=f"serve-worker-{number}", daemon=True)
            for number in range(max(1, workers))]
        for worker in self._workers:
            worker.start()

    # accept path (the serve_forever thread) — never blocks on work
    def process_request(self, request, client_address) -> None:
        try:
            self._pool.put_nowait((request, client_address))
        except queue.Full:
            if self._rejected is not None:
                self._rejected.inc()
            try:
                request.sendall(_REJECT_RESPONSE)
            except OSError:          # client already gone
                pass
            self.shutdown_request(request)
            return
        if self._depth_gauge is not None:
            self._depth_gauge.set(self._pool.qsize())

    def _work(self) -> None:
        while True:
            item = self._pool.get()
            if item is None:
                return
            if self._depth_gauge is not None:
                self._depth_gauge.set(self._pool.qsize())
            # ThreadingMixIn's per-request body: finish_request +
            # shutdown_request with handle_error on failure
            self.process_request_thread(*item)

    def server_close(self) -> None:
        """Drain queued connections, then stop the workers.  Sentinels
        queue *behind* pending connections, so every accepted request
        is served before its worker exits — the graceful-drain
        contract ``ReproService.stop`` relies on."""
        for _ in self._workers:
            try:
                self._pool.put(None, timeout=5.0)
            except queue.Full:       # pragma: no cover - stuck worker
                break
        for worker in self._workers:
            worker.join(timeout=10.0)
        HTTPServer.server_close(self)


class ReproService:
    """One serving process over one index directory.

    Owns the application facade, the per-variant raw engines, the
    ingest worker, the maintenance thread and the HTTP server.
    Usable as a context manager::

        with ReproService(ServiceConfig("var/indexes")) as service:
            print(f"listening on {service.url}")
            service.serve_forever()       # until KeyboardInterrupt
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        obs = get_observability()
        #: the process-wide registry when observability is installed
        #: (the CLI does that), else a private enabled one so
        #: ``/metrics`` always has the ``serve_*`` series.
        self.metrics = (obs.metrics if obs.metrics.enabled
                        else MetricsRegistry(enabled=True))

        directory = Path(config.index_dir)
        #: every index variant present on disk, duck-typed.
        self.indexes: Dict[str, Any] = {}
        for name in IndexName.BUILT:
            if name in list_indexes(directory):
                self.indexes[name] = load_index(directory, name)
        if IndexName.FULL_INF not in self.indexes:
            raise ReproError(
                f"no {IndexName.FULL_INF} index in {directory} — "
                f"run `repro build --segmented -o {directory}` first")

        self.app = SemanticSearchApplication(
            self.indexes[IndexName.FULL_INF],
            self.indexes.get(IndexName.PHR_EXP),
            feedback_min_support=config.feedback_min_support)

        #: raw per-variant engines for explicit-index requests (the
        #: evaluation path: no spell/feedback interference, identical
        #: scoring to the offline harness).
        self.engines: Dict[str, Any] = {}
        for name, index in self.indexes.items():
            if name == IndexName.PHR_EXP:
                self.engines[name] = PhrasalSearchEngine(index)
            else:
                self.engines[name] = KeywordSearchEngine(index)
        if IndexName.TRAD in self.indexes:
            from repro.ontology import soccer_ontology
            from repro.reasoning import Reasoner
            from repro.reasoning.rules import soccer_rules
            ontology = soccer_ontology()
            reasoner = Reasoner(ontology, soccer_rules())
            self.engines[IndexName.QUERY_EXP] = ExpandedSearchEngine(
                self.indexes[IndexName.TRAD],
                QueryExpander(ontology, taxonomy=reasoner.taxonomy))

        segmented = {name: index
                     for name, index in self.indexes.items()
                     if isinstance(index, SegmentedIndex)}
        directories = {name: index.directory
                       for name, index in segmented.items()}
        self.ingest = IngestWorker(directories, segmented,
                                   metrics=self.metrics)
        self.maintenance = MaintenanceThread(
            directories, segmented,
            interval=config.maintenance_interval,
            merge_factor=config.merge_factor,
            metrics=self.metrics)

        #: encode-once responses: (index, query, limit, generation)
        #: -> serialized JSON bytes.  The generation component keys
        #: the entry to the snapshot that produced it, so live ingest
        #: invalidates implicitly, like the query result cache.
        self.response_cache = QueryResultCache(
            maxsize=config.response_cache_size, shards=8)

        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._draining = False
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise ReproError("service not started")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "ReproService":
        """Bind, start the HTTP server + background threads."""
        if self._server is not None:
            raise ReproError("service already started")
        handler = _make_handler(self)
        server = _PooledHTTPServer(
            (self.config.host, self.config.port), handler,
            workers=self.config.http_workers,
            queue_size=self.config.http_queue,
            metrics=self.metrics)
        self._server = server
        self._server_thread = threading.Thread(
            target=server.serve_forever, name="serve-http",
            daemon=True)
        self._server_thread.start()
        self.ingest.start()
        if self.config.maintenance:
            self.maintenance.start()
        self._started_at = time.monotonic()
        return self

    def serve_forever(self) -> None:
        """Block until the server thread exits (Ctrl-C stops it)."""
        if self._server_thread is None:
            raise ReproError("service not started")
        while self._server_thread.is_alive():
            self._server_thread.join(timeout=0.5)

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight
        requests, drain the ingest queue, stop maintenance, release
        the index mmaps.  Idempotent."""
        if self._server is None:
            return
        self._draining = True
        self._server.shutdown()
        self._server.server_close()      # joins handler threads
        if self._server_thread is not None:
            self._server_thread.join(timeout=10.0)
        self._server = None
        self._server_thread = None
        self.ingest.stop(drain=True, timeout=self.config.drain_timeout)
        self.maintenance.stop()
        self.app.close()
        for index in self.indexes.values():
            close = getattr(index, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ReproService":
        return self.start() if self._server is None else self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # endpoint bodies (handler methods delegate here; unit tests can
    # call these without any socket)
    # ------------------------------------------------------------------

    @staticmethod
    def _hit_json(hit: SearchHit) -> dict:
        return {"doc_key": hit.doc_key, "score": hit.score,
                "event_type": hit.event_type,
                "narration": hit.narration}

    @staticmethod
    def _validate_search(payload: dict):
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            raise _JsonError(400, "body must carry a non-empty "
                                  "string 'query'")
        limit = payload.get("limit", 10)
        if limit is not None and (not isinstance(limit, int)
                                  or isinstance(limit, bool)
                                  or limit < 1):
            raise _JsonError(400, "'limit' must be a positive "
                                  "integer or null (unlimited)")
        return query, limit

    def handle_search_bytes(self, payload: dict) -> bytes:
        """``POST /search`` with **encode-once** responses.

        On the raw-index path the serialized JSON bytes are cached
        keyed by (index, query, limit, generation): a repeat of a hot
        query skips query parsing, the result cache, hit
        materialization *and* ``json.dumps`` — the handler writes the
        same bytes straight to the socket.  The generation read is
        monotonic, so a response served from this cache is exactly
        the one a fresh search against the current snapshot would
        have encoded.  The facade path (spell correction, feedback
        expansions — state the generation does not capture) and
        engines without :meth:`search_detailed` fall through to a
        plain encode.
        """
        query, limit = self._validate_search(payload)
        index_name = payload.get("index")
        engine = (self.engines.get(index_name)
                  if index_name is not None else None)
        if (index_name is not None and engine is not None
                and hasattr(engine, "search_detailed")):
            key = (index_name, query, limit,
                   self.indexes[index_name].generation)
            body = self.response_cache.get(key)
            metered = self.metrics.enabled
            if metered:
                self.metrics.counter(
                    "serve_response_cache_%s_total"
                    % ("hits" if body is not None else "misses"),
                    "serialized-response byte cache traffic").inc()
            if body is not None:
                return body
            hits, top = engine.search_detailed(query, limit=limit)
            body = json.dumps(
                {"query": query, "index": index_name,
                 "count": len(hits),
                 "hits": [self._hit_json(hit)
                          for hit in hits]}).encode("utf-8")
            # key on the generation the query actually pinned — under
            # a concurrent refresh that may be newer than the one we
            # probed with, never older
            self.response_cache.put(
                (index_name, query, limit, top.generation), body)
            return body
        return json.dumps(self.handle_search(payload)).encode("utf-8")

    def handle_search(self, payload: dict) -> dict:
        query, limit = self._validate_search(payload)
        index_name = payload.get("index")
        if index_name is not None:
            engine = self.engines.get(index_name)
            if engine is None:
                raise _JsonError(
                    400, f"unknown index {index_name!r} "
                         f"(have {sorted(self.engines)})")
            hits = engine.search(query, limit=limit)
            return {"query": query, "index": index_name,
                    "count": len(hits),
                    "hits": [self._hit_json(hit) for hit in hits]}
        response = self.app.search(
            query, limit=limit,
            spell_correct=bool(payload.get("spell_correct", True)),
            snippets=bool(payload.get("snippets", True)))
        return {"query": response.query,
                "original_query": response.original_query,
                "corrected": response.corrected,
                "phrasal": response.phrasal,
                "count": len(response.hits),
                "hits": [self._hit_json(hit)
                         for hit in response.hits],
                "snippets": response.snippets}

    def handle_feedback(self, payload: dict) -> dict:
        query = payload.get("query")
        doc_key = payload.get("doc_key")
        if not isinstance(query, str) or not isinstance(doc_key, str):
            raise _JsonError(400, "body must carry string 'query' "
                                  "and 'doc_key'")
        self.app.feedback(query, doc_key)
        return {"recorded": True,
                "clicks": len(self.app.feedback_engine.store),
                "learned_terms": len(self.app.learned_expansions)}

    def handle_ingest(self, payload: dict) -> dict:
        if not self.ingest.directories:
            raise _JsonError(
                409, "index directory is not segmented — live "
                     "ingestion needs a `build --segmented` output")
        try:
            crawled = match_from_json(payload)
        except CrawlError as error:
            raise _JsonError(400, str(error)) from error
        depth = self.ingest.submit(crawled)
        return {"match_id": crawled.match_id, "accepted": True,
                "queued": depth}

    def handle_healthz(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": (time.monotonic() - self._started_at
                               if self._started_at is not None
                               else 0.0),
            "indexes": {name: {"generation": index.generation,
                               "doc_count": index.doc_count}
                        for name, index in self.indexes.items()},
            "ingest": self.ingest.stats(),
            "maintenance": {"cycles": self.maintenance.cycles,
                            "merges": self.maintenance.merges},
        }

    def handle_metrics(self) -> str:
        return self.metrics.to_prometheus()

    # -- instrumentation ------------------------------------------------

    def observe_request(self, endpoint: str, status: int,
                        seconds: float) -> None:
        if not self.metrics.enabled:
            return
        self.metrics.counter("serve_requests_total",
                             "HTTP requests served",
                             endpoint=endpoint, status=status).inc()
        self.metrics.histogram("serve_request_seconds",
                               "HTTP request wall seconds",
                               buckets=_REQUEST_BUCKETS,
                               endpoint=endpoint).observe(seconds)


def _make_handler(service: ReproService):
    """One handler class bound to ``service``.

    ``BaseHTTPRequestHandler`` instantiates per request, so state
    lives on the service; the closure avoids a module-level global.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"    # keep-alive for loadgen
        server_version = "repro-serve"

        # -- plumbing ---------------------------------------------------

        def log_message(self, format: str, *args) -> None:
            pass                         # metrics, not stderr noise

        def _send_json(self, status: int, payload: dict) -> None:
            self._send_body(status, json.dumps(payload).encode("utf-8"))

        def _send_body(self, status: int, body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, text: str,
                       content_type: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                raise _JsonError(400, "request body required")
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as error:
                raise _JsonError(
                    400, f"invalid JSON body: {error}") from error
            if not isinstance(payload, dict):
                raise _JsonError(400, "body must be a JSON object")
            return payload

        def _dispatch(self, endpoint: str, func) -> None:
            started = time.perf_counter()
            status = 500
            try:
                result = func()
                status = 202 if endpoint == "ingest" else 200
                if isinstance(result, bytes):   # pre-encoded response
                    self._send_body(status, result)
                else:
                    self._send_json(status, result)
            except _JsonError as error:
                status = error.status
                self._send_json(status, {"error": str(error)})
            except BrokenPipeError:      # client went away mid-write
                status = 499
            except Exception as error:   # noqa: BLE001 — 500 + detail
                self._send_json(500, {
                    "error": f"{type(error).__name__}: {error}"})
            finally:
                service.observe_request(endpoint, status,
                                        time.perf_counter() - started)

        # -- routes -----------------------------------------------------

        def do_POST(self) -> None:       # noqa: N802 — http.server API
            routes = {"/search": service.handle_search_bytes,
                      "/feedback": service.handle_feedback,
                      "/ingest": service.handle_ingest}
            handler = routes.get(self.path)
            if handler is None:
                self._send_json(404, {"error":
                                      f"no such endpoint {self.path}"})
                return
            endpoint = self.path.lstrip("/")
            self._dispatch(endpoint,
                           lambda: handler(self._read_json()))

        def do_GET(self) -> None:        # noqa: N802 — http.server API
            started = time.perf_counter()
            if self.path == "/metrics":
                self._send_text(200, service.handle_metrics(),
                                "text/plain; version=0.0.4")
                service.observe_request(
                    "metrics", 200, time.perf_counter() - started)
            elif self.path == "/healthz":
                status = 503 if service._draining else 200
                self._send_json(status, service.handle_healthz())
                service.observe_request(
                    "healthz", status, time.perf_counter() - started)
            else:
                self._send_json(404, {"error":
                                      f"no such endpoint {self.path}"})

        def do_PUT(self) -> None:        # noqa: N802 — http.server API
            self._send_json(405, {"error": "method not allowed"})

        do_DELETE = do_PUT

    return Handler
