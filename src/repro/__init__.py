"""repro — ontology-based retrieval with semantic indexing.

A from-scratch Python reproduction of *"An ontology-based retrieval
system using semantic indexing"* (Kara et al.): a complete pipeline
from (simulated) crawl through information extraction, ontology
population, reasoning and rules, down to a keyword-searchable semantic
inverted index, plus the paper's full evaluation.

Quickstart::

    from repro import standard_corpus, SemanticRetrievalPipeline

    corpus = standard_corpus()
    pipeline = SemanticRetrievalPipeline()
    result = pipeline.run(corpus.crawled)
    for hit in result.engine("FULL_INF").search("messi goal", limit=5):
        print(hit.score, hit.event_type, hit.narration)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from repro.app import SearchResponse, SemanticSearchApplication
from repro.core import (ExpandedSearchEngine, IndexName,
                        KeywordSearchEngine, PhrasalSearchEngine,
                        PipelineResult, QueryExpander, SearchHit,
                        SemanticIndexer, SemanticRetrievalPipeline)
from repro.evaluation import EvaluationHarness, render_table
from repro.ontology import soccer_ontology
from repro.reasoning import Reasoner
from repro.soccer import Corpus, standard_corpus

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "standard_corpus",
    "Corpus",
    "soccer_ontology",
    "Reasoner",
    "SemanticRetrievalPipeline",
    "PipelineResult",
    "IndexName",
    "SemanticIndexer",
    "KeywordSearchEngine",
    "SearchHit",
    "QueryExpander",
    "ExpandedSearchEngine",
    "PhrasalSearchEngine",
    "EvaluationHarness",
    "render_table",
    "SemanticSearchApplication",
    "SearchResponse",
]
