"""Ontology population: crawl artifacts + IE output → per-match ABoxes."""

from repro.population.mapper import (RoleMapping, event_class_uri,
                                     iri_slug, role_mapping)
from repro.population.populator import OntologyPopulator

__all__ = [
    "OntologyPopulator",
    "RoleMapping",
    "role_mapping",
    "event_class_uri",
    "iri_slug",
]
