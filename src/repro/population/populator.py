"""Ontology population (paper §3.4).

Builds one independent ABox per match — the paper's scalability design
("we keep each soccer game separate from each other and run the
inferencing separately", §3.5).  Two modes mirror the paper's index
ladder:

* :meth:`OntologyPopulator.populate_basic` — only the crawled *basic
  information* (match structure, line-ups, goals, substitutions,
  bookings); every narration additionally becomes an ``UnknownEvent``
  individual carrying its free text.  This is the model behind the
  BASIC_EXT index.
* :meth:`OntologyPopulator.populate_full` — the IE module's extracted
  events (typed, with subject/object roles) instead of the raw basic
  facts.  This is the model behind FULL_EXT, and — after the reasoner
  runs — FULL_INF.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.rdf.namespace import SOCCER
from repro.rdf.term import Literal, URIRef
from repro.errors import PopulationError
from repro.extraction.events import ExtractedEvent
from repro.ontology.model import Individual, Ontology
from repro.population.mapper import (event_class_uri, iri_slug,
                                     role_mapping)
from repro.soccer.crawler import CrawledMatch
from repro.soccer.domain import EventKind, Position

__all__ = ["OntologyPopulator"]


class OntologyPopulator:
    """Populates per-match ABoxes against a shared TBox."""

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def populate_basic(self, crawled: CrawledMatch) -> Ontology:
        """Initial OWL model: basic information + raw narrations."""
        abox = self.ontology.spawn_abox(f"{crawled.match_id}-basic")
        self._populate_structure(abox, crawled)
        self._populate_basic_facts(abox, crawled)
        self._populate_unknown_narrations(abox, crawled)
        return abox

    def populate_full(self, crawled: CrawledMatch,
                      extracted: Iterable[ExtractedEvent]) -> Ontology:
        """Extracted OWL model: IE events replace the raw facts."""
        abox = self.ontology.spawn_abox(f"{crawled.match_id}-full")
        self._populate_structure(abox, crawled)
        for event in extracted:
            if event.match_id != crawled.match_id:
                raise PopulationError(
                    f"event {event.narration_id} belongs to "
                    f"{event.match_id}, not {crawled.match_id}")
            self._populate_extracted(abox, crawled, event)
        return abox

    # ------------------------------------------------------------------
    # shared structure: match, teams, players, officials
    # ------------------------------------------------------------------

    def _match_uri(self, crawled: CrawledMatch) -> URIRef:
        return SOCCER.term(iri_slug(crawled.match_id))

    def _team_uri(self, name: str) -> URIRef:
        return SOCCER.term(iri_slug(name))

    def _player_uri(self, full_name: str) -> URIRef:
        return SOCCER.term(iri_slug(full_name))

    def _populate_structure(self, abox: Ontology,
                            crawled: CrawledMatch) -> None:
        match = Individual(self._match_uri(crawled), {SOCCER.Match})
        match.add(SOCCER.hasName,
                  Literal(f"{crawled.home_team} vs {crawled.away_team}"))
        match.add(SOCCER.onDate, Literal(crawled.date))
        match.add(SOCCER.kickOffTime, Literal(crawled.kick_off))
        match.add(SOCCER.homeScore, Literal(crawled.home_score))
        match.add(SOCCER.awayScore, Literal(crawled.away_score))

        stadium = Individual(SOCCER.term(iri_slug(crawled.stadium)),
                             {SOCCER.Stadium})
        stadium.add(SOCCER.hasName, Literal(crawled.stadium))
        abox.add_individual(stadium)
        match.add(SOCCER.playedAt, stadium.uri)

        referee = Individual(SOCCER.term(iri_slug(crawled.referee)),
                             {SOCCER.Referee})
        referee.add(SOCCER.hasName, Literal(crawled.referee))
        abox.add_individual(referee)
        match.add(SOCCER.refereedBy, referee.uri)

        competition = Individual(
            SOCCER.term(iri_slug(crawled.competition)),
            {SOCCER.Competition})
        competition.add(SOCCER.hasName, Literal(crawled.competition))
        abox.add_individual(competition)
        match.add(SOCCER.inCompetition, competition.uri)

        for role_prop, team_name in ((SOCCER.homeTeam, crawled.home_team),
                                     (SOCCER.awayTeam, crawled.away_team)):
            team = Individual(self._team_uri(team_name), {SOCCER.Team})
            team.add(SOCCER.hasName, Literal(team_name))
            abox.add_individual(team)
            match.add(role_prop, team.uri)
            self._populate_lineup(abox, crawled, team)
        abox.add_individual(match)

    def _populate_lineup(self, abox: Ontology, crawled: CrawledMatch,
                         team: Individual) -> None:
        team_name = team.first(SOCCER.hasName)
        entries = crawled.lineup(str(team_name))
        for entry in entries:
            position_class = SOCCER.term(entry.position)
            if not self.ontology.has_class(position_class):
                raise PopulationError(
                    f"unknown position class {entry.position!r}")
            player = Individual(self._player_uri(entry.full_name),
                                {position_class})
            player.add(SOCCER.hasName, Literal(entry.full_name))
            player.add(SOCCER.hasLastName, Literal(entry.name))
            player.add(SOCCER.wearsShirtNumber,
                       Literal(entry.shirt_number))
            player.add(SOCCER.playsFor, team.uri)
            abox.add_individual(player)
            if entry.starter and entry.position == Position.GOALKEEPER:
                team.add(SOCCER.hasGoalkeeper, player.uri)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def _resolve_player(self, crawled: CrawledMatch,
                        name: Optional[str]) -> Optional[URIRef]:
        if not name:
            return None
        for team_name in crawled.teams:
            for entry in crawled.lineup(team_name):
                if entry.name == name or entry.full_name == name:
                    return self._player_uri(entry.full_name)
        return None

    def _new_event(self, abox: Ontology, crawled: CrawledMatch,
                   kind: str, event_key: str, minute: int,
                   narration: str = "") -> Individual:
        event = Individual(SOCCER.term(iri_slug(event_key)),
                           {event_class_uri(kind)})
        event.add(SOCCER.inMatch, self._match_uri(crawled))
        event.add(SOCCER.inMinute, Literal(minute))
        event.add(SOCCER.hasEventId, Literal(event_key))
        if narration:
            event.add(SOCCER.hasNarration, Literal(narration))
        return abox.add_individual(event)

    def _populate_basic_facts(self, abox: Ontology,
                              crawled: CrawledMatch) -> None:
        kind_for_goal = {"goal": EventKind.GOAL,
                         "penalty": EventKind.PENALTY_GOAL,
                         "own goal": EventKind.OWN_GOAL}
        for goal in crawled.goals:
            event = self._new_event(abox, crawled,
                                    kind_for_goal[goal.kind],
                                    goal.source_id, goal.minute)
            scorer = self._resolve_player(crawled, goal.scorer)
            if scorer is not None:
                event.add(SOCCER.scorerPlayer, scorer)
        for substitution in crawled.substitutions:
            event = self._new_event(abox, crawled, EventKind.SUBSTITUTION,
                                    substitution.source_id,
                                    substitution.minute)
            inc = self._resolve_player(crawled, substitution.player_in)
            out = self._resolve_player(crawled, substitution.player_out)
            if inc is not None:
                event.add(SOCCER.substitutedInPlayer, inc)
            if out is not None:
                event.add(SOCCER.substitutedOutPlayer, out)
        for booking in crawled.bookings:
            kind = (EventKind.YELLOW_CARD if booking.color == "yellow"
                    else EventKind.RED_CARD)
            event = self._new_event(abox, crawled, kind,
                                    booking.source_id, booking.minute)
            player = self._resolve_player(crawled, booking.player)
            if player is not None:
                prop = (SOCCER.bookedPlayer if booking.color == "yellow"
                        else SOCCER.sentOffPlayer)
                event.add(prop, player)
            event.add(SOCCER.cardColor, Literal(booking.color))

    def _populate_unknown_narrations(self, abox: Ontology,
                                     crawled: CrawledMatch) -> None:
        for index, narration in enumerate(crawled.narrations):
            key = f"{crawled.match_id}_n{index:04d}"
            self._new_event(abox, crawled, "UnknownEvent", key,
                            narration.minute, narration.text)

    def _populate_extracted(self, abox: Ontology, crawled: CrawledMatch,
                            extracted: ExtractedEvent) -> None:
        event = self._new_event(abox, crawled, extracted.kind,
                                extracted.narration_id, extracted.minute,
                                extracted.narration)
        mapping = role_mapping(extracted.kind)
        subject = self._resolve_player(crawled, extracted.subject)
        object_ = self._resolve_player(crawled, extracted.object)
        if subject is not None:
            event.add(mapping.subject_property, subject)
        if object_ is not None:
            event.add(mapping.object_property, object_)
        # Note: team roles (subjectTeam/objectTeam) are deliberately
        # NOT asserted here — the paper fills them with semantic rules
        # in the inferred model (Table 1 shows "-" for them in the
        # extracted index).
