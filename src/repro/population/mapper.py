"""Role mapping: extracted events → ontology properties (paper §3.4).

The paper decouples IE from the ontology through four generic
properties — ``subjectPlayer``, ``objectPlayer``, ``subjectTeam``,
``objectTeam`` — whose event-specific sub-properties are declared in
the ontology ("we can automatically fill in the scorerPlayer property
of a Goal event by using the subject of the event").  This module
resolves, for an event class, which concrete sub-property each generic
role should be asserted through; the reasoner's sub-property closure
then recovers the generic role.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.rdf.namespace import SOCCER
from repro.rdf.term import URIRef
from repro.soccer.domain import EventKind

__all__ = ["RoleMapping", "role_mapping", "iri_slug", "event_class_uri"]

#: event kind → (subject property, object property) local names; None
#: means "use the generic property".
_ROLE_PROPERTIES: Dict[str, Tuple[Optional[str], Optional[str]]] = {
    EventKind.GOAL: ("scorerPlayer", None),
    EventKind.OWN_GOAL: ("scorerPlayer", None),
    EventKind.PENALTY_GOAL: ("scorerPlayer", None),
    EventKind.MISSED_GOAL: ("missingPlayer", None),
    EventKind.SAVE: ("savingGoalkeeper", "savedShooter"),
    EventKind.PASS: ("passingPlayer", "passReceiver"),
    EventKind.LONG_PASS: ("passingPlayer", "passReceiver"),
    EventKind.CROSS: ("crossingPlayer", "passReceiver"),
    EventKind.SHOOT: ("shootingPlayer", None),
    EventKind.FOUL: ("foulingPlayer", "fouledPlayer"),
    EventKind.HANDBALL: ("handballPlayer", None),
    EventKind.OFFSIDE: ("offsidePlayer", None),
    EventKind.YELLOW_CARD: ("bookedPlayer", None),
    EventKind.RED_CARD: ("sentOffPlayer", None),
    EventKind.CORNER: ("cornerTaker", None),
    EventKind.FREE_KICK: ("freeKickTaker", None),
    EventKind.PENALTY: ("penaltyTaker", None),
    EventKind.SUBSTITUTION: ("substitutedInPlayer",
                             "substitutedOutPlayer"),
    EventKind.INJURY: (None, "injuredPlayer"),
    EventKind.TACKLE: ("tacklingPlayer", "tackledPlayer"),
    EventKind.DRIBBLE: ("dribblingPlayer", "dribbledPlayer"),
    EventKind.CLEARANCE: ("clearingPlayer", None),
    EventKind.INTERCEPTION: ("interceptingPlayer", None),
}


class RoleMapping:
    """Resolved property URIs for one event kind."""

    __slots__ = ("subject_property", "object_property")

    def __init__(self, subject_property: URIRef,
                 object_property: URIRef) -> None:
        self.subject_property = subject_property
        self.object_property = object_property


def role_mapping(kind: str) -> RoleMapping:
    """Subject/object property URIs for an event kind.

    Falls back to the generic ``subjectPlayer`` / ``objectPlayer`` for
    kinds without a specific sub-property (including UnknownEvent) —
    the paper's loose-coupling guarantee that population never fails
    on a new event type.
    """
    subject_name, object_name = _ROLE_PROPERTIES.get(kind, (None, None))
    return RoleMapping(
        subject_property=SOCCER.term(subject_name or "subjectPlayer"),
        object_property=SOCCER.term(object_name or "objectPlayer"),
    )


def event_class_uri(kind: str) -> URIRef:
    """Ontology class URI for an (extracted) event kind."""
    return SOCCER.term(kind)


def iri_slug(text: str) -> str:
    """Turn free text into an IRI-safe local name."""
    cleaned = []
    for char in text:
        if char.isalnum():
            cleaned.append(char)
        elif char in " -._'":
            cleaned.append("_")
        # anything else is dropped
    slug = "".join(cleaned).strip("_")
    return slug or "x"
