"""RDF term model: IRIs, literals, blank nodes and query variables.

The classes here mirror the RDF 1.1 abstract syntax.  All terms are
immutable, hashable value objects so they can be used freely as members
of sets and dictionary keys inside the triple store indexes.

Design notes
------------
* :class:`URIRef` and :class:`Variable` subclass :class:`str` so that
  the common case (an IRI used as a dictionary key) costs nothing over a
  plain string, mirroring the approach taken by rdflib.
* :class:`Literal` carries an optional datatype IRI and language tag and
  offers :meth:`Literal.to_python` for natural conversion to Python
  values (int, float, bool, str).
* :func:`bnode` produces process-unique blank node identifiers without
  relying on global random state, keeping runs deterministic.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Union

from repro.errors import TermError

__all__ = [
    "Term",
    "Node",
    "URIRef",
    "BNode",
    "Literal",
    "Variable",
    "XSD_STRING",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_BOOLEAN",
    "XSD_DATE",
    "XSD_DATETIME",
    "bnode",
    "reset_bnode_counter",
]

_XSD = "http://www.w3.org/2001/XMLSchema#"

XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_BOOLEAN = _XSD + "boolean"
XSD_DATE = _XSD + "date"
XSD_DATETIME = _XSD + "dateTime"


class Term:
    """Marker base class for every RDF term kind."""

    __slots__ = ()


class URIRef(Term, str):
    """An IRI reference identifying a resource.

    Subclasses ``str``: comparing, hashing and sorting behave exactly
    like the underlying IRI string, which keeps store indexes simple.
    """

    __slots__ = ()

    def __new__(cls, value: str) -> "URIRef":
        if not value:
            raise TermError("URIRef must be a non-empty string")
        if any(ch in value for ch in ("<", ">", '"', " ", "\n", "\t")):
            raise TermError(f"URIRef contains forbidden character: {value!r}")
        return str.__new__(cls, value)

    @property
    def local_name(self) -> str:
        """The fragment or last path segment of the IRI.

        Used for human-readable rendering and for deriving index terms
        from ontology class names.
        """
        for sep in ("#", "/", ":"):
            head, found, tail = self.rpartition(sep)
            if found and tail:
                return tail
        return str(self)

    @property
    def namespace(self) -> str:
        """Everything before :attr:`local_name`."""
        local = self.local_name
        return str(self)[: len(self) - len(local)]

    def n3(self) -> str:
        """Render in N-Triples / Turtle long form, e.g. ``<http://…>``."""
        return f"<{self}>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"URIRef({str.__repr__(self)})"


class BNode(Term, str):
    """A blank (anonymous) node.

    The string value is the blank node label *without* the ``_:``
    prefix.  Use :func:`bnode` to mint fresh labels.
    """

    __slots__ = ()

    def __new__(cls, label: str) -> "BNode":
        if not label:
            raise TermError("BNode label must be non-empty")
        if any(ch.isspace() for ch in label):
            raise TermError(f"BNode label may not contain whitespace: {label!r}")
        return str.__new__(cls, label)

    def n3(self) -> str:
        return f"_:{self}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BNode({str.__repr__(self)})"


class Variable(Term, str):
    """A query/rule variable such as ``?player``.

    The string value excludes the leading ``?``.
    """

    __slots__ = ()

    def __new__(cls, name: str) -> "Variable":
        if name.startswith("?"):
            name = name[1:]
        if not name:
            raise TermError("Variable name must be non-empty")
        return str.__new__(cls, name)

    def n3(self) -> str:
        return f"?{self}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({str.__repr__(self)})"


class Literal(Term):
    """An RDF literal: a lexical form plus optional datatype or language.

    Instances compare equal when lexical form, datatype and language all
    match — i.e. term equality, not value equality (``Literal(1)`` and
    ``Literal("1")`` differ because their datatypes differ).
    """

    __slots__ = ("lexical", "datatype", "language", "_hash")

    def __init__(self, value: Any, datatype: str | None = None,
                 language: str | None = None) -> None:
        if datatype is not None and language is not None:
            raise TermError("a literal cannot carry both datatype and language")
        if isinstance(value, bool):
            lexical = "true" if value else "false"
            datatype = datatype or XSD_BOOLEAN
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or XSD_INTEGER
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or XSD_DOUBLE
        else:
            lexical = str(value)
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)
        object.__setattr__(self, "_hash",
                           hash((lexical, datatype, language)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Literal instances are immutable")

    def to_python(self) -> Any:
        """Convert to the natural Python value for the datatype."""
        if self.datatype == XSD_INTEGER:
            return int(self.lexical)
        if self.datatype in (XSD_DOUBLE, XSD_DECIMAL):
            return float(self.lexical)
        if self.datatype == XSD_BOOLEAN:
            return self.lexical.strip().lower() in ("true", "1")
        return self.lexical

    def n3(self) -> str:
        escaped = (self.lexical.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\r", "\\r")
                   .replace("\t", "\\t"))
        rendered = f'"{escaped}"'
        if self.language:
            return f"{rendered}@{self.language}"
        if self.datatype and self.datatype != XSD_STRING:
            return f"{rendered}^^<{self.datatype}>"
        return rendered

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Literal):
            return (self.lexical == other.lexical
                    and self.datatype == other.datatype
                    and self.language == other.language)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Default slot-based pickling would call __setattr__ on the
        # restored instance, which immutability forbids; reconstruct
        # through the constructor instead.  Needed so per-match ABoxes
        # can cross process boundaries in the parallel pipeline.
        return (Literal, (self.lexical, self.datatype, self.language))

    def __lt__(self, other: "Literal") -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        mine, theirs = self.to_python(), other.to_python()
        try:
            return mine < theirs
        except TypeError:
            return self.lexical < other.lexical

    def __str__(self) -> str:
        return self.lexical

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [repr(self.lexical)]
        if self.datatype:
            parts.append(f"datatype={self.datatype!r}")
        if self.language:
            parts.append(f"language={self.language!r}")
        return f"Literal({', '.join(parts)})"


#: Any concrete node that can appear in a stored triple.
Node = Union[URIRef, BNode, Literal]

_bnode_counter = itertools.count(1)
_bnode_lock = threading.Lock()


def bnode(prefix: str = "b") -> BNode:
    """Mint a fresh, process-unique blank node.

    Labels are sequential (``b1``, ``b2``, …) so that repeated runs of
    deterministic pipelines produce identical graphs — important for the
    reproducibility of the evaluation corpus.
    """
    with _bnode_lock:
        return BNode(f"{prefix}{next(_bnode_counter)}")


def reset_bnode_counter() -> None:
    """Reset the blank-node counter (test isolation helper)."""
    global _bnode_counter
    with _bnode_lock:
        _bnode_counter = itertools.count(1)
