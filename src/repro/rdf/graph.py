"""An in-memory, triple-indexed RDF graph.

This is the storage substrate the whole system rests on: populated
per-match models, the ontology's RDF rendering, the rule engine's
working memory and the SPARQL engine's dataset are all instances of
:class:`Graph`.

The store keeps three permutation indexes (SPO, POS, OSP) so that any
triple pattern with at least one bound position is answered by hash
lookups rather than scans — the same layout used by production triple
stores (e.g. Jena's memory model).

For incremental consumers the graph also exposes a cheap change
journal: :attr:`Graph.generation` is a monotonic mutation counter
(the same invalidation contract as ``InvertedIndex.generation``), and
:meth:`Graph.journal` attaches an append-only buffer that records
every triple *added* while it is open.  The semi-naive rule engine
(:mod:`repro.reasoning.rules.engine`) seeds each fixpoint pass from
that buffer instead of re-scanning the whole store.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import (Dict, Iterable, Iterator, List, Optional, Set,
                    Tuple)

from repro.errors import GraphError
from repro.rdf.namespace import NamespaceManager
from repro.rdf.term import BNode, Literal, Node, URIRef

__all__ = ["Triple", "Graph"]

#: A stored triple.  Subjects may be URIRefs or BNodes; predicates are
#: URIRefs; objects are any node kind.
Triple = Tuple[Node, URIRef, Node]

#: A match pattern: ``None`` is a wildcard at that position.
Pattern = Tuple[Optional[Node], Optional[URIRef], Optional[Node]]

_Index = Dict[Node, Dict[Node, Set[Node]]]


def _validate(subject: Node, predicate: URIRef, obj: Node) -> None:
    if not isinstance(subject, (URIRef, BNode)):
        raise GraphError(f"triple subject must be URIRef or BNode, got "
                         f"{type(subject).__name__}")
    if not isinstance(predicate, URIRef):
        raise GraphError(f"triple predicate must be URIRef, got "
                         f"{type(predicate).__name__}")
    if not isinstance(obj, (URIRef, BNode, Literal)):
        raise GraphError(f"triple object must be URIRef, BNode or Literal, "
                         f"got {type(obj).__name__}")


class Graph:
    """A set of RDF triples with pattern-matching access.

    Supports the container protocol (``len``, ``in``, iteration), set
    algebra (``+``, ``-``, ``|``, ``&``) and convenience accessors
    (:meth:`value`, :meth:`objects`, :meth:`subjects`) modeled on the
    rdflib API so the rest of the code base reads naturally.
    """

    def __init__(self, triples: Iterable[Triple] = (),
                 identifier: str | None = None) -> None:
        self.identifier = identifier
        self.namespace_manager = NamespaceManager()
        self._spo: _Index = defaultdict(lambda: defaultdict(set))
        self._pos: _Index = defaultdict(lambda: defaultdict(set))
        self._osp: _Index = defaultdict(lambda: defaultdict(set))
        self._size = 0
        #: Monotonic mutation counter.  Bumped on every successful add,
        #: remove or clear, never reset — consumers snapshot it to detect
        #: staleness, the same contract as ``InvertedIndex.generation``.
        self.generation = 0
        self._journals: List[List[Triple]] = []
        for triple in triples:
            self.add(triple)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns True if it was not already present."""
        subject, predicate, obj = triple
        _validate(subject, predicate, obj)
        objects = self._spo[subject][predicate]
        if obj in objects:
            return False
        objects.add(obj)
        self._pos[predicate][obj].add(subject)
        self._osp[obj][subject].add(predicate)
        self._size += 1
        self.generation += 1
        for buffer in self._journals:
            buffer.append(triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number actually added."""
        return sum(1 for triple in triples if self.add(triple))

    @staticmethod
    def _prune(index: _Index, first: Node, second: Node,
               member: Node) -> None:
        """Discard ``member`` from ``index[first][second]`` and drop the
        bucket (and the outer entry) once empty, so removals do not leave
        dead dict/set shells that wildcard scans still have to walk."""
        inner = index.get(first)
        if inner is None:
            return
        bucket = inner.get(second)
        if bucket is None:
            return
        bucket.discard(member)
        if not bucket:
            del inner[second]
            if not inner:
                del index[first]

    def remove(self, pattern: Pattern) -> int:
        """Delete every triple matching ``pattern``; returns the count."""
        doomed = list(self.triples(pattern))
        for subject, predicate, obj in doomed:
            self._prune(self._spo, subject, predicate, obj)
            self._prune(self._pos, predicate, obj, subject)
            self._prune(self._osp, obj, subject, predicate)
            self._size -= 1
            self.generation += 1
        return len(doomed)

    def clear(self) -> None:
        if self._size or self._spo:
            self.generation += 1
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    # ------------------------------------------------------------------
    # change journal
    # ------------------------------------------------------------------

    @contextmanager
    def journal(self) -> Iterator[List[Triple]]:
        """Attach an append-only buffer recording every triple added
        while the context is open (in insertion order, duplicates never
        recorded because :meth:`add` reports them).  Removals are *not*
        journaled — the semi-naive engine assumes a grow-only graph.
        Multiple journals may be open at once; each sees every addition
        made during its own lifetime.
        """
        buffer: List[Triple] = []
        self._journals.append(buffer)
        try:
            yield buffer
        finally:
            self._journals.remove(buffer)

    def index_sizes(self) -> Dict[str, int]:
        """Triple counts recomputed from each permutation index —
        test/debug hook for the no-empty-bucket invariant.  All three
        must equal ``len(self)``, and no inner dict or set may be empty.
        """
        sizes = {}
        for name, index in (("spo", self._spo), ("pos", self._pos),
                            ("osp", self._osp)):
            total = 0
            for inner in index.values():
                assert inner, f"{name} index holds an empty inner dict"
                for bucket in inner.values():
                    assert bucket, f"{name} index holds an empty bucket"
                    total += len(bucket)
            sizes[name] = total
        return sizes

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    def triples(self, pattern: Pattern = (None, None, None)
                ) -> Iterator[Triple]:
        """Yield every triple matching the (s, p, o) pattern.

        ``None`` positions are wildcards.  The best available index is
        chosen based on which positions are bound.
        """
        subject, predicate, obj = pattern
        if subject is not None:
            by_predicate = self._spo.get(subject)
            if not by_predicate:
                return
            if predicate is not None:
                objects = by_predicate.get(predicate)
                if not objects:
                    return
                if obj is not None:
                    if obj in objects:
                        yield (subject, predicate, obj)
                    return
                for candidate in list(objects):
                    yield (subject, predicate, candidate)
                return
            for pred, objects in list(by_predicate.items()):
                if obj is not None:
                    if obj in objects:
                        yield (subject, pred, obj)
                else:
                    for candidate in list(objects):
                        yield (subject, pred, candidate)
            return
        if predicate is not None:
            by_object = self._pos.get(predicate)
            if not by_object:
                return
            if obj is not None:
                for subj in list(by_object.get(obj, ())):
                    yield (subj, predicate, obj)
                return
            for candidate, subjects in list(by_object.items()):
                for subj in list(subjects):
                    yield (subj, predicate, candidate)
            return
        if obj is not None:
            by_subject = self._osp.get(obj)
            if not by_subject:
                return
            for subj, predicates in list(by_subject.items()):
                for pred in list(predicates):
                    yield (subj, pred, obj)
            return
        for subj, by_predicate in list(self._spo.items()):
            for pred, objects in list(by_predicate.items()):
                for candidate in list(objects):
                    yield (subj, pred, candidate)

    def count(self, pattern: Pattern = (None, None, None)) -> int:
        """Number of triples matching ``pattern`` (fast paths for the
        fully-wild and fully-bound cases)."""
        if pattern == (None, None, None):
            return self._size
        subject, predicate, obj = pattern
        if subject is not None and predicate is not None and obj is not None:
            return 1 if pattern in self else 0
        return sum(1 for _ in self.triples(pattern))

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------

    def subjects(self, predicate: URIRef | None = None,
                 obj: Node | None = None) -> Iterator[Node]:
        seen: Set[Node] = set()
        for subject, _, _ in self.triples((None, predicate, obj)):
            if subject not in seen:
                seen.add(subject)
                yield subject

    def predicates(self, subject: Node | None = None,
                   obj: Node | None = None) -> Iterator[URIRef]:
        seen: Set[Node] = set()
        for _, predicate, _ in self.triples((subject, None, obj)):
            if predicate not in seen:
                seen.add(predicate)
                yield predicate

    def objects(self, subject: Node | None = None,
                predicate: URIRef | None = None) -> Iterator[Node]:
        seen: Set[Node] = set()
        for _, _, obj in self.triples((subject, predicate, None)):
            if obj not in seen:
                seen.add(obj)
                yield obj

    def value(self, subject: Node | None = None,
              predicate: URIRef | None = None,
              obj: Node | None = None,
              default: Node | None = None) -> Node | None:
        """Return the single missing component of a doubly-bound pattern.

        Exactly one of the three positions must be ``None``; the value at
        that position of the first matching triple is returned, or
        ``default`` when no triple matches.
        """
        wild = [subject is None, predicate is None, obj is None]
        if sum(wild) != 1:
            raise GraphError("value() requires exactly one unbound position")
        for triple in self.triples((subject, predicate, obj)):
            return triple[wild.index(True)]
        return default

    # ------------------------------------------------------------------
    # set algebra
    # ------------------------------------------------------------------

    def copy(self) -> "Graph":
        clone = Graph(identifier=self.identifier)
        clone.namespace_manager = self.namespace_manager
        clone.add_all(self)
        return clone

    def __or__(self, other: "Graph") -> "Graph":
        union = self.copy()
        union.add_all(other)
        return union

    __add__ = __or__

    def __sub__(self, other: "Graph") -> "Graph":
        return Graph(t for t in self if t not in other)

    def __and__(self, other: "Graph") -> "Graph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return Graph(t for t in small if t in large)

    def __ior__(self, other: Iterable[Triple]) -> "Graph":
        self.add_all(other)
        return self

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __contains__(self, triple: Triple) -> bool:
        subject, predicate, obj = triple
        return obj in self._spo.get(subject, {}).get(predicate, ())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return len(self) == len(other) and all(t in other for t in self)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    __hash__ = None  # type: ignore[assignment]  # graphs are mutable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.identifier or hex(id(self))
        return f"<Graph {name} ({self._size} triples)>"
