"""N-Triples serialization and parsing.

N-Triples is the line-oriented exchange format used for persisting
per-match models to disk.  The parser is a small hand-rolled scanner
that accepts the W3C N-Triples grammar (IRIs, blank nodes, plain /
language-tagged / typed literals, ``#`` comments, blank lines).
"""

from __future__ import annotations

import io
from typing import IO, Iterable

from repro.errors import ParseError, TermError
from repro.rdf.graph import Graph, Triple
from repro.rdf.term import BNode, Literal, Node, URIRef

__all__ = ["serialize", "serialize_to_string", "parse", "parse_string"]

_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
}


def serialize(graph: Iterable[Triple], out: IO[str]) -> int:
    """Write ``graph`` to ``out`` in N-Triples; returns the line count.

    Triples are emitted in sorted order so output is canonical and
    diff-friendly.
    """
    lines = sorted(_render(triple) for triple in graph)
    for line in lines:
        out.write(line)
        out.write("\n")
    return len(lines)


def serialize_to_string(graph: Iterable[Triple]) -> str:
    buffer = io.StringIO()
    serialize(graph, buffer)
    return buffer.getvalue()


def _render(triple: Triple) -> str:
    subject, predicate, obj = triple
    return f"{subject.n3()} {predicate.n3()} {obj.n3()} ."


def parse(source: IO[str], graph: Graph | None = None) -> Graph:
    """Parse N-Triples from a text stream into ``graph`` (or a new one)."""
    target = graph if graph is not None else Graph()
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        target.add(_parse_line(line, lineno))
    return target


def parse_string(text: str, graph: Graph | None = None) -> Graph:
    return parse(io.StringIO(text), graph)


def _parse_line(line: str, lineno: int) -> Triple:
    scanner = _Scanner(line, lineno)
    subject = scanner.read_term()
    if isinstance(subject, Literal):
        raise ParseError("literal in subject position", line=lineno)
    predicate = scanner.read_term()
    if not isinstance(predicate, URIRef):
        raise ParseError("predicate must be an IRI", line=lineno)
    obj = scanner.read_term()
    scanner.expect_dot()
    return (subject, predicate, obj)


class _Scanner:
    """Single-line N-Triples tokenizer."""

    def __init__(self, line: str, lineno: int) -> None:
        self.line = line
        self.lineno = lineno
        self.pos = 0

    def _skip_space(self) -> None:
        while self.pos < len(self.line) and self.line[self.pos] in " \t":
            self.pos += 1

    def _fail(self, message: str) -> ParseError:
        return ParseError(message, line=self.lineno, column=self.pos + 1)

    def read_term(self) -> Node:
        self._skip_space()
        if self.pos >= len(self.line):
            raise self._fail("unexpected end of line")
        char = self.line[self.pos]
        if char == "<":
            return self._read_iri()
        if char == "_":
            return self._read_bnode()
        if char == '"':
            return self._read_literal()
        raise self._fail(f"unexpected character {char!r}")

    def _read_iri(self) -> URIRef:
        end = self.line.find(">", self.pos + 1)
        if end < 0:
            raise self._fail("unterminated IRI")
        iri = self.line[self.pos + 1:end]
        self.pos = end + 1
        try:
            return URIRef(iri)
        except TermError as error:
            raise self._fail(f"invalid IRI: {error}") from error

    def _read_bnode(self) -> BNode:
        if not self.line.startswith("_:", self.pos):
            raise self._fail("malformed blank node")
        start = self.pos + 2
        end = start
        while end < len(self.line) and not self.line[end].isspace():
            end += 1
        label = self.line[start:end]
        if not label:
            raise self._fail("empty blank node label")
        self.pos = end
        return BNode(label)

    def _read_literal(self) -> Literal:
        chars = []
        i = self.pos + 1
        while i < len(self.line):
            char = self.line[i]
            if char == "\\":
                if i + 1 >= len(self.line):
                    raise self._fail("dangling escape in literal")
                escape = self.line[i + 1]
                if escape in _ESCAPES:
                    chars.append(_ESCAPES[escape])
                    i += 2
                    continue
                if escape == "u" and i + 5 < len(self.line):
                    chars.append(chr(int(self.line[i + 2:i + 6], 16)))
                    i += 6
                    continue
                raise self._fail(f"unknown escape \\{escape}")
            if char == '"':
                break
            chars.append(char)
            i += 1
        else:
            raise self._fail("unterminated literal")
        self.pos = i + 1
        lexical = "".join(chars)
        if self.line.startswith("@", self.pos):
            end = self.pos + 1
            while end < len(self.line) and (self.line[end].isalnum()
                                            or self.line[end] == "-"):
                end += 1
            language = self.line[self.pos + 1:end]
            if not language:
                raise self._fail("empty language tag")
            self.pos = end
            return Literal(lexical, language=language)
        if self.line.startswith("^^", self.pos):
            self.pos += 2
            if not self.line.startswith("<", self.pos):
                raise self._fail("datatype must be an IRI")
            datatype = self._read_iri()
            return Literal(lexical, datatype=str(datatype))
        return Literal(lexical)

    def expect_dot(self) -> None:
        self._skip_space()
        if self.pos >= len(self.line) or self.line[self.pos] != ".":
            raise self._fail("expected terminating '.'")
        self.pos += 1
        self._skip_space()
        if self.pos < len(self.line) and not self.line[self.pos:].startswith("#"):
            raise self._fail("trailing content after '.'")
