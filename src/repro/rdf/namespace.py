"""Namespaces and the standard vocabularies used throughout the system.

A :class:`Namespace` is a thin factory for :class:`~repro.rdf.term.URIRef`
instances sharing a base IRI.  The module also defines the RDF, RDFS,
OWL and XSD vocabularies plus the project's soccer namespace ``SOCCER``
(the paper's ``pre:`` prefix).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import TermError
from repro.rdf.term import URIRef

__all__ = [
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "SOCCER",
]


class Namespace(str):
    """A base IRI that can be extended with local names.

    Examples:
        >>> EX = Namespace("http://example.org/ns#")
        >>> EX.Player
        URIRef('http://example.org/ns#Player')
        >>> EX["has name"]          # doctest: +SKIP
    """

    def __new__(cls, base: str) -> "Namespace":
        if not base:
            raise TermError("Namespace base IRI must be non-empty")
        return str.__new__(cls, base)

    def term(self, name: str) -> URIRef:
        return URIRef(str(self) + name)

    def __getitem__(self, name) -> URIRef:  # type: ignore[override]
        if not isinstance(name, str):
            raise TypeError("namespace lookup requires a string local name")
        return self.term(name)

    def __getattr__(self, name: str) -> URIRef:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __contains__(self, item) -> bool:  # type: ignore[override]
        return isinstance(item, str) and item.startswith(str(self))


class NamespaceManager:
    """Registry of prefix ↔ namespace bindings for rendering and parsing.

    Used by the Turtle serializer, the SPARQL parser and the rule parser
    to resolve qualified names such as ``pre:Assist``.
    """

    def __init__(self) -> None:
        self._prefix_to_ns: Dict[str, Namespace] = {}
        self._ns_to_prefix: Dict[str, str] = {}
        for prefix, namespace in (("rdf", RDF), ("rdfs", RDFS),
                                  ("owl", OWL), ("xsd", XSD)):
            self.bind(prefix, namespace)

    def bind(self, prefix: str, namespace: str | Namespace,
             replace: bool = True) -> None:
        """Associate ``prefix`` with ``namespace``.

        Args:
            prefix: the short name (without the trailing colon).
            namespace: the base IRI.
            replace: when False, an existing binding for the prefix is
                left untouched.
        """
        if not replace and prefix in self._prefix_to_ns:
            return
        ns = namespace if isinstance(namespace, Namespace) else Namespace(namespace)
        previous = self._prefix_to_ns.get(prefix)
        if previous is not None:
            self._ns_to_prefix.pop(str(previous), None)
        self._prefix_to_ns[prefix] = ns
        self._ns_to_prefix[str(ns)] = prefix

    def expand(self, qname: str) -> URIRef:
        """Resolve a qualified name (``prefix:local``) to a URIRef."""
        prefix, sep, local = qname.partition(":")
        if not sep:
            raise TermError(f"not a qualified name: {qname!r}")
        try:
            namespace = self._prefix_to_ns[prefix]
        except KeyError:
            raise TermError(f"unbound prefix {prefix!r} in {qname!r}") from None
        return namespace.term(local)

    def qname(self, uri: URIRef) -> str | None:
        """Compact a URIRef to ``prefix:local`` if a binding matches."""
        text = str(uri)
        for base, prefix in self._ns_to_prefix.items():
            if text.startswith(base):
                local = text[len(base):]
                if local and all(ch not in local for ch in "/#"):
                    return f"{prefix}:{local}"
        return None

    def namespaces(self) -> Iterator[Tuple[str, Namespace]]:
        """Iterate (prefix, namespace) bindings sorted by prefix."""
        return iter(sorted(self._prefix_to_ns.items()))

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefix_to_ns

    def __len__(self) -> int:
        return len(self._prefix_to_ns)


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")

#: The soccer domain namespace — the ``pre:`` prefix in the paper's
#: Jena rule listing (Fig. 6).
SOCCER = Namespace("http://repro.example.org/soccer#")
