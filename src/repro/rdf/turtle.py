"""Turtle serialization and parsing.

Turtle is the human-facing syntax: populated match models and the
ontology serialize to it for inspection, and hand-edited Turtle (e.g.
a tweaked ontology fragment) parses back.  The parser covers the
subset the writer emits plus common hand-written forms: ``@prefix``,
``a``, predicate lists (``;``), object lists (``,``), blank node
labels, and plain/typed/language literals.  Collections ``( … )`` and
anonymous bnodes ``[ … ]`` are not supported — the system never emits
them.
"""

from __future__ import annotations

import io
import re
from collections import defaultdict
from typing import IO, Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF, NamespaceManager
from repro.rdf.term import BNode, Literal, Node, URIRef

__all__ = ["serialize", "serialize_to_string", "parse", "parse_string"]


def serialize(graph: Graph, out: IO[str]) -> None:
    """Write ``graph`` as Turtle, grouping triples by subject.

    Prefix bindings come from the graph's namespace manager; the
    ``rdf:type`` predicate is rendered as ``a``.  Subjects and
    predicates are sorted for deterministic output.
    """
    manager = graph.namespace_manager
    used_prefixes = set()

    def render(term: Node) -> str:
        if isinstance(term, URIRef):
            qname = manager.qname(term)
            if qname is not None:
                used_prefixes.add(qname.partition(":")[0])
                return qname
        return term.n3()

    by_subject: Dict[Node, List] = defaultdict(list)
    for subject, predicate, obj in graph:
        by_subject[subject].append((predicate, obj))

    body = io.StringIO()
    for subject in sorted(by_subject, key=_sort_key):
        pairs = by_subject[subject]
        by_predicate: Dict[URIRef, List[Node]] = defaultdict(list)
        for predicate, obj in pairs:
            by_predicate[predicate].append(obj)
        body.write(render(subject))
        lines = []
        for predicate in sorted(by_predicate, key=str):
            verb = "a" if predicate == RDF.type else render(predicate)
            objects = ", ".join(
                render(obj) for obj in sorted(by_predicate[predicate],
                                              key=_sort_key))
            lines.append(f"    {verb} {objects}")
        body.write(" ")
        body.write(" ;\n".join(lines).lstrip())
        body.write(" .\n\n")

    for prefix, namespace in manager.namespaces():
        if prefix in used_prefixes:
            out.write(f"@prefix {prefix}: <{namespace}> .\n")
    out.write("\n")
    out.write(body.getvalue())


def serialize_to_string(graph: Graph) -> str:
    buffer = io.StringIO()
    serialize(graph, buffer)
    return buffer.getvalue()


def _sort_key(term: Node) -> tuple:
    if isinstance(term, Literal):
        return (1, term.lexical, term.datatype or "", term.language or "")
    return (0, str(term), "", "")


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------

_TOKEN = re.compile(r"""
    (?P<COMMENT>\#[^\n]*)
  | (?P<PREFIX_DECL>@prefix)
  | (?P<IRI><[^<>\s]*>)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<BNODE>_:[A-Za-z0-9_]+)
  | (?P<PNAME>[A-Za-z_][\w\-]*:[\w\-.]*|:[\w\-.]+)
  | (?P<PREFIX_NS>[A-Za-z_][\w\-]*:|:)
  | (?P<NUMBER>[+-]?\d+(?:\.\d+)?)
  | (?P<BOOL>\btrue\b|\bfalse\b)
  | (?P<A>\ba\b)
  | (?P<DTYPE>\^\^)
  | (?P<LANG>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
  | (?P<PUNCT>[;,.\[\]()])
  | (?P<WS>\s+)
""", re.VERBOSE)

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}


def _unescape(raw: str) -> str:
    out = []
    i = 0
    while i < len(raw):
        char = raw[i]
        if char == "\\" and i + 1 < len(raw):
            escape = raw[i + 1]
            if escape in _ESCAPES:
                out.append(_ESCAPES[escape])
                i += 2
                continue
            if escape == "u" and i + 5 < len(raw):
                out.append(chr(int(raw[i + 2:i + 6], 16)))
                i += 6
                continue
        out.append(char)
        i += 1
    return "".join(out)


def _tokenize_turtle(text: str) -> List[Tuple[str, str, int]]:
    tokens = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} "
                             f"in Turtle", line=line)
        kind = match.lastgroup or ""
        value = match.group()
        if kind not in ("WS", "COMMENT"):
            tokens.append((kind, value, line))
        line += value.count("\n")
        pos = match.end()
    tokens.append(("EOF", "", line))
    return tokens


class _TurtleParser:
    def __init__(self, tokens: List[Tuple[str, str, int]],
                 namespaces: Optional[NamespaceManager]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._ns = namespaces or NamespaceManager()

    @property
    def _current(self) -> Tuple[str, str, int]:
        return self._tokens[self._pos]

    def _advance(self) -> Tuple[str, str, int]:
        token = self._current
        if token[0] != "EOF":
            self._pos += 1
        return token

    def _fail(self, message: str) -> ParseError:
        kind, value, line = self._current
        return ParseError(f"{message}, found {value!r}", line=line)

    def _expect_punct(self, char: str) -> None:
        kind, value, _ = self._advance()
        if kind != "PUNCT" or value != char:
            self._pos -= 1
            raise self._fail(f"expected {char!r}")

    def parse(self, graph: Graph) -> Graph:
        while self._current[0] != "EOF":
            if self._current[0] == "PREFIX_DECL":
                self._parse_prefix()
            else:
                self._parse_statement(graph)
        return graph

    def _parse_prefix(self) -> None:
        self._advance()                       # @prefix
        kind, value, _ = self._advance()
        if kind not in ("PREFIX_NS", "PNAME"):
            raise self._fail("expected prefix name")
        prefix = value.rstrip(":") if kind == "PREFIX_NS" \
            else value.partition(":")[0]
        kind, iri, _ = self._advance()
        if kind != "IRI":
            raise self._fail("expected namespace IRI")
        self._ns.bind(prefix, iri[1:-1])
        self._expect_punct(".")

    def _parse_statement(self, graph: Graph) -> None:
        subject = self._parse_term(as_subject=True)
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term()
                graph.add((subject, predicate, obj))  # type: ignore[arg-type]
                if self._current[:2] == ("PUNCT", ","):
                    self._advance()
                    continue
                break
            if self._current[:2] == ("PUNCT", ";"):
                self._advance()
                # tolerate trailing ';' before '.'
                if self._current[:2] == ("PUNCT", "."):
                    break
                continue
            break
        self._expect_punct(".")

    def _parse_verb(self) -> URIRef:
        if self._current[0] == "A":
            self._advance()
            return RDF.type
        term = self._parse_term()
        if not isinstance(term, URIRef):
            raise self._fail("predicate must be an IRI")
        return term

    def _parse_term(self, as_subject: bool = False) -> Node:
        kind, value, _ = self._advance()
        if kind == "IRI":
            return URIRef(value[1:-1])
        if kind == "PNAME":
            return self._ns.expand(value)
        if kind == "BNODE":
            return BNode(value[2:])
        if as_subject:
            self._pos -= 1
            raise self._fail("expected IRI or blank node subject")
        if kind == "STRING":
            lexical = _unescape(value[1:-1])
            if self._current[0] == "LANG":
                language = self._advance()[1][1:]
                return Literal(lexical, language=language)
            if self._current[0] == "DTYPE":
                self._advance()
                datatype = self._parse_term()
                if not isinstance(datatype, URIRef):
                    raise self._fail("datatype must be an IRI")
                return Literal(lexical, datatype=str(datatype))
            return Literal(lexical)
        if kind == "NUMBER":
            if "." in value:
                return Literal(float(value))
            return Literal(int(value))
        if kind == "BOOL":
            return Literal(value == "true")
        self._pos -= 1
        raise self._fail("expected an RDF term")


def parse(source: IO[str], graph: Graph | None = None,
          namespaces: Optional[NamespaceManager] = None) -> Graph:
    """Parse Turtle from a text stream into ``graph`` (or a new one)."""
    target = graph if graph is not None else Graph()
    parser = _TurtleParser(_tokenize_turtle(source.read()),
                           namespaces or target.namespace_manager)
    return parser.parse(target)


def parse_string(text: str, graph: Graph | None = None,
                 namespaces: Optional[NamespaceManager] = None) -> Graph:
    return parse(io.StringIO(text), graph, namespaces)
