"""RDF substrate: terms, namespaces, graphs and serialization.

This package is a from-scratch, dependency-free replacement for the
slice of Jena/rdflib functionality the paper's system relies on:

* :mod:`repro.rdf.term` — URIRefs, blank nodes, literals, variables.
* :mod:`repro.rdf.namespace` — vocabularies (RDF, RDFS, OWL, XSD) and
  the soccer domain namespace.
* :mod:`repro.rdf.graph` — a triple-indexed in-memory store.
* :mod:`repro.rdf.ntriples` / :mod:`repro.rdf.turtle` — serialization.
"""

from repro.rdf.graph import Graph, Triple
from repro.rdf.namespace import (OWL, RDF, RDFS, SOCCER, XSD, Namespace,
                                 NamespaceManager)
from repro.rdf.term import (BNode, Literal, Node, Term, URIRef, Variable,
                            bnode, reset_bnode_counter)

__all__ = [
    "Graph",
    "Triple",
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "SOCCER",
    "Term",
    "Node",
    "URIRef",
    "BNode",
    "Literal",
    "Variable",
    "bnode",
    "reset_bnode_counter",
]
