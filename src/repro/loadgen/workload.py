"""Query mixes: what the load generator asks the server.

Real query logs are zipf-shaped — a few queries dominate, a long tail
trickles — and how steep that curve is decides whether a result cache
helps or thrashes.  The sampler here draws from a fixed query
universe with rank-``k`` probability proportional to ``1/k^s``, built
from the paper's own evaluation queries (Tables 3 and 6) plus
synthetic expansions over the soccer vocabulary, and is deterministic
under a fixed seed (property-tested against the theoretical
distribution in ``tests/loadgen/test_workload.py``).

Two built-in profiles bracket the cache behaviour a serving layer
must survive:

* ``cache_friendly`` — a small universe under a steep exponent: the
  head queries repeat constantly, so an LRU result cache of default
  size converges to near-100% hit rate.  Measures the best case the
  PR 4 cache was built for.
* ``cache_hostile`` — a universe far larger than the result cache
  under a flat exponent: almost every request is a cache miss and the
  LRU churns.  Measures the scoring path under concurrency, which is
  where saturation actually lives.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from itertools import accumulate
from typing import List, Sequence

from repro.evaluation.queries import TABLE3_QUERIES, TABLE6_QUERIES

__all__ = ["PAPER_QUERIES", "synthetic_queries", "ZipfSampler",
           "WorkloadProfile", "Workload", "PROFILES", "build_workload"]

#: the paper's evaluation queries, verbatim keyword strings
PAPER_QUERIES: List[str] = [query.keywords for query
                            in (*TABLE3_QUERIES, *TABLE6_QUERIES)]

# the soccer vocabulary the synthetic expansions combine — the same
# universe the simulator narrates, so most expansions hit documents
_EVENTS = ["goal", "foul", "save", "corner", "offside", "yellow card",
           "red card", "punishment", "pass", "tackle", "substitution",
           "penalty", "free kick", "header", "shoot"]
_NAMES = ["messi", "ronaldo", "henry", "casillas", "alex", "drogba",
          "gerrard", "robben", "sneijder", "rooney", "daniel",
          "florent", "xavi", "iniesta", "kaka", "eto"]
_TEAMS = ["barcelona", "chelsea", "liverpool", "arsenal",
          "real madrid", "bayern", "milan", "inter"]


def synthetic_queries(count: int, seed: int = 0) -> List[str]:
    """``count`` **distinct** synthetic keyword queries expanding the
    paper set over the soccer vocabulary, in a seeded shuffle order.

    Name×event and name×team×event combinations come first (~2k
    distinct queries that mostly hit the corpus); past that, numbered
    long-tail queries keep the universe distinct forever — rare terms
    that miss the corpus, which is exactly what the tail of a real
    query log looks like."""
    rng = random.Random(seed)
    pool = [f"{name} {event}" for name in _NAMES for event in _EVENTS]
    pool += [f"{name} {team} {event}" for name in _NAMES
             for team in _TEAMS for event in _EVENTS]
    rng.shuffle(pool)
    while len(pool) < count:
        tail = len(pool)
        pool.append(f"{_NAMES[tail % len(_NAMES)]} "
                    f"{_EVENTS[tail % len(_EVENTS)]} minute {tail}")
    return pool[:count]


class ZipfSampler:
    """Samples ranks ``1..n`` with ``P(k) ∝ 1/k^s``, seeded.

    The cumulative weight table is built once; each draw is a uniform
    variate binary-searched into it, so sampling is O(log n) and the
    sequence is fully determined by ``(n, s, seed)``.
    """

    def __init__(self, n: int, exponent: float, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError(f"universe size must be positive, got {n}")
        if exponent < 0:
            raise ValueError(f"zipf exponent must be >= 0, "
                             f"got {exponent}")
        self.n = n
        self.exponent = exponent
        self.seed = seed
        weights = [1.0 / (k ** exponent) for k in range(1, n + 1)]
        self._cumulative = list(accumulate(weights))
        self._total = self._cumulative[-1]
        self._rng = random.Random(seed)

    def probability(self, rank: int) -> float:
        """Theoretical probability of 1-based ``rank`` (the quantity
        the distribution property tests compare frequencies to)."""
        return (1.0 / (rank ** self.exponent)) / self._total

    def sample(self) -> int:
        """One 0-based index into the universe."""
        return bisect_left(self._cumulative,
                           self._rng.random() * self._total)

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]


@dataclass(frozen=True)
class WorkloadProfile:
    """A named query-mix shape (see module docstring)."""

    name: str
    universe_size: int
    exponent: float
    description: str


PROFILES = {
    "cache_friendly": WorkloadProfile(
        name="cache_friendly",
        universe_size=48,
        exponent=1.1,
        description="small universe, steep zipf: the LRU result cache "
                    "absorbs almost everything after warmup"),
    "cache_hostile": WorkloadProfile(
        name="cache_hostile",
        universe_size=4096,
        exponent=0.4,
        description="universe 16x the default result cache under a "
                    "flat zipf: almost every request misses and the "
                    "scoring path carries the load"),
}


@dataclass(frozen=True)
class Workload:
    """A concrete sampled request sequence plus its provenance."""

    profile: str
    queries: tuple
    universe_size: int
    exponent: float
    seed: int

    def __len__(self) -> int:
        return len(self.queries)

    def unique_queries(self) -> List[str]:
        seen: dict = {}
        for query in self.queries:
            seen.setdefault(query, None)
        return list(seen)


def _universe(profile: WorkloadProfile, seed: int) -> Sequence[str]:
    """Paper queries first (they get the zipf head — the measured
    workload literally replays Tables 3/6 hot), synthetic expansions
    fill the tail."""
    extra = profile.universe_size - len(PAPER_QUERIES)
    if extra <= 0:
        return PAPER_QUERIES[:profile.universe_size]
    return [*PAPER_QUERIES, *synthetic_queries(extra, seed=seed)]


def build_workload(profile: str, count: int, seed: int = 42) -> Workload:
    """Sample a ``count``-request workload for a named profile.
    Deterministic under ``(profile, count, seed)``."""
    try:
        shape = PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown workload profile {profile!r} "
            f"(known: {', '.join(sorted(PROFILES))})") from None
    universe = _universe(shape, seed)
    sampler = ZipfSampler(len(universe), shape.exponent, seed=seed)
    queries = tuple(universe[rank] for rank in sampler.sample_many(count))
    return Workload(profile=shape.name, queries=queries,
                    universe_size=len(universe),
                    exponent=shape.exponent, seed=seed)
