"""Open-loop load generation for the query-serving path.

The ROADMAP's "heavy traffic from millions of users" claim is only
judgeable by an open-loop, multi-client load test: requests arrive on
their own clock (fixed-rate or Poisson), whether or not the server
has finished the previous one, so queueing delay shows up in the
latency distribution instead of being silently absorbed the way a
one-caller-in-a-loop benchmark absorbs it.  This package is that
instrument:

* :mod:`repro.loadgen.arrival` — seeded arrival processes (fixed
  rate, Poisson);
* :mod:`repro.loadgen.workload` — zipf-distributed query mixes over
  the paper query set plus synthetic expansions, with cache-friendly
  and cache-hostile profiles;
* :mod:`repro.loadgen.http` — an HTTP ``search(query, limit)`` target
  over a running ``repro serve`` instance, so the same driver measures
  the end-to-end service path (``loadtest --http URL``);
* :mod:`repro.loadgen.driver` — the multi-threaded (optionally
  multi-process) open-loop driver, sourcing latency percentiles from
  the :mod:`repro.core.observability` histograms (exact reservoir
  in-process, bucket interpolation cross-process) and reporting
  offered vs. achieved throughput plus saturation sweeps.

Runnable outside pytest via ``python -m repro loadtest`` and consumed
by ``benchmarks/test_serving_load.py`` (→ ``BENCH_serving.json``).
Knobs and output format are documented in ``docs/performance.md``.
"""

from repro.loadgen.arrival import (ARRIVAL_PROCESSES, arrival_times,
                                   fixed_rate_arrivals, poisson_arrivals)
from repro.loadgen.driver import (LoadResult, OpenLoopDriver,
                                  RequestRecord, run_multiprocess,
                                  saturation_sweep)
from repro.loadgen.http import (HttpHit, HttpSearchClient,
                                HttpSearchError, wait_healthy)
from repro.loadgen.workload import (PAPER_QUERIES, PROFILES, Workload,
                                    WorkloadProfile, ZipfSampler,
                                    build_workload, synthetic_queries)

__all__ = [
    "ARRIVAL_PROCESSES", "arrival_times", "fixed_rate_arrivals",
    "poisson_arrivals", "LoadResult", "OpenLoopDriver",
    "RequestRecord", "run_multiprocess", "saturation_sweep",
    "HttpHit", "HttpSearchClient", "HttpSearchError", "wait_healthy",
    "PAPER_QUERIES", "PROFILES", "Workload", "WorkloadProfile",
    "ZipfSampler", "build_workload", "synthetic_queries",
]
