"""Arrival processes: when each request hits the server.

Open-loop load generation separates *when requests arrive* from *when
the server finishes them*.  Both processes here produce a list of
monotonically non-decreasing arrival offsets (seconds from the start
of the run) and are **deterministic under a fixed seed**, so a load
test is replayable: the same seed produces byte-identical schedules
on any machine, and the property tests in
``tests/loadgen/test_arrival.py`` pin both the determinism and the
distributional shape.

* :func:`fixed_rate_arrivals` — one request every ``1/rate`` seconds,
  the metronome every saturation sweep steps through.
* :func:`poisson_arrivals` — exponentially-distributed inter-arrival
  gaps (``random.Random(seed).expovariate``), the memoryless process
  real user traffic is conventionally modelled by; bursts and lulls
  appear naturally, which is what makes queueing delay visible at
  offered rates well below saturation.
"""

from __future__ import annotations

from typing import Callable, Dict, List

__all__ = ["fixed_rate_arrivals", "poisson_arrivals",
           "ARRIVAL_PROCESSES", "arrival_times"]


def _check(rate: float, count: int) -> None:
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if count < 0:
        raise ValueError(f"request count must be >= 0, got {count}")


def fixed_rate_arrivals(rate: float, count: int,
                        seed: int = 0) -> List[float]:
    """``count`` arrivals exactly ``1/rate`` seconds apart, starting
    at offset 0.  ``seed`` is accepted (and ignored) so both processes
    share a call signature."""
    _check(rate, count)
    gap = 1.0 / rate
    return [i * gap for i in range(count)]


def poisson_arrivals(rate: float, count: int, seed: int = 0) -> List[float]:
    """``count`` arrivals of a Poisson process with intensity ``rate``
    (mean inter-arrival gap ``1/rate``), seeded and deterministic.
    The first arrival is at offset 0 so fixed-rate and Poisson
    schedules of the same rate cover comparable spans."""
    _check(rate, count)
    import random
    rng = random.Random(seed)
    offsets: List[float] = []
    clock = 0.0
    for _ in range(count):
        offsets.append(clock)
        clock += rng.expovariate(rate)
    return offsets


ARRIVAL_PROCESSES: Dict[str, Callable[[float, int, int], List[float]]] = {
    "fixed": fixed_rate_arrivals,
    "poisson": poisson_arrivals,
}


def arrival_times(process: str, rate: float, count: int,
                  seed: int = 0) -> List[float]:
    """Dispatch by process name (the CLI/benchmark entry point)."""
    try:
        factory = ARRIVAL_PROCESSES[process]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {process!r} "
            f"(known: {', '.join(sorted(ARRIVAL_PROCESSES))})") from None
    return factory(rate, count, seed)
