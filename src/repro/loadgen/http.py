"""An HTTP search target for the open-loop driver.

:class:`HttpSearchClient` makes a running ``repro serve`` instance
look like any other ``search(query, limit)`` callable, so
``loadtest --http URL`` and the BENCH_serving end-to-end row measure
the *whole* service path — JSON encode, socket, ThreadingHTTPServer
handler thread, pinned query, JSON decode — not just the engine.

Stdlib only (:mod:`urllib.request`).  Each worker thread gets its own
keep-alive connection state implicitly (urllib opens per request; the
server speaks HTTP/1.1 so the OS gets connection reuse where the
platform supports it).  Hits come back as :class:`HttpHit`, carrying
``doc_key``/``score`` so the driver's ``capture_results`` parity
checks work identically to the in-process path.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, List, Optional

__all__ = ["HttpHit", "HttpSearchError", "HttpSearchClient"]


@dataclass(frozen=True)
class HttpHit:
    """One hit as it came over the wire."""

    doc_key: str
    score: float
    event_type: Optional[str] = None
    narration: Optional[str] = None


class HttpSearchError(Exception):
    """A non-2xx response or transport failure; the driver records
    ``repr()`` of this on the request record."""


class HttpSearchClient:
    """``search(query, limit)`` over ``POST /search``.

    ``index`` routes to one raw index variant (the evaluation path);
    None exercises the full application stack the way a real user
    request would.
    """

    def __init__(self, base_url: str, index: Optional[str] = None,
                 timeout: float = 30.0,
                 spell_correct: bool = True,
                 snippets: bool = False) -> None:
        self.base_url = base_url.rstrip("/")
        self.index = index
        self.timeout = timeout
        self.spell_correct = spell_correct
        self.snippets = snippets

    def _post(self, path: str, payload: dict) -> dict:
        request = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                detail = json.loads(error.read()).get("error", "")
            except Exception:   # noqa: BLE001 — detail is best-effort
                pass
            raise HttpSearchError(
                f"POST {path} -> {error.code}"
                + (f": {detail}" if detail else "")) from error
        except (urllib.error.URLError, OSError,
                json.JSONDecodeError) as error:
            raise HttpSearchError(
                f"POST {path} failed: {error}") from error

    def search(self, query: str,
               limit: Optional[int] = 10) -> List[HttpHit]:
        payload: dict = {"query": query, "limit": limit}
        if self.index is not None:
            payload["index"] = self.index
        else:
            payload["spell_correct"] = self.spell_correct
            payload["snippets"] = self.snippets
        body = self._post("/search", payload)
        return [HttpHit(doc_key=hit["doc_key"], score=hit["score"],
                        event_type=hit.get("event_type"),
                        narration=hit.get("narration"))
                for hit in body.get("hits", ())]

    def ingest(self, match_payload: dict) -> dict:
        """``POST /ingest`` (used by the serve-smoke CI job)."""
        return self._post("/ingest", match_payload)

    def feedback(self, query: str, doc_key: str) -> dict:
        return self._post("/feedback",
                          {"query": query, "doc_key": doc_key})

    def healthz(self) -> dict:
        try:
            with urllib.request.urlopen(
                    self.base_url + "/healthz",
                    timeout=self.timeout) as response:
                return json.loads(response.read())
        except (urllib.error.URLError, OSError) as error:
            raise HttpSearchError(
                f"GET /healthz failed: {error}") from error


def wait_healthy(base_url: str, timeout: float = 30.0,
                 interval: float = 0.2) -> dict:
    """Poll ``/healthz`` until the service answers; returns the first
    healthy body.  For scripts that just started a server process."""
    import time
    client = HttpSearchClient(base_url, timeout=min(timeout, 5.0))
    deadline = time.monotonic() + timeout
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            return client.healthz()
        except HttpSearchError as error:
            last = error
            time.sleep(interval)
    raise HttpSearchError(
        f"service at {base_url} not healthy after {timeout}s: {last}")
