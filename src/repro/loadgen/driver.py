"""The open-loop driver: many clients, one clock, honest latency.

**Open loop** means the request schedule is fixed before the run: a
dispatcher releases each request at its arrival offset whether or not
earlier requests have finished, and worker threads drain the queue as
fast as the engine allows.  When the engine keeps up, achieved
throughput equals offered throughput and response time ≈ service
time; past saturation the queue grows, response time (measured from
the *scheduled* arrival, queue wait included) diverges from service
time, and achieved throughput flatlines at capacity.  A closed loop —
one caller in a ``for`` loop, like every earlier BENCH file — can
never show that divergence, because it only issues the next request
after the previous one returns.

Latency accounting runs through the PR 3 metrics layer: the driver
observes into ``loadgen_response_seconds`` / ``loadgen_service_seconds``
histograms registered with an exact-percentile reservoir
(:class:`~repro.core.observability.Histogram`), so p50/p95/p99 in the
report are exact whenever the run fits the reservoir and
bucket-interpolated (documented in
:func:`~repro.core.observability.bucket_quantile`) beyond it.  The
multi-process mode ships each shard's bounded reservoir samples and
bucket counts across the process boundary and merges the samples —
so cross-process percentiles stay exact whenever every shard's run
fit its reservoir, with the bucket interpolation kept as the
no-samples fallback.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.observability import (DEFAULT_LATENCY_BUCKETS,
                                      MetricsRegistry, bucket_quantile,
                                      get_observability, sorted_quantile)

__all__ = ["RequestRecord", "LoadResult", "OpenLoopDriver",
           "saturation_sweep", "run_multiprocess"]

#: reservoir capacity for the driver's latency histograms — runs up
#: to this many requests report *exact* percentiles
DEFAULT_RESERVOIR = 16384

SearchFn = Callable[[str, Optional[int]], Any]


@dataclass
class RequestRecord:
    """One request's life: offsets are seconds from the run start."""

    query: str
    scheduled: float
    started: float
    finished: float
    hits: int
    error: Optional[str] = None
    #: the result payload when the driver captures results for parity
    #: checking (None otherwise, to keep big runs lean)
    result: Any = None

    @property
    def service_seconds(self) -> float:
        return self.finished - self.started

    @property
    def response_seconds(self) -> float:
        """Queue wait included — the latency a client actually sees."""
        return self.finished - self.scheduled


@dataclass
class LoadResult:
    """One load run's report (see ``docs/performance.md``)."""

    name: str
    threads: int
    limit: Optional[int]
    requests: int
    completed: int
    errors: int
    answered: int
    offered_qps: float
    achieved_qps: float
    makespan_seconds: float
    response: Dict[str, float]
    service: Dict[str, float]
    percentile_source: str
    error_samples: List[str] = field(default_factory=list)
    records: Optional[List[RequestRecord]] = None
    #: the live instruments behind ``response``/``service`` — bucket
    #: counts plus the bounded reservoir, for callers (the
    #: multi-process shard worker) that merge runs; not serialized
    response_histogram: Any = None
    service_histogram: Any = None

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "threads": self.threads,
            "limit": self.limit,
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "answered": self.answered,
            "offered_qps": round(self.offered_qps, 2),
            "achieved_qps": round(self.achieved_qps, 2),
            "utilization": round(self.achieved_qps
                                 / self.offered_qps, 4)
            if self.offered_qps else None,
            "makespan_seconds": round(self.makespan_seconds, 4),
            "percentile_source": self.percentile_source,
            "response_seconds": {key: round(value, 6)
                                 for key, value in self.response.items()},
            "service_seconds": {key: round(value, 6)
                                for key, value in self.service.items()},
            "error_samples": self.error_samples[:5],
        }


def _percentiles(histogram, records_max: float) -> Dict[str, float]:
    return {
        "p50": histogram.quantile(0.50),
        "p95": histogram.quantile(0.95),
        "p99": histogram.quantile(0.99),
        "max": records_max,
        "mean": histogram.sum / histogram.count if histogram.count else 0.0,
    }


class OpenLoopDriver:
    """Drives ``search(query, limit)`` with an open-loop schedule.

    ``search`` is anything callable with a query string and a limit —
    a :class:`~repro.core.retrieval.KeywordSearchEngine` bound method,
    a closure over an :class:`~repro.search.searcher.IndexSearcher`,
    or a stub in tests.  The return value only needs ``len()`` (hit
    count); with ``capture_results=True`` it is kept verbatim on the
    record so callers can assert concurrent-vs-serial parity.

    The driver owns a private enabled :class:`MetricsRegistry` unless
    handed one, and *also* mirrors per-request latencies into the
    process-wide registry when that is enabled — so a traced/metered
    CLI run folds load-test latencies into its normal export.
    """

    def __init__(self, search: SearchFn, queries: Sequence[str],
                 arrivals: Sequence[float], threads: int = 4,
                 limit: Optional[int] = 10, name: str = "loadtest",
                 metrics: Optional[MetricsRegistry] = None,
                 reservoir: int = DEFAULT_RESERVOIR,
                 capture_results: bool = False) -> None:
        if len(queries) != len(arrivals):
            raise ValueError(f"{len(queries)} queries vs "
                             f"{len(arrivals)} arrivals")
        if threads < 1:
            raise ValueError(f"need at least one worker thread, "
                             f"got {threads}")
        self.search = search
        self.queries = list(queries)
        self.arrivals = list(arrivals)
        self.threads = threads
        self.limit = limit
        self.name = name
        self.metrics = metrics or MetricsRegistry(enabled=True)
        self.reservoir = reservoir
        self.capture_results = capture_results

    # ------------------------------------------------------------------

    def _histograms(self):
        response = self.metrics.histogram(
            "loadgen_response_seconds",
            "open-loop response time (queue wait included)",
            buckets=DEFAULT_LATENCY_BUCKETS, reservoir=self.reservoir)
        service = self.metrics.histogram(
            "loadgen_service_seconds",
            "engine service time under load",
            buckets=DEFAULT_LATENCY_BUCKETS, reservoir=self.reservoir)
        return response, service

    def run(self) -> LoadResult:
        response_h, service_h = self._histograms()
        global_metrics = get_observability().metrics
        work: "queue.SimpleQueue" = queue.SimpleQueue()
        records: List[RequestRecord] = []   # list.append is atomic

        base = time.perf_counter()

        def worker() -> None:
            while True:
                item = work.get()
                if item is None:
                    return
                offset, query = item
                started = time.perf_counter() - base
                result = None
                hits = 0
                error = None
                try:
                    result = self.search(query, self.limit)
                    hits = len(result) if result is not None else 0
                except Exception as exc:   # noqa: BLE001 — reported
                    error = f"{type(exc).__name__}: {exc}"
                finished = time.perf_counter() - base
                record = RequestRecord(
                    query=query, scheduled=offset, started=started,
                    finished=finished, hits=hits, error=error,
                    result=result if self.capture_results else None)
                response_h.observe(record.response_seconds)
                service_h.observe(record.service_seconds)
                if global_metrics.enabled \
                        and global_metrics is not self.metrics:
                    global_metrics.histogram(
                        "loadgen_response_seconds",
                        "open-loop response time (queue wait included)"
                    ).observe(record.response_seconds)
                records.append(record)

        threads = [threading.Thread(target=worker, daemon=True,
                                    name=f"{self.name}-worker-{i}")
                   for i in range(self.threads)]
        for thread in threads:
            thread.start()

        # the dispatcher: release each request at its scheduled offset
        for offset, query in zip(self.arrivals, self.queries):
            now = time.perf_counter() - base
            if offset > now:
                time.sleep(offset - now)
            work.put((offset, query))
        for _ in threads:
            work.put(None)
        for thread in threads:
            thread.join()

        return self._report(records, response_h, service_h)

    def _report(self, records: List[RequestRecord],
                response_h, service_h) -> LoadResult:
        completed = len(records)
        errors = [record.error for record in records
                  if record.error is not None]
        makespan = max((record.finished for record in records),
                       default=0.0)
        # N arrivals starting at offset 0 span N-1 inter-arrival gaps,
        # so the offered rate is (N-1)/span — this recovers the
        # configured rate exactly for fixed_rate_arrivals (N/span
        # would overestimate by N/(N-1)).  A single request has no
        # gap, hence no rate: reported as 0.0 (utilization then
        # serializes as null).
        span = self.arrivals[-1] if self.arrivals else 0.0
        if len(self.arrivals) > 1:
            offered = ((len(self.arrivals) - 1) / span if span > 0
                       else float("inf"))
        else:
            offered = 0.0
        achieved = completed / makespan if makespan > 0 else 0.0
        max_response = max((record.response_seconds
                            for record in records), default=0.0)
        max_service = max((record.service_seconds
                           for record in records), default=0.0)
        source = ("reservoir_exact" if response_h.exact
                  else "reservoir_sampled" if response_h.reservoir_capacity
                  else "bucket_interpolation")
        return LoadResult(
            name=self.name, threads=self.threads, limit=self.limit,
            requests=len(self.queries), completed=completed,
            errors=len(errors),
            answered=sum(1 for record in records
                         if record.hits and not record.error),
            offered_qps=offered, achieved_qps=achieved,
            makespan_seconds=makespan,
            response=_percentiles(response_h, max_response),
            service=_percentiles(service_h, max_service),
            percentile_source=source,
            error_samples=errors[:5],
            records=records if self.capture_results else None,
            response_histogram=response_h, service_histogram=service_h)


def saturation_sweep(run_at: Callable[[float], LoadResult],
                     rates: Sequence[float],
                     threshold: float = 0.9) -> dict:
    """Step offered rates upward and locate the knee.

    ``run_at(rate)`` runs one (short) load at that offered rate.
    Reports every point, the **saturation throughput** (highest
    achieved QPS anywhere in the sweep — the capacity estimate), and
    the first offered rate whose utilization (achieved/offered) fell
    below ``threshold`` — the knee where the open queue starts
    growing without bound.
    """
    points = []
    saturation_qps = 0.0
    saturated_at: Optional[float] = None
    for rate in rates:
        result = run_at(rate)
        utilization = (result.achieved_qps / result.offered_qps
                       if result.offered_qps else 0.0)
        points.append({
            "offered_qps": round(result.offered_qps, 2),
            "achieved_qps": round(result.achieved_qps, 2),
            "utilization": round(utilization, 4),
            "p99_response_seconds": round(result.response["p99"], 6),
        })
        saturation_qps = max(saturation_qps, result.achieved_qps)
        if saturated_at is None and utilization < threshold:
            saturated_at = result.offered_qps
    return {
        "points": points,
        "saturation_qps": round(saturation_qps, 2),
        "saturated_at_offered_qps": (round(saturated_at, 2)
                                     if saturated_at is not None
                                     else None),
        "utilization_threshold": threshold,
    }


# ----------------------------------------------------------------------
# multi-process mode
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ProcessTask:
    """Everything one worker process needs to run its shard — plain
    data, picklable, engines rebuilt on the far side."""

    index_dir: str
    index_name: str
    profile: str
    count: int
    rate: float
    arrival: str
    threads: int
    limit: Optional[int]
    seed: int


def _shard_counts(count: int, processes: int) -> List[int]:
    """Split ``count`` requests over ``processes`` shards so the
    totals add up exactly: the remainder goes one-per-shard to the
    first ``count % processes`` shards, and when ``count < processes``
    the surplus shards get zero (and are not spawned) rather than
    inflating the run to ``processes`` requests."""
    base, remainder = divmod(count, processes)
    return [base + (1 if shard < remainder else 0)
            for shard in range(processes)]


def _shard_histogram(histogram) -> dict:
    """One histogram's picklable summary: bucket counts (the merge
    fallback) plus the bounded reservoir samples (the precision
    path), already capped at the driver's reservoir capacity."""
    return {
        "bucket_counts": list(histogram.bucket_counts),
        "sum": histogram.sum,
        "count": histogram.count,
        "reservoir": histogram.reservoir_values(),
        "exact": histogram.exact,
    }


def _process_shard(task: _ProcessTask) -> dict:
    """Run one shard in a worker process; ships both latency
    histograms — bucket counts *and* the bounded reservoir samples —
    so the parent can merge exact percentiles instead of saturating
    at the top bucket bound."""
    from pathlib import Path

    from repro.core import KeywordSearchEngine
    from repro.loadgen.arrival import arrival_times
    from repro.loadgen.workload import build_workload
    from repro.search import load_index

    index = load_index(Path(task.index_dir), task.index_name)
    engine = KeywordSearchEngine(index)
    workload = build_workload(task.profile, task.count, seed=task.seed)
    arrivals = arrival_times(task.arrival, task.rate, task.count,
                             seed=task.seed)
    driver = OpenLoopDriver(engine.search, workload.queries, arrivals,
                            threads=task.threads, limit=task.limit,
                            name=f"shard-{task.seed}")
    result = driver.run()
    return {
        "buckets": list(result.response_histogram.buckets),
        "response": _shard_histogram(result.response_histogram),
        "service": _shard_histogram(result.service_histogram),
        "completed": result.completed,
        "errors": result.errors,
        "answered": result.answered,
        "offered_qps": result.offered_qps,
        "achieved_qps": result.achieved_qps,
        "max_response_seconds": result.response["max"],
        "max_service_seconds": result.service["max"],
    }


def _merge_window(shards: Sequence[dict], window: str,
                  buckets: Sequence[float], exact_max: float) -> dict:
    """Merge one latency window (``response`` or ``service``) across
    shards.  Prefers the pooled reservoir samples — exact when every
    shard's reservoir held all its observations, a near-equal-weight
    approximation otherwise (shard counts differ by at most one
    request) — and falls back to bucket interpolation only when no
    samples travelled, clamped to the exact max so p99 <= max holds
    even past the bucket ladder's top bound."""
    merged_counts = [0] * len(shards[0][window]["bucket_counts"])
    for shard in shards:
        for position, bucket_count in enumerate(
                shard[window]["bucket_counts"]):
            merged_counts[position] += bucket_count
    total = sum(shard[window]["count"] for shard in shards)
    total_sum = sum(shard[window]["sum"] for shard in shards)
    samples = sorted(value for shard in shards
                     for value in shard[window]["reservoir"])

    if samples:
        source = ("reservoir_exact"
                  if all(shard[window]["exact"] for shard in shards)
                  else "reservoir_sampled")

        def quantile(q: float) -> float:
            return sorted_quantile(samples, q)
    else:
        source = "bucket_interpolation"

        def quantile(q: float) -> float:
            return min(bucket_quantile(buckets, merged_counts, q),
                       exact_max)

    return {
        "source": source,
        "percentiles": {
            "p50": round(quantile(0.50), 6),
            "p95": round(quantile(0.95), 6),
            "p99": round(quantile(0.99), 6),
            "max": round(exact_max, 6),
            "mean": round(total_sum / total, 6) if total else 0.0,
        },
    }


def run_multiprocess(index_dir, index_name: str, profile: str,
                     count: int, rate: float, processes: int,
                     threads: int = 2, limit: Optional[int] = 10,
                     arrival: str = "poisson", seed: int = 42) -> dict:
    """Shard a load across ``processes`` worker processes, each with
    its own engine over the saved index at ``index_dir``, and merge
    the shards' latency histograms.

    Exactly ``count`` requests run in total (the remainder of
    ``count / processes`` is spread one-per-shard; zero-request shards
    are skipped).  Per-shard offered rate is ``rate`` divided by the
    number of *active* shards, so the combined offered load matches
    ``rate``.  Shards ship their bounded reservoir samples across the
    process boundary: merged p50/p95/p99 come from the pooled samples
    (``reservoir_exact`` when nothing overflowed), with
    :func:`~repro.core.observability.bucket_quantile` as the fallback
    only when no samples travelled.
    """
    from concurrent.futures import ProcessPoolExecutor

    if processes < 1:
        raise ValueError(f"need at least one process, got {processes}")
    if count < 1:
        raise ValueError(f"need at least one request, got {count}")
    counts = [shard_count for shard_count
              in _shard_counts(count, processes) if shard_count > 0]
    tasks = [_ProcessTask(index_dir=str(index_dir),
                          index_name=index_name, profile=profile,
                          count=shard_count, rate=rate / len(counts),
                          arrival=arrival, threads=threads,
                          limit=limit, seed=seed + shard)
             for shard, shard_count in enumerate(counts)]
    with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
        shards = list(pool.map(_process_shard, tasks))

    buckets = shards[0]["buckets"]
    response = _merge_window(
        shards, "response", buckets,
        max(shard["max_response_seconds"] for shard in shards))
    service = _merge_window(
        shards, "service", buckets,
        max(shard["max_service_seconds"] for shard in shards))

    return {
        "processes": len(tasks),
        "threads_per_process": threads,
        "requests": sum(shard["response"]["count"] for shard in shards),
        "completed": sum(shard["completed"] for shard in shards),
        "errors": sum(shard["errors"] for shard in shards),
        "answered": sum(shard["answered"] for shard in shards),
        "offered_qps": round(sum(shard["offered_qps"]
                                 for shard in shards), 2),
        "achieved_qps": round(sum(shard["achieved_qps"]
                                  for shard in shards), 2),
        "percentile_source": response["source"],
        "response_seconds": response["percentiles"],
        "service_seconds": service["percentiles"],
    }
