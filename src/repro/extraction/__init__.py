"""Information extraction: NER + two-level lexical analysis (§3.3)."""

from repro.extraction.events import ExtractedEvent
from repro.extraction.extractor import (InformationExtractor,
                                        extract_corpus_events)
from repro.extraction.lexical import (DOMAIN_TRIGGERS, LexicalAnalyzer,
                                      LexicalMatch)
from repro.extraction.ner import (Entity, NamedEntityRecognizer,
                                  TaggedText)
from repro.extraction.templates import TEMPLATES, Template
from repro.extraction.wsd import (LeskDisambiguator, Sense,
                                  SenseInventory, default_inventory)

__all__ = [
    "ExtractedEvent",
    "InformationExtractor",
    "extract_corpus_events",
    "NamedEntityRecognizer",
    "TaggedText",
    "Entity",
    "LexicalAnalyzer",
    "LexicalMatch",
    "DOMAIN_TRIGGERS",
    "Template",
    "TEMPLATES",
    "LeskDisambiguator",
    "Sense",
    "SenseInventory",
    "default_inventory",
]
