"""Hand-crafted extraction templates (paper §3.3.2, [30]).

Each template is a pattern over NER-tagged narration text that maps a
surface form to an event kind with subject/object roles.  Like the
original system's templates — crafted for the fixed phrasebook of the
UEFA web-site — these are crafted for the narration generator's
phrasebook, and achieve the same ≈100% extraction rate on event
narrations (the paper reports 100% on UEFA text, §3.3.2).

Patterns use two placeholders that expand to tag regexes:

* ``{P}`` — a player tag ``<teamN_playerNN>``
* ``{T}`` — a team tag ``<teamN>``

Role semantics per template are given by named groups: ``subj``,
``obj``, ``team``, ``objteam``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Pattern

from repro.soccer.domain import EventKind

__all__ = ["Template", "TEMPLATES", "compile_templates"]

_P = r"<team[12]_player\d{2}>"
_T = r"<team[12]>"


@dataclass(frozen=True)
class Template:
    """One extraction template."""

    kind: str
    pattern: Pattern[str]
    #: when True the matched subject/object come from the same team
    #: tag as the ``team`` group; used only for documentation.
    description: str = ""


def _template(kind: str, raw: str, description: str = "") -> Template:
    expanded = raw.replace("{P}", _P).replace("{T}", _T)
    expanded = (expanded
                .replace("{subj}", f"(?P<subj>{_P})")
                .replace("{obj}", f"(?P<obj>{_P})")
                .replace("{team}", f"(?P<team>{_T})")
                .replace("{objteam}", f"(?P<objteam>{_T})"))
    return Template(kind=kind, pattern=re.compile(expanded),
                    description=description)


def compile_templates() -> List[Template]:
    """The full ordered template list (most specific first)."""
    return [
        # ---- cards before fouls: "Yellow card for X after persistent
        # fouling" must not be read as a foul ----
        _template(EventKind.YELLOW_CARD,
                  r"{subj} \({team}\) is booked for",
                  "booked for a late challenge"),
        _template(EventKind.YELLOW_CARD,
                  r"{subj} \({team}\) is shown the yellow card"),
        _template(EventKind.YELLOW_CARD,
                  r"Yellow card for {subj} after"),
        _template(EventKind.RED_CARD,
                  r"{subj} \({team}\) is sent off"),
        _template(EventKind.RED_CARD,
                  r"{subj} \({team}\) is shown a straight red card"),

        # ---- goals ----
        _template(EventKind.GOAL, r"{subj} \({team}\) scores!"),
        _template(EventKind.PENALTY_GOAL,
                  r"{subj} \({team}\) converts the penalty"),
        _template(EventKind.PENALTY_GOAL,
                  r"{subj} \({team}\) makes no mistake from the spot"),
        _template(EventKind.OWN_GOAL,
                  r"Disaster for {objteam} as {subj} turns the ball "
                  r"into his own net"),
        _template(EventKind.OWN_GOAL,
                  r"{subj} \({team}\) inadvertently diverts the cross "
                  r"past his own keeper"),

        # ---- misses / shots / saves ----
        _template(EventKind.MISSED_GOAL,
                  r"{subj} \({team}\) misses a goal"),
        _template(EventKind.MISSED_GOAL,
                  r"{subj} \({team}\) fires wide"),
        _template(EventKind.MISSED_GOAL,
                  r"{subj} \({team}\) sends the header over the bar"),
        _template(EventKind.MISSED_GOAL,
                  r"{subj} \({team}\) drags the effort inches wide"),
        _template(EventKind.SAVE,
                  r"Great save by {subj} \({team}\) to deny {obj}"),
        _template(EventKind.SAVE,
                  r"{subj} \({team}\) saves well from {obj}'s low drive"),
        _template(EventKind.SAVE,
                  r"{subj} \({team}\) parries {obj}'s fierce strike"),
        _template(EventKind.SAVE,
                  r"{subj} \({team}\) gathers {obj}'s tame effort"),
        _template(EventKind.SHOOT,
                  r"{subj} \({team}\) lets fly from 25 metres"),
        _template(EventKind.SHOOT,
                  r"{subj} \({team}\) tries his luck from distance"),
        _template(EventKind.SHOOT,
                  r"{subj} \({team}\) drives a low effort towards"),

        # ---- fouls ----
        _template(EventKind.FOUL,
                  r"{subj} gives away a free-kick following a "
                  r"challenge on {obj}",
                  "the paper's Fig. 3 example surface form"),
        _template(EventKind.FOUL,
                  r"{subj} \({team}\) commits a foul after "
                  r"challenging {obj}",
                  "the paper's §3.4 example"),
        _template(EventKind.FOUL, r"{subj} brings down {obj}"),
        _template(EventKind.FOUL,
                  r"Free-kick to {objteam} after {subj} trips {obj}"),
        _template(EventKind.HANDBALL,
                  r"{subj} \({team}\) is penalised for handball"),

        # ---- offsides ----
        _template(EventKind.OFFSIDE,
                  r"{subj} \({team}\) is flagged for offside"),
        _template(EventKind.OFFSIDE,
                  r"{subj} \({team}\) strays offside"),

        # ---- set pieces ----
        _template(EventKind.CORNER,
                  r"{subj} \({team}\) delivers the corner"),
        _template(EventKind.CORNER,
                  r"{subj} \({team}\) swings in a corner"),
        _template(EventKind.FREE_KICK,
                  r"{subj} \({team}\) whips the free-kick"),
        _template(EventKind.FREE_KICK,
                  r"{subj} \({team}\) stands over the free-kick"),
        _template(EventKind.PENALTY,
                  r"Penalty to {team}! {subj} steps up"),

        # ---- substitutions / injuries ----
        _template(EventKind.SUBSTITUTION,
                  r"{team} substitution: {subj} replaces {obj}"),
        _template(EventKind.SUBSTITUTION,
                  r"{obj} makes way for {subj} in a tactical switch "
                  r"by {team}"),
        _template(EventKind.INJURY,
                  r"{obj} \({team}\) is down injured"),
        _template(EventKind.INJURY,
                  r"Worrying moment as {obj} pulls up holding"),

        # ---- duels ----
        _template(EventKind.TACKLE,
                  r"{subj} \({team}\) wins the ball with a strong "
                  r"tackle on {obj}"),
        _template(EventKind.TACKLE,
                  r"Superb sliding tackle by {subj} to dispossess {obj}"),
        _template(EventKind.DRIBBLE,
                  r"{subj} \({team}\) skips past {obj}"),
        _template(EventKind.DRIBBLE,
                  r"{subj} dances through, leaving {obj} behind"),
        _template(EventKind.CLEARANCE,
                  r"{subj} \({team}\) hacks the ball clear"),
        _template(EventKind.CLEARANCE, r"{subj} heads the danger away"),
        _template(EventKind.INTERCEPTION,
                  r"{subj} \({team}\) reads the pass and intercepts"),
        _template(EventKind.INTERCEPTION,
                  r"{subj} steps in to cut out the through ball"),

        # ---- passes ----
        _template(EventKind.LONG_PASS,
                  r"{subj} plays a long ball towards {obj}"),
        _template(EventKind.LONG_PASS,
                  r"{subj} sprays a raking long pass out to {obj}"),
        _template(EventKind.CROSS, r"{subj} crosses for {obj}"),
        _template(EventKind.CROSS,
                  r"{subj} whips in a cross looking for {obj}"),
        _template(EventKind.PASS,
                  r"{subj} feeds {obj}",
                  "the paper's Fig. 3 'Iniesta feeds Eto'o' form"),
        _template(EventKind.PASS, r"{subj} finds {obj} with a neat pass"),
        _template(EventKind.PASS,
                  r"{subj} slips the ball through to {obj}"),

        # ---- match phases ----
        _template(EventKind.KICK_OFF, r"^We are under way at"),
        _template(EventKind.HALF_TIME,
                  r"^The referee blows for half-time"),
        _template(EventKind.FULL_TIME, r"^Full-time at"),
    ]


#: module-level compiled template list (immutable; share freely)
TEMPLATES: List[Template] = compile_templates()
