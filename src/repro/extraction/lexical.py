"""Two-level lexical analysis (paper §3.3.2).

Level 1 — *keyword/phrase recognition*: the tagged narration is scanned
for the domain lexicon (entity tags plus event trigger words); a
narration containing no trigger is rejected immediately, which is what
discards colour commentary cheaply.

Level 2 — *template matching*: narrations that pass level 1 are matched
against the hand-crafted templates; the first (most specific) match
wins and its named groups provide the subject/object/team roles.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.extraction.ner import TaggedText
from repro.extraction.templates import TEMPLATES, Template

__all__ = ["DOMAIN_TRIGGERS", "LexicalAnalyzer", "LexicalMatch"]

#: Level-1 trigger lexicon: a narration must contain at least one of
#: these (lowercased substring match) to be considered for extraction.
DOMAIN_TRIGGERS: Tuple[str, ...] = (
    "scores", "converts the penalty", "no mistake from the spot",
    "own net", "own keeper",
    "misses", "fires wide", "over the bar", "inches wide",
    "save", "saves", "parries", "gathers",
    "lets fly", "tries his luck", "low effort",
    "free-kick", "foul", "brings down", "trips",
    "handball", "offside",
    "booked", "yellow card", "red card", "sent off",
    "corner", "penalty to",
    "substitution", "makes way for", "replaces",
    "injured", "pulls up",
    "tackle", "dispossess", "skips past", "dances through",
    "clear", "danger away", "intercepts", "cut out",
    "long ball", "long pass", "crosses", "cross looking",
    "feeds", "neat pass", "slips the ball",
    "under way", "half-time", "full-time",
)

_TAG = re.compile(r"<team[12](?:_player\d{2})?>")


class LexicalMatch:
    """Outcome of level-2 matching: the template plus its groups."""

    __slots__ = ("template", "groups")

    def __init__(self, template: Template, groups: dict) -> None:
        self.template = template
        self.groups = groups

    @property
    def kind(self) -> str:
        return self.template.kind


class LexicalAnalyzer:
    """Runs both levels over tagged narrations."""

    def __init__(self, templates: Optional[List[Template]] = None,
                 triggers: Tuple[str, ...] = DOMAIN_TRIGGERS) -> None:
        self._templates = templates if templates is not None else TEMPLATES
        self._triggers = triggers

    # ------------------------------------------------------------------
    # level 1
    # ------------------------------------------------------------------

    def recognize_keywords(self, tagged: TaggedText) -> List[str]:
        """The domain keywords and tags present, in order of appearance.

        Returns an empty list when no *trigger* keyword is present —
        the level-1 rejection that filters colour commentary.
        """
        lowered = tagged.text.lower()
        hits: List[Tuple[int, str]] = []
        for trigger in self._triggers:
            start = lowered.find(trigger)
            if start >= 0:
                hits.append((start, trigger))
        if not hits:
            return []
        for match in _TAG.finditer(tagged.text):
            hits.append((match.start(), match.group()))
        hits.sort()
        return [token for _, token in hits]

    def passes_level_one(self, tagged: TaggedText) -> bool:
        return bool(self.recognize_keywords(tagged))

    # ------------------------------------------------------------------
    # level 2
    # ------------------------------------------------------------------

    def match_template(self, tagged: TaggedText) -> Optional[LexicalMatch]:
        """First matching template over the tagged text, or None."""
        for template in self._templates:
            match = template.pattern.search(tagged.text)
            if match is not None:
                return LexicalMatch(template, match.groupdict())
        return None

    def analyze(self, tagged: TaggedText) -> Optional[LexicalMatch]:
        """Run level 1 then level 2."""
        if not self.passes_level_one(tagged):
            return None
        return self.match_template(tagged)
