"""Word sense disambiguation for lexical ambiguities (paper §6, §8).

The paper distinguishes lexical from structural ambiguity and defers
the lexical kind to future work: "The performance will be further
improved by implementing a word disambiguation module for lexical
ambiguities" (§8).  This module implements that extension with a
simplified Lesk algorithm over a hand-built domain sense inventory —
the same hand-crafted-resources philosophy as the IE templates.

Each ambiguous surface word carries several :class:`Sense` entries; a
sense is chosen by overlapping the word's *context* (the other words
of the narration or query) with the sense's signature vocabulary.
Senses may point at an ontology class, letting the retrieval layer
route a disambiguated query term to the boosted ``event`` field only
when the *domain* sense wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.rdf.namespace import SOCCER
from repro.rdf.term import URIRef
from repro.search.analysis import StandardAnalyzer

__all__ = ["Sense", "SenseInventory", "LeskDisambiguator",
           "default_inventory"]


@dataclass(frozen=True)
class Sense:
    """One sense of an ambiguous word."""

    sense_id: str
    gloss: str
    #: signature vocabulary (will be analyzer-normalized on load)
    signature: Tuple[str, ...]
    #: ontology class this sense denotes, when it is a domain sense
    ontology_class: Optional[URIRef] = None

    @property
    def is_domain_sense(self) -> bool:
        return self.ontology_class is not None


class SenseInventory:
    """Word → senses, with analyzer-normalized signatures."""

    def __init__(self, senses: Dict[str, Sequence[Sense]],
                 analyzer: Optional[StandardAnalyzer] = None) -> None:
        self._analyzer = analyzer or StandardAnalyzer()
        self._senses: Dict[str, List[Sense]] = {}
        self._signatures: Dict[str, List[set]] = {}
        for word, word_senses in senses.items():
            key = self._normalize_word(word)
            self._senses[key] = list(word_senses)
            self._signatures[key] = [
                set(self._normalize_terms(sense.signature)
                    ) | set(self._normalize_terms(sense.gloss.split()))
                for sense in word_senses
            ]

    def _normalize_word(self, word: str) -> str:
        terms = self._analyzer.terms(word)
        return terms[0] if terms else word.lower()

    def _normalize_terms(self, words: Iterable[str]) -> List[str]:
        normalized: List[str] = []
        for word in words:
            normalized.extend(self._analyzer.terms(word))
        return normalized

    def senses(self, word: str) -> List[Sense]:
        return self._senses.get(self._normalize_word(word), [])

    def signature_sets(self, word: str) -> List[set]:
        return self._signatures.get(self._normalize_word(word), [])

    def is_ambiguous(self, word: str) -> bool:
        return len(self.senses(word)) > 1

    def words(self) -> List[str]:
        return sorted(self._senses)

    def normalize_context(self, text: str) -> set:
        return set(self._analyzer.terms(text))


class LeskDisambiguator:
    """Simplified Lesk: pick the sense whose signature overlaps the
    context most; ties and zero overlap fall back to the first
    (most-frequent domain) sense."""

    def __init__(self, inventory: Optional[SenseInventory] = None) -> None:
        self.inventory = inventory or default_inventory()

    def disambiguate(self, word: str, context: str) -> Optional[Sense]:
        """Best sense of ``word`` in ``context`` (None if unknown)."""
        senses = self.inventory.senses(word)
        if not senses:
            return None
        if len(senses) == 1:
            return senses[0]
        context_terms = self.inventory.normalize_context(context)
        context_terms.discard(
            next(iter(self.inventory.normalize_context(word)), ""))
        signatures = self.inventory.signature_sets(word)
        scores = [len(signature & context_terms)
                  for signature in signatures]
        best = max(scores)
        if best == 0:
            return senses[0]
        return senses[scores.index(best)]

    def domain_class(self, word: str, context: str) -> Optional[URIRef]:
        """Ontology class of the chosen sense, if it is a domain one."""
        sense = self.disambiguate(word, context)
        if sense is not None and sense.is_domain_sense:
            return sense.ontology_class
        return None

    def annotate_query(self, query_text: str
                       ) -> List[Tuple[str, Optional[Sense]]]:
        """Per-word disambiguation over a whole keyword query."""
        words = query_text.split()
        return [(word, self.disambiguate(word, query_text))
                for word in words]


def default_inventory() -> SenseInventory:
    """The hand-built soccer sense inventory.

    Covers the classic lexical traps of the domain: words whose
    everyday sense differs from their soccer sense.
    """
    return SenseInventory({
        "cross": [
            Sense("cross/pass", "a pass delivered from the wing into "
                  "the penalty area", ("wing", "ball", "delivers",
                                       "header", "post", "area", "box"),
                  SOCCER.Cross),
            Sense("cross/angry", "annoyed or angry",
                  ("angry", "upset", "annoyed", "referee", "words")),
        ],
        "book": [
            Sense("book/caution", "to caution a player with a yellow "
                  "card", ("yellow", "card", "referee", "challenge",
                           "caution", "foul"),
                  SOCCER.YellowCard),
            Sense("book/read", "a written work",
                  ("read", "page", "write", "author")),
        ],
        "goal": [
            Sense("goal/score", "the ball crossing the line for a "
                  "score", ("scores", "net", "keeper", "lead",
                            "shot", "minute"),
                  SOCCER.Goal),
            Sense("goal/aim", "an objective to achieve",
                  ("season", "ambition", "target", "objective",
                   "aim", "club", "top", "qualification")),
        ],
        "save": [
            Sense("save/keeper", "a goalkeeper stopping a shot",
                  ("keeper", "goalkeeper", "shot", "deny", "parries",
                   "stop"),
                  SOCCER.Save),
            Sense("save/rescue", "to rescue or preserve",
                  ("rescue", "money", "time", "preserve")),
        ],
        "pitch": [
            Sense("pitch/field", "the playing field",
                  ("grass", "field", "players", "stadium", "surface")),
            Sense("pitch/throw", "to throw",
                  ("throw", "toss")),
        ],
        "corner": [
            Sense("corner/kick", "a corner kick",
                  ("delivers", "kick", "flag", "swings", "box",
                   "header"),
                  SOCCER.Corner),
            Sense("corner/place", "the meeting point of two edges",
                  ("street", "room", "edge")),
        ],
        "head": [
            Sense("head/header", "to play the ball with the head",
                  ("ball", "clear", "wide", "corner", "cross",
                   "towering"),
                  SOCCER.Header),
            Sense("head/leader", "a person in charge",
                  ("coach", "club", "delegation", "chief")),
        ],
    })
