"""Extracted-event records produced by the IE module."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["ExtractedEvent"]


@dataclass
class ExtractedEvent:
    """What the IE module recovered from one narration.

    All player/team references are *names resolved from the tagged
    entities* — i.e., what NER recognized, not ground truth.  ``kind``
    is an ontology event class local name, or ``"UnknownEvent"`` when
    no template matched (§3.4: unknown narrations are kept, not
    discarded).
    """

    narration_id: str            # unique per narration within the corpus
    match_id: str
    minute: int
    narration: str               # the original free text
    kind: str = "UnknownEvent"
    subject: Optional[str] = None         # player display name
    object: Optional[str] = None
    subject_team: Optional[str] = None    # team name
    object_team: Optional[str] = None
    attributes: Dict[str, str] = field(default_factory=dict)

    @property
    def is_unknown(self) -> bool:
        return self.kind == "UnknownEvent"
