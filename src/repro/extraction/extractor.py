"""The information extractor facade (paper §3.3, [30]).

Combines NER and the two-level lexical analyzer, and resolves tags
back to entity names, producing
:class:`~repro.extraction.events.ExtractedEvent` records for every
narration of a crawled match — typed events where a template matched,
``UnknownEvent`` otherwise (§3.4: unknown narrations are preserved so
worst-case recall never drops below the traditional index's).
"""

from __future__ import annotations

from typing import List, Optional

from repro.extraction.events import ExtractedEvent
from repro.extraction.lexical import LexicalAnalyzer, LexicalMatch
from repro.extraction.ner import Entity, NamedEntityRecognizer, TaggedText
from repro.soccer.crawler import CrawledMatch

__all__ = ["InformationExtractor", "extract_corpus_events"]


class InformationExtractor:
    """Extracts events from one crawled match's narrations.

    ``language`` selects the template set (``"en"`` for UEFA-style
    text, ``"tr"`` for SporX-style Turkish); a custom ``analyzer``
    overrides it entirely — the paper's point that porting the IE
    module to a new language means only swapping templates (§3.3).
    """

    def __init__(self, crawled: CrawledMatch,
                 analyzer: Optional[LexicalAnalyzer] = None,
                 language: str = "en") -> None:
        self.crawled = crawled
        self.ner = NamedEntityRecognizer(crawled)
        if analyzer is not None:
            self.analyzer = analyzer
        elif language == "en":
            self.analyzer = LexicalAnalyzer()
        elif language == "tr":
            from repro.extraction.templates_tr import (TURKISH_TEMPLATES,
                                                       TURKISH_TRIGGERS)
            self.analyzer = LexicalAnalyzer(TURKISH_TEMPLATES,
                                            TURKISH_TRIGGERS)
        else:
            raise ValueError(f"unsupported extraction language "
                             f"{language!r} (expected 'en' or 'tr')")

    def extract_all(self) -> List[ExtractedEvent]:
        """One :class:`ExtractedEvent` per narration, in order."""
        events = []
        for index, narration in enumerate(self.crawled.narrations):
            events.append(self.extract(index, narration.minute,
                                       narration.text))
        return events

    def extract(self, index: int, minute: int,
                text: str) -> ExtractedEvent:
        """Extract from one narration line."""
        narration_id = f"{self.crawled.match_id}_n{index:04d}"
        event = ExtractedEvent(
            narration_id=narration_id,
            match_id=self.crawled.match_id,
            minute=minute,
            narration=text,
        )
        tagged = self.ner.tag(text)
        match = self.analyzer.analyze(tagged)
        if match is None:
            return event
        self._fill_roles(event, tagged, match)
        return event

    # ------------------------------------------------------------------

    def _fill_roles(self, event: ExtractedEvent, tagged: TaggedText,
                    match: LexicalMatch) -> None:
        event.kind = match.kind
        subject = self._entity(tagged, match.groups.get("subj"))
        object_ = self._entity(tagged, match.groups.get("obj"))
        team = self._entity(tagged, match.groups.get("team"))
        object_team = self._entity(tagged, match.groups.get("objteam"))

        if subject is not None:
            event.subject = subject.name
            event.subject_team = subject.team
            if subject.position:
                event.attributes["subject_position"] = subject.position
        if object_ is not None:
            event.object = object_.name
            event.object_team = object_.team
            if object_.position:
                event.attributes["object_position"] = object_.position
        if team is not None:
            # an explicit "(Team)" marker wins over the line-up lookup
            event.subject_team = team.team
        if object_team is not None and event.object_team is None:
            event.object_team = object_team.team

    def _entity(self, tagged: TaggedText,
                tag: Optional[str]) -> Optional[Entity]:
        if not tag:
            return None
        return tagged.entity(tag)


def extract_corpus_events(crawled_matches) -> List[ExtractedEvent]:
    """Extract events for a whole corpus (list of crawled matches)."""
    events: List[ExtractedEvent] = []
    for crawled in crawled_matches:
        events.extend(InformationExtractor(crawled).extract_all())
    return events
