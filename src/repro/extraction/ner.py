"""Named entity recognition (paper §3.3.1).

Uses the crawled basic information (team names and line-ups) to rewrite
entity mentions in narrations into positional tags::

    "Iniesta scores!"  →  "<team2_player08> scores!"

exactly as the paper describes ("the team and player names are
replaced by tags of the form <team1>, <team2>, <team1 player5>").
The tag index is the player's position in the crawled line-up sheet
(1-based), so downstream stages can resolve tags without any access to
the simulator's ground truth.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.soccer.crawler import CrawledMatch

__all__ = ["Entity", "TaggedText", "NamedEntityRecognizer"]

_PLAYER_TAG = re.compile(r"<team(?P<team>[12])_player(?P<index>\d{2})>")
_TEAM_TAG = re.compile(r"<team(?P<team>[12])>")


@dataclass(frozen=True)
class Entity:
    """What a tag stands for."""

    tag: str
    kind: str                 # "player" | "team"
    team: str                 # team name
    name: Optional[str] = None        # player display name
    full_name: Optional[str] = None
    position: Optional[str] = None
    shirt_number: Optional[int] = None


class TaggedText:
    """A narration with entity mentions replaced by tags."""

    def __init__(self, text: str, entities: Dict[str, Entity]) -> None:
        self.text = text
        self.entities = entities

    def entity(self, tag: str) -> Optional[Entity]:
        return self.entities.get(tag)

    def player_tags(self) -> List[str]:
        return _PLAYER_TAG.findall(self.text) and [
            match.group() for match in _PLAYER_TAG.finditer(self.text)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TaggedText {self.text[:60]!r}>"


class NamedEntityRecognizer:
    """Tagger built from one crawled match's basic information."""

    def __init__(self, crawled: CrawledMatch) -> None:
        self._entities: Dict[str, Entity] = {}
        replacements: List[Tuple[str, str]] = []

        for team_index, team_name in ((1, crawled.home_team),
                                      (2, crawled.away_team)):
            team_tag = f"<team{team_index}>"
            self._entities[team_tag] = Entity(
                tag=team_tag, kind="team", team=team_name)
            replacements.append((team_name, team_tag))
            for lineup_index, entry in enumerate(
                    crawled.lineup(team_name), start=1):
                tag = f"<team{team_index}_player{lineup_index:02d}>"
                self._entities[tag] = Entity(
                    tag=tag, kind="player", team=team_name,
                    name=entry.name, full_name=entry.full_name,
                    position=entry.position,
                    shirt_number=entry.shirt_number)
                replacements.append((entry.name, tag))
                if entry.full_name != entry.name:
                    replacements.append((entry.full_name, tag))

        # longest mention first so "van der Sar" wins over "Sar" and
        # full names win over display names they contain.
        replacements.sort(key=lambda pair: len(pair[0]), reverse=True)
        alternation = "|".join(re.escape(mention)
                               for mention, _ in replacements)
        # mentions end cleanly (no letter continues them); apostrophes
        # are allowed inside names (Eto'o) by exact-mention matching.
        self._pattern = re.compile(
            rf"(?<![A-Za-z])(?:{alternation})(?![a-z])")
        self._tag_for = {mention: tag for mention, tag in replacements}

    def tag(self, text: str) -> TaggedText:
        """Replace every recognized mention with its tag."""
        tagged = self._pattern.sub(
            lambda match: self._tag_for[match.group()], text)
        return TaggedText(tagged, self._entities)

    def entity(self, tag: str) -> Optional[Entity]:
        return self._entities.get(tag)
