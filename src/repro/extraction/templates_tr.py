"""Turkish extraction templates — the SporX side of the IE module.

Mirrors :mod:`repro.extraction.templates` for the Turkish phrasebook
of :mod:`repro.soccer.turkish`, demonstrating the paper's claim that
the template approach ports across languages "without using any
linguistic tool" (§3.3) — only the templates change; NER, the
two-level analyzer and everything downstream are untouched.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.extraction.templates import Template, _P, _T
from repro.soccer.domain import EventKind

__all__ = ["TURKISH_TEMPLATES", "TURKISH_TRIGGERS",
           "compile_turkish_templates"]


def _template(kind: str, raw: str) -> Template:
    expanded = (raw
                .replace("{subj}", f"(?P<subj>{_P})")
                .replace("{obj}", f"(?P<obj>{_P})")
                .replace("{team}", f"(?P<team>{_T})")
                .replace("{objteam}", f"(?P<objteam>{_T})"))
    return Template(kind=kind, pattern=re.compile(expanded))


def compile_turkish_templates() -> List[Template]:
    """The ordered Turkish template list (most specific first)."""
    return [
        # cards before fouls, as in the English set
        _template(EventKind.YELLOW_CARD,
                  r"{subj} \({team}\) sarı kart gördü"),
        _template(EventKind.YELLOW_CARD,
                  r"{subj} \({team}\) sert müdahale sonrası kartla "
                  r"cezalandırıldı"),
        _template(EventKind.RED_CARD,
                  r"{subj} \({team}\) kırmızı kartla oyun dışı"),
        _template(EventKind.RED_CARD,
                  r"{subj} \({team}\) direkt kırmızı kart gördü"),

        _template(EventKind.GOAL, r"{subj} \({team}\) golü attı!"),
        _template(EventKind.PENALTY_GOAL,
                  r"{subj} \({team}\) penaltıyı gole çevirdi"),
        _template(EventKind.PENALTY_GOAL,
                  r"{subj} \({team}\) penaltı noktasından şaşırmadı"),
        _template(EventKind.OWN_GOAL,
                  r"{subj} \({team}\) topu kendi ağlarına gönderdi"),
        _template(EventKind.OWN_GOAL,
                  r"Talihsiz an: {subj} kendi kalesine attı"),

        _template(EventKind.MISSED_GOAL,
                  r"{subj} \({team}\) mutlak fırsatı kaçırdı"),
        _template(EventKind.MISSED_GOAL,
                  r"{subj} \({team}\) topu auta gönderdi"),
        _template(EventKind.MISSED_GOAL,
                  r"{subj} \({team}\) kafa vuruşunda üstten auta"),
        _template(EventKind.SAVE,
                  r"{subj} \({team}\) müthiş bir kurtarışla {obj} "
                  r"şutunu çıkardı"),
        _template(EventKind.SAVE,
                  r"{subj} \({team}\) {obj} vuruşunda gole izin "
                  r"vermedi"),
        _template(EventKind.SAVE,
                  r"{subj} \({team}\) topu kontrol etti, {obj} üzgün"),
        _template(EventKind.SHOOT,
                  r"{subj} \({team}\) uzaklardan şut çekti"),
        _template(EventKind.SHOOT,
                  r"{subj} \({team}\) şansını denedi uzak mesafeden"),

        _template(EventKind.FOUL,
                  r"{subj} rakibi {obj} üzerinde faul yaptı"),
        _template(EventKind.FOUL,
                  r"{subj} \({team}\) sert müdahalesiyle {obj} "
                  r"oyuncusunu durdurdu"),
        _template(EventKind.FOUL,
                  r"Serbest vuruş: {subj} rakibi {obj} oyuncusunu "
                  r"düşürdü"),
        _template(EventKind.HANDBALL,
                  r"{subj} \({team}\) elle oynadı"),

        _template(EventKind.OFFSIDE,
                  r"{subj} \({team}\) ofsayta yakalandı"),
        _template(EventKind.OFFSIDE,
                  r"Bayrak kalktı: {subj} ofsayt pozisyonunda"),

        _template(EventKind.CORNER,
                  r"{subj} \({team}\) kornere geldi"),
        _template(EventKind.CORNER,
                  r"{subj} \({team}\) korner vuruşunu kullandı"),
        _template(EventKind.FREE_KICK,
                  r"{subj} \({team}\) serbest vuruşu kullandı"),
        _template(EventKind.FREE_KICK,
                  r"{subj} \({team}\) frikiği ceza sahasına"),
        _template(EventKind.PENALTY,
                  r"Penaltı {team} lehine! Topun başında {subj} var"),

        _template(EventKind.SUBSTITUTION,
                  r"{team} oyuncu değişikliği: {subj} oyuna girdi, "
                  r"{obj} çıktı"),
        _template(EventKind.SUBSTITUTION,
                  r"{obj} yerini {subj} oyuncusuna bıraktı"),
        _template(EventKind.INJURY,
                  r"{obj} \({team}\) sakatlandı"),
        _template(EventKind.INJURY,
                  r"Endişeli anlar: {obj} yerde kaldı"),

        _template(EventKind.TACKLE,
                  r"{subj} \({team}\) mükemmel bir müdahaleyle {obj} "
                  r"elinden topu aldı"),
        _template(EventKind.DRIBBLE,
                  r"{subj} \({team}\) çalımlarıyla {obj} oyuncusunu "
                  r"geçti"),
        _template(EventKind.CLEARANCE,
                  r"{subj} \({team}\) tehlikeyi uzaklaştırdı"),
        _template(EventKind.INTERCEPTION,
                  r"{subj} \({team}\) pası okudu ve araya girdi"),

        _template(EventKind.PASS,
                  r"{subj} güzel bir pasla {obj} oyuncusunu buldu"),
        _template(EventKind.PASS,
                  r"{subj} topu {obj} oyuncusuna aktardı"),
        _template(EventKind.LONG_PASS,
                  r"{subj} uzun topla {obj} oyuncusunu aradı"),
        _template(EventKind.CROSS, r"{subj} ortasını {obj} için yaptı"),

        _template(EventKind.KICK_OFF, r"stadında karşılaşma başladı"),
        _template(EventKind.HALF_TIME,
                  r"^Hakem ilk yarıyı bitiren düdüğü çaldı"),
        _template(EventKind.FULL_TIME, r"stadında maç sona erdi"),
    ]


#: level-1 triggers for Turkish narrations.
TURKISH_TRIGGERS: Tuple[str, ...] = (
    "golü attı", "penaltı", "kendi ağlarına", "kendi kalesine",
    "fırsatı kaçırdı", "auta", "kurtarış", "gole izin vermedi",
    "topu kontrol etti", "şut çekti", "şansını denedi",
    "faul", "müdahale", "düşürdü", "elle oynadı",
    "ofsayt", "sarı kart", "kırmızı kart", "kartla",
    "korner", "serbest vuruş", "frikiğ",
    "oyuncu değişikliği", "yerini", "sakatlandı", "yerde kaldı",
    "çalım", "tehlikeyi", "pası okudu", "pasla", "topu", "uzun topla",
    "ortasını", "karşılaşma başladı", "düdüğü çaldı", "maç sona erdi",
)

TURKISH_TEMPLATES: List[Template] = compile_turkish_templates()
