"""The deployable application facade.

:class:`SemanticSearchApplication` bundles everything a consumer of
the system touches at *query time* into one object: the saved inferred
index, spell correction, phrasal-expression handling (§6), learned
feedback expansions (§8) and highlighting — the online half of the
paper's offline/online split.

Typical lifecycle::

    # offline (once)
    corpus = standard_corpus()
    result = SemanticRetrievalPipeline().run(corpus.crawled)
    SemanticSearchApplication.persist(result, "var/indexes")

    # online (every process start)
    app = SemanticSearchApplication.open("var/indexes")
    response = app.search("foul by daniel to florent")
    app.feedback(response.query, response.hits[0])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.core import (F, IndexName, KeywordSearchEngine,
                        PhrasalSearchEngine, PipelineResult, SearchHit)
from repro.core.feedback import FeedbackSearchEngine
from repro.core.phrasal import PhrasalQueryParser
from repro.search import (Highlighter, SpellChecker, load_index,
                          save_index)
from repro.search.highlight import collect_terms
from repro.search.index import InvertedIndex, SegmentedIndex

__all__ = ["SearchResponse", "SemanticSearchApplication"]

PathLike = Union[str, Path]

#: either serving backend: the mutable in-memory index or the
#: segmented on-disk one — the facade duck-types both.
AnyIndex = Union[InvertedIndex, SegmentedIndex]


@dataclass
class SearchResponse:
    """What one search returns to the caller."""

    query: str                      # the query as executed
    original_query: str             # what the user typed
    hits: List[SearchHit]
    corrected: bool = False         # spell correction applied
    phrasal: bool = False           # by/to/of phrases detected
    snippets: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.hits)


class SemanticSearchApplication:
    """Query-time facade over a built (or loaded) inferred index.

    Both serving backends work: the mutable in-memory
    :class:`InvertedIndex` and the mmap'd
    :class:`~repro.search.index.segments.SegmentedIndex` that
    :meth:`open` auto-detects from a ``build --segmented`` directory.
    Every query-time collaborator (feedback learner, spell checker,
    query result cache) keys its derived state on the backend's
    ``generation`` counter, so live ingestion into a segmented
    directory — commit a delta segment, :meth:`refresh` — makes new
    documents searchable, learnable and spell-known without restart.
    """

    def __init__(self, inferred_index: AnyIndex,
                 phrasal_index: Optional[AnyIndex] = None,
                 feedback_min_support: int = 3) -> None:
        self.index = inferred_index
        self.phrasal_index = phrasal_index
        self.engine = KeywordSearchEngine(inferred_index)
        self.feedback_engine = FeedbackSearchEngine(
            inferred_index, min_support=feedback_min_support)
        self.phrasal_engine = (PhrasalSearchEngine(phrasal_index)
                               if phrasal_index is not None else None)
        self.phrasal_parser = PhrasalQueryParser()
        self.spell = SpellChecker(
            inferred_index,
            fields=[F.EVENT, F.SUBJECT_PLAYER, F.OBJECT_PLAYER,
                    F.NARRATION])
        self.highlighter = Highlighter()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def persist(cls, result: PipelineResult,
                directory: PathLike) -> Path:
        """Save the online-serving indexes of a pipeline run."""
        target = Path(directory)
        save_index(result.index(IndexName.FULL_INF), target)
        save_index(result.index(IndexName.PHR_EXP), target)
        return target

    @classmethod
    def open(cls, directory: PathLike,
             feedback_min_support: int = 3) -> "SemanticSearchApplication":
        """Load a persisted application."""
        inferred = load_index(directory, IndexName.FULL_INF)
        phrasal = load_index(directory, IndexName.PHR_EXP)
        return cls(inferred, phrasal,
                   feedback_min_support=feedback_min_support)

    @classmethod
    def from_pipeline(cls, result: PipelineResult,
                      feedback_min_support: int = 3
                      ) -> "SemanticSearchApplication":
        """Wrap an in-memory pipeline result (no disk round trip)."""
        return cls(result.index(IndexName.FULL_INF),
                   result.index(IndexName.PHR_EXP),
                   feedback_min_support=feedback_min_support)

    @property
    def generation(self) -> int:
        """The serving index's generation counter (cache epoch)."""
        return self.index.generation

    def refresh(self) -> bool:
        """Re-open segmented backends at their newest committed
        manifest; returns True when anything changed.  A no-op over
        in-memory indexes (their mutations are visible immediately)."""
        changed = False
        for index in (self.index, self.phrasal_index):
            refresh = getattr(index, "refresh", None)
            if refresh is not None and refresh():
                changed = True
        return changed

    def close(self) -> None:
        """Release segmented backends' mmaps (no-op for in-memory
        indexes).  In-flight pinned queries finish first."""
        for index in (self.index, self.phrasal_index):
            close = getattr(index, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "SemanticSearchApplication":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def search(self, text: str, limit: int = 10,
               spell_correct: bool = True,
               snippets: bool = True) -> SearchResponse:
        """One user query through the full online stack.

        Order of operations: spell-correct unknown terms → route to
        the phrasal engine when by/to/of phrases are present →
        otherwise keyword search with learned feedback expansions →
        highlight snippets.
        """
        original = text
        corrected = False
        if spell_correct:
            fixed = self.spell.correct_query(text)
            corrected = fixed != text
            text = fixed

        __, role_terms = self.phrasal_parser.parse_parts(text)
        use_phrasal = bool(role_terms) and self.phrasal_engine is not None
        if use_phrasal:
            hits = self.phrasal_engine.search(text, limit=limit)
            query_tree = self.phrasal_engine.build_query(text)
        else:
            expanded = self.feedback_engine.expand_query(text)
            hits = self.engine.search(expanded, limit=limit)
            query_tree = self.engine.build_query(expanded)

        response = SearchResponse(
            query=text, original_query=original, hits=hits,
            corrected=corrected, phrasal=use_phrasal)
        if snippets:
            terms = collect_terms(query_tree)
            response.snippets = [
                self.highlighter.highlight_terms(hit.narration, terms)
                if hit.narration else ""
                for hit in hits
            ]
        return response

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------

    def feedback(self, query: str, hit: SearchHit | str) -> None:
        """Record a click; learned expansions refresh immediately."""
        self.feedback_engine.record_click(query, hit)
        self.feedback_engine.refresh()

    @property
    def learned_expansions(self) -> dict:
        return self.feedback_engine.expansions
