"""Result highlighting: mark query-term matches in stored text.

Walks a query tree for its terms, re-analyzes the stored field value
and wraps every token whose analyzed form matches a query term in
configurable markers.  Offsets come from the analysis chain, so
stemmed matches highlight the original surface form ("scores"
highlights for the query "score").
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.search.analysis.analyzer import Analyzer, StandardAnalyzer
from repro.search.query.queries import (BooleanQuery, DisMaxQuery,
                                        PhraseQuery, PrefixQuery, Query,
                                        TermQuery)

__all__ = ["collect_terms", "Highlighter"]


def collect_terms(query: Query) -> Set[str]:
    """All (analyzed) terms a query tree can match."""
    terms: Set[str] = set()

    def walk(node: Query) -> None:
        if isinstance(node, TermQuery):
            terms.add(node.term)
        elif isinstance(node, PhraseQuery):
            terms.update(node.terms)
        elif isinstance(node, PrefixQuery):
            terms.add(node.prefix)          # prefix handled separately
        elif isinstance(node, BooleanQuery):
            for clause in node.clauses:
                walk(clause.query)
        elif isinstance(node, DisMaxQuery):
            for sub in node.queries:
                walk(sub)

    walk(query)
    return terms


class Highlighter:
    """Wraps matching tokens in ``pre``/``post`` markers."""

    def __init__(self, analyzer: Analyzer | None = None,
                 pre: str = "**", post: str = "**") -> None:
        self.analyzer = analyzer or StandardAnalyzer()
        self.pre = pre
        self.post = post

    def highlight(self, text: str, query: Query) -> str:
        """Return ``text`` with every query-term match marked."""
        return self.highlight_terms(text, collect_terms(query))

    def highlight_terms(self, text: str, terms: Set[str]) -> str:
        if not terms:
            return text
        spans = self._match_spans(text, terms)
        if not spans:
            return text
        pieces: List[str] = []
        cursor = 0
        for start, end in spans:
            pieces.append(text[cursor:start])
            pieces.append(self.pre)
            pieces.append(text[start:end])
            pieces.append(self.post)
            cursor = end
        pieces.append(text[cursor:])
        return "".join(pieces)

    def best_fragment(self, text: str, query: Query,
                      size: int = 80) -> str:
        """A window of ``text`` around the densest match region."""
        terms = collect_terms(query)
        spans = self._match_spans(text, terms)
        if not spans:
            return text[:size]
        center = (spans[0][0] + spans[0][1]) // 2
        start = max(0, center - size // 2)
        end = min(len(text), start + size)
        fragment = self.highlight_terms(text[start:end],
                                        terms)
        prefix = "…" if start > 0 else ""
        suffix = "…" if end < len(text) else ""
        return prefix + fragment + suffix

    def _match_spans(self, text: str,
                     terms: Set[str]) -> List[Tuple[int, int]]:
        spans: List[Tuple[int, int]] = []
        for token in self.analyzer.analyze(text):
            if token.text in terms:
                spans.append((token.start, token.end))
        # merge overlapping spans (synonym-expanded tokens share
        # offsets)
        merged: List[Tuple[int, int]] = []
        for start, end in sorted(spans):
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged
