"""Index statistics: introspection for operations and debugging.

Summarizes an inverted index the way production engines do (cf.
Lucene's segment info / ES ``_stats``): per-field document coverage,
term counts, total postings and the highest-frequency terms.  Used by
the CLI's ``stats`` subcommand and handy when tuning field boosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.search.index.inverted import InvertedIndex

__all__ = ["FieldStats", "IndexStats", "collect_stats", "render_stats"]


@dataclass(frozen=True)
class FieldStats:
    """Statistics for one field."""

    name: str
    docs_with_field: int
    unique_terms: int
    total_postings: int
    average_length: float
    top_terms: Tuple[Tuple[str, int], ...]   # (term, doc freq)


@dataclass(frozen=True)
class IndexStats:
    """Statistics for a whole index."""

    name: str
    doc_count: int
    unique_terms: int
    fields: Tuple[FieldStats, ...]

    def field(self, name: str) -> FieldStats:
        for stats in self.fields:
            if stats.name == name:
                return stats
        raise KeyError(name)


def collect_stats(index: InvertedIndex,
                  top_n: int = 5) -> IndexStats:
    """Compute statistics over every indexed field."""
    fields: List[FieldStats] = []
    for field_name in index.field_names():
        terms = list(index.terms(field_name))
        if not terms and index.docs_with_field(field_name) == 0:
            continue   # stored-only field
        frequencies = []
        total_postings = 0
        for term in terms:
            postings = index.postings(field_name, term)
            doc_frequency = postings.doc_frequency if postings else 0
            total_postings += (postings.total_frequency
                               if postings else 0)
            frequencies.append((term, doc_frequency))
        frequencies.sort(key=lambda pair: (-pair[1], pair[0]))
        fields.append(FieldStats(
            name=field_name,
            docs_with_field=index.docs_with_field(field_name),
            unique_terms=len(terms),
            total_postings=total_postings,
            average_length=index.average_field_length(field_name),
            top_terms=tuple(frequencies[:top_n]),
        ))
    fields.sort(key=lambda stats: stats.name)
    return IndexStats(
        name=index.name,
        doc_count=index.doc_count,
        unique_terms=index.unique_term_count(),
        fields=tuple(fields),
    )


def render_stats(stats: IndexStats) -> str:
    """Human-readable statistics report."""
    lines = [f"index {stats.name!r}: {stats.doc_count} documents, "
             f"{stats.unique_terms} unique terms", ""]
    header = (f"{'field':20} {'docs':>6} {'terms':>7} "
              f"{'postings':>9} {'avg len':>8}  top terms")
    lines.append(header)
    lines.append("-" * len(header))
    for field_stats in stats.fields:
        top = ", ".join(f"{term}({count})"
                        for term, count in field_stats.top_terms[:3])
        lines.append(
            f"{field_stats.name:20} {field_stats.docs_with_field:>6} "
            f"{field_stats.unique_terms:>7} "
            f"{field_stats.total_postings:>9} "
            f"{field_stats.average_length:>8.1f}  {top}")
    return "\n".join(lines)
