"""Scoring models: Lucene-classic TF-IDF and BM25.

The paper built on pre-4.0 Lucene, whose practical scoring function is

    score(q, d) = coord(q, d) * Σ_t  tf(t, d) * idf(t)² * norm(d) * boost

with ``tf = √freq``, ``idf = 1 + ln(N / (df + 1))`` and
``norm = 1/√length``.  :class:`ClassicSimilarity` reproduces exactly
that, so the custom field boosts of §3.6.2 behave as they did in the
original system.  :class:`BM25Similarity` is provided for ablations.
"""

from __future__ import annotations

import math

__all__ = ["Similarity", "ClassicSimilarity", "BM25Similarity"]


class Similarity:
    """Scoring interface: per-term document score."""

    def score(self, term_frequency: int, doc_frequency: int,
              doc_count: int, field_length: int,
              average_field_length: float) -> float:
        raise NotImplementedError

    def max_score(self, max_frequency: int, doc_frequency: int,
                  doc_count: int) -> float:
        """Upper bound on :meth:`score` over every document of a
        postings list whose highest within-document frequency is
        ``max_frequency`` (the list's max-impact statistic).

        Used by the top-k pruned scoring path to skip documents that
        cannot reach the current k-th score.  The default is
        ``+inf`` — always safe, never prunes — so custom similarities
        stay correct without opting in.
        """
        return math.inf

    def batch_score(self, doc_frequency: int, doc_count: int,
                    average_field_length: float):
        """A per-document ``(term_frequency, field_length) -> float``
        closure with the term-constant work (IDF, parameter loads)
        hoisted out of the per-document loop.

        Every value it returns must be **bit-identical** to
        :meth:`score` with the same arguments — the batched block
        scorer relies on that for its parity guarantee.  The default
        simply defers to :meth:`score`, so custom similarities are
        correct without opting in; built-ins override it because the
        hot loop calls this once per document.
        """
        def score(term_frequency: int, field_length: int) -> float:
            return self.score(term_frequency, doc_frequency, doc_count,
                              field_length, average_field_length)
        return score

    def coord(self, matched_clauses: int, total_clauses: int) -> float:
        """Coordination factor rewarding docs matching more clauses."""
        if total_clauses <= 1:
            return 1.0
        return matched_clauses / total_clauses


class ClassicSimilarity(Similarity):
    """Lucene's classic (pre-BM25 default) TF-IDF scoring."""

    def idf(self, doc_frequency: int, doc_count: int) -> float:
        return 1.0 + math.log(doc_count / (doc_frequency + 1.0)) \
            if doc_count > 0 else 1.0

    def score(self, term_frequency: int, doc_frequency: int,
              doc_count: int, field_length: int,
              average_field_length: float) -> float:
        if term_frequency <= 0:
            return 0.0
        tf = math.sqrt(term_frequency)
        idf = self.idf(doc_frequency, doc_count)
        norm = 1.0 / math.sqrt(field_length) if field_length > 0 else 1.0
        return tf * idf * idf * norm

    def max_score(self, max_frequency: int, doc_frequency: int,
                  doc_count: int) -> float:
        # norm is at most 1.0 (field_length >= 1 for any matching doc)
        if max_frequency <= 0:
            return 0.0
        idf = self.idf(doc_frequency, doc_count)
        return math.sqrt(max_frequency) * idf * idf

    def batch_score(self, doc_frequency: int, doc_count: int,
                    average_field_length: float):
        # identical float sequence to score(): idf is a pure function
        # of (df, N), so computing it once changes nothing, and the
        # per-document expression keeps score()'s operation order
        idf = self.idf(doc_frequency, doc_count)
        sqrt = math.sqrt

        def score(term_frequency: int, field_length: int) -> float:
            if term_frequency <= 0:
                return 0.0
            tf = sqrt(term_frequency)
            norm = 1.0 / sqrt(field_length) if field_length > 0 else 1.0
            return tf * idf * idf * norm
        return score


class BM25Similarity(Similarity):
    """Okapi BM25 with the standard k1/b parameters."""

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= b <= 1.0:
            raise ValueError("b must be within [0, 1]")
        self.k1 = k1
        self.b = b

    def idf(self, doc_frequency: int, doc_count: int) -> float:
        return math.log(
            1.0 + (doc_count - doc_frequency + 0.5) / (doc_frequency + 0.5))

    def score(self, term_frequency: int, doc_frequency: int,
              doc_count: int, field_length: int,
              average_field_length: float) -> float:
        if term_frequency <= 0:
            return 0.0
        idf = self.idf(doc_frequency, doc_count)
        if average_field_length <= 0:
            length_norm = 1.0
        else:
            length_norm = (1.0 - self.b
                           + self.b * field_length / average_field_length)
        tf_component = (term_frequency * (self.k1 + 1.0)
                        / (term_frequency + self.k1 * length_norm))
        return idf * tf_component

    def max_score(self, max_frequency: int, doc_frequency: int,
                  doc_count: int) -> float:
        # tf_component grows with tf and shrinks with length_norm;
        # length_norm is at least (1 - b), so plugging max_frequency
        # and that floor in gives a sound upper bound.
        if max_frequency <= 0:
            return 0.0
        idf = self.idf(doc_frequency, doc_count)
        floor = self.k1 * (1.0 - self.b)
        return idf * (max_frequency * (self.k1 + 1.0)
                      / (max_frequency + floor))

    def batch_score(self, doc_frequency: int, doc_count: int,
                    average_field_length: float):
        # identical float sequence to score(): the hoisted values are
        # exact copies of score()'s subexpressions ((1.0 - b) and
        # (k1 + 1.0) are evaluated there the same way), and the
        # per-document expression keeps the operation order
        idf = self.idf(doc_frequency, doc_count)
        k1 = self.k1
        b = self.b
        one_minus_b = 1.0 - b
        k1_plus_1 = k1 + 1.0

        def score(term_frequency: int, field_length: int) -> float:
            if term_frequency <= 0:
                return 0.0
            if average_field_length <= 0:
                length_norm = 1.0
            else:
                length_norm = (one_minus_b
                               + b * field_length / average_field_length)
            return idf * (term_frequency * k1_plus_1
                          / (term_frequency + k1 * length_norm))
        return score

    def coord(self, matched_clauses: int, total_clauses: int) -> float:
        # BM25 in Lucene drops the coordination factor.
        return 1.0
