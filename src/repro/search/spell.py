"""Spelling suggestion ("did you mean") over the index vocabulary.

Suggests corrections for query terms that are absent from (or rare
in) the index, by scanning the field's term dictionary for close
terms under Damerau-Levenshtein distance and ranking candidates by
(distance, -document frequency).  Player names are the main customers:
"mesi barcelona gaol" → "messi barcelona goal".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.search.analysis.analyzer import Analyzer, StandardAnalyzer
from repro.search.index.inverted import InvertedIndex
from repro.search.query.extras import edit_distance

__all__ = ["Suggestion", "SpellChecker"]


@dataclass(frozen=True)
class Suggestion:
    """One correction candidate."""

    term: str
    distance: int
    doc_frequency: int


class SpellChecker:
    """Suggests corrections from one or more index fields."""

    def __init__(self, index: InvertedIndex,
                 fields: Sequence[str] = ("narration",),
                 max_edits: int = 2,
                 analyzer: Optional[Analyzer] = None) -> None:
        if max_edits < 1:
            raise ValueError("max_edits must be at least 1")
        self.index = index
        self.fields = list(fields)
        self.max_edits = max_edits
        self.analyzer = analyzer or StandardAnalyzer()

    # ------------------------------------------------------------------

    def _doc_frequency(self, term: str) -> int:
        return sum(self.index.doc_frequency(field_name, term)
                   for field_name in self.fields)

    def is_known(self, term: str) -> bool:
        return self._doc_frequency(term) > 0

    def suggestions(self, term: str, limit: int = 5
                    ) -> List[Suggestion]:
        """Correction candidates for one analyzed term, best first."""
        candidates = {}
        for field_name in self.fields:
            for candidate in self.index.terms(field_name):
                if candidate == term:
                    continue
                edits = edit_distance(term, candidate, self.max_edits)
                if edits > self.max_edits:
                    continue
                frequency = self._doc_frequency(candidate)
                existing = candidates.get(candidate)
                if existing is None or edits < existing.distance:
                    candidates[candidate] = Suggestion(
                        candidate, edits, frequency)
        ranked = sorted(candidates.values(),
                        key=lambda s: (s.distance, -s.doc_frequency,
                                       s.term))
        return ranked[:limit]

    def correct_query(self, text: str) -> str:
        """Rewrite unknown query terms with their best suggestion.

        Known terms pass through untouched; unknown terms with no
        close candidate also pass through (the searcher will simply
        not match them).
        """
        corrected: List[str] = []
        for word in text.split():
            terms = self.analyzer.terms(word)
            if not terms:
                corrected.append(word)
                continue
            term = terms[0]
            if self.is_known(term):
                corrected.append(word)
                continue
            suggestions = self.suggestions(term, limit=1)
            corrected.append(suggestions[0].term if suggestions
                             else word)
        return " ".join(corrected)
