"""Spelling suggestion ("did you mean") over the index vocabulary.

Suggests corrections for query terms that are absent from (or rare
in) the index, by scanning the field's term dictionary for close
terms under Damerau-Levenshtein distance and ranking candidates by
(distance, -document frequency).  Player names are the main customers:
"mesi barcelona gaol" → "messi barcelona goal".

The vocabulary (term → document frequency per field) is cached and
**keyed on the index generation**: a live service keeps ingesting new
matches, and a dictionary frozen at construction would "correct"
legitimately new terms away to stale vocabulary.  On a generation
mismatch the cache rebuilds lazily — under one pinned snapshot for
segmented indexes, so a concurrent refresh can never mix two
generations inside one rebuild.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.search.analysis.analyzer import Analyzer, StandardAnalyzer
from repro.search.index.inverted import InvertedIndex
from repro.search.query.extras import edit_distance

__all__ = ["Suggestion", "SpellChecker"]


@dataclass(frozen=True)
class Suggestion:
    """One correction candidate."""

    term: str
    distance: int
    doc_frequency: int


class SpellChecker:
    """Suggests corrections from one or more index fields.

    ``index`` is duck-typed: the in-memory :class:`InvertedIndex` and
    the segmented serving index both work — anything with ``terms``,
    ``doc_frequency`` and a ``generation`` counter.
    """

    def __init__(self, index: InvertedIndex,
                 fields: Sequence[str] = ("narration",),
                 max_edits: int = 2,
                 analyzer: Optional[Analyzer] = None) -> None:
        if max_edits < 1:
            raise ValueError("max_edits must be at least 1")
        self.index = index
        self.fields = list(fields)
        self.max_edits = max_edits
        self.analyzer = analyzer or StandardAnalyzer()
        self._vocab_lock = threading.Lock()
        self._vocab_generation: Optional[int] = None
        #: field name -> {term: document frequency}, one generation
        self._vocab: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------

    def _vocabulary(self) -> Dict[str, Dict[str, int]]:
        """Per-field term → doc-frequency tables for the index's
        current generation, rebuilt lazily on mismatch."""
        generation = self.index.generation
        if generation == self._vocab_generation:
            return self._vocab
        with self._vocab_lock:
            if generation == self._vocab_generation:
                return self._vocab
            pinned = getattr(self.index, "pinned", None)
            with (pinned() if pinned is not None
                  else nullcontext(self.index)) as view:
                vocab = {
                    field_name: {term: view.doc_frequency(field_name,
                                                          term)
                                 for term in view.terms(field_name)}
                    for field_name in self.fields}
                self._vocab = vocab
                self._vocab_generation = view.generation
        return self._vocab

    def _doc_frequency(self, term: str) -> int:
        vocab = self._vocabulary()
        return sum(vocab[field_name].get(term, 0)
                   for field_name in self.fields)

    def is_known(self, term: str) -> bool:
        return self._doc_frequency(term) > 0

    def suggestions(self, term: str, limit: int = 5
                    ) -> List[Suggestion]:
        """Correction candidates for one analyzed term, best first."""
        vocab = self._vocabulary()
        candidates: Dict[str, Suggestion] = {}
        for field_name in self.fields:
            for candidate in vocab[field_name]:
                if candidate == term:
                    continue
                edits = edit_distance(term, candidate, self.max_edits)
                if edits > self.max_edits:
                    continue
                frequency = sum(vocab[name].get(candidate, 0)
                                for name in self.fields)
                existing = candidates.get(candidate)
                if existing is None or edits < existing.distance:
                    candidates[candidate] = Suggestion(
                        candidate, edits, frequency)
        ranked = sorted(candidates.values(),
                        key=lambda s: (s.distance, -s.doc_frequency,
                                       s.term))
        return ranked[:limit]

    def correct_query(self, text: str) -> str:
        """Rewrite unknown query terms with their best suggestion.

        Known terms pass through untouched; unknown terms with no
        close candidate also pass through (the searcher will simply
        not match them).
        """
        corrected: List[str] = []
        for word in text.split():
            terms = self.analyzer.terms(word)
            if not terms:
                corrected.append(word)
                continue
            term = terms[0]
            if self.is_known(term):
                corrected.append(word)
                continue
            suggestions = self.suggestions(term, limit=1)
            corrected.append(suggestions[0].term if suggestions
                             else word)
        return " ".join(corrected)
