"""Query string parser (Lucene-ish mini syntax).

Supported syntax::

    goal barcelona             # SHOULD terms over the default field
    event:goal                 # fielded term
    "yellow card"              # phrase
    narration:"free kick"      # fielded phrase
    +goal -miss                # required / prohibited terms
    goal^2                     # boost
    messi*                     # prefix query

Terms are run through the analyzer assigned to their field (phrase
terms too), so queries match the index's token forms.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import QueryError
from repro.search.analysis.analyzer import Analyzer
from repro.search.index.writer import PerFieldAnalyzer
from repro.search.query.queries import (BooleanQuery, MatchAllQuery, Occur,
                                        PhraseQuery, PrefixQuery, Query,
                                        TermQuery)

__all__ = ["QueryParser"]

_CLAUSE = re.compile(r"""
    (?P<occur>[+-])?
    (?:(?P<field>[A-Za-z_][A-Za-z0-9_.]*):)?
    (?:
        "(?P<phrase>[^"]*)"
      | (?P<text>[^\s"]+)
    )
""", re.VERBOSE)

_BOOST = re.compile(r"\^(\d+(?:\.\d+)?)$")


class QueryParser:
    """Parses user query strings into query trees."""

    def __init__(self, default_field: str,
                 analyzer: PerFieldAnalyzer | Analyzer) -> None:
        self.default_field = default_field
        if isinstance(analyzer, Analyzer):
            analyzer = PerFieldAnalyzer(default=analyzer)
        self.analyzer = analyzer

    def parse(self, text: str) -> Query:
        """Parse ``text``; raises :class:`QueryError` on empty input."""
        from repro.core.observability import get_observability
        obs = get_observability()
        with obs.tracer.span("query.parse", syntax="lucene"):
            query = self._parse(text)
        if obs.metrics.enabled:
            obs.metrics.counter("query_parsed_total",
                                "query strings parsed").inc()
        return query

    def _parse(self, text: str) -> Query:
        text = text.strip()
        if not text:
            raise QueryError("empty query")
        if text == "*:*":
            return MatchAllQuery()
        boolean = BooleanQuery()
        for match in _CLAUSE.finditer(text):
            occur = {"+": Occur.MUST, "-": Occur.MUST_NOT,
                     None: Occur.SHOULD}[match.group("occur")]
            field_name = match.group("field") or self.default_field
            if match.group("phrase") is not None:
                query = self._phrase(field_name, match.group("phrase"))
            else:
                query = self._term(field_name, match.group("text"))
            if query is not None:
                boolean.add(query, occur)
        if not boolean.clauses:
            raise QueryError(f"query has no effective terms: {text!r}")
        if len(boolean.clauses) == 1 \
                and boolean.clauses[0].occur is Occur.SHOULD:
            return boolean.clauses[0].query
        return boolean

    # ------------------------------------------------------------------

    def _phrase(self, field_name: str, raw: str) -> Optional[Query]:
        terms = self.analyzer.for_field(field_name).terms(raw)
        if not terms:
            return None
        if len(terms) == 1:
            return TermQuery(field_name, terms[0])
        return PhraseQuery(field_name, terms)

    def _term(self, field_name: str, raw: str) -> Optional[Query]:
        boost = 1.0
        boost_match = _BOOST.search(raw)
        if boost_match:
            boost = float(boost_match.group(1))
            raw = raw[: boost_match.start()]
        if raw.endswith("*") and len(raw) > 1:
            prefix_terms = self.analyzer.for_field(field_name).terms(
                raw[:-1])
            if not prefix_terms:
                return None
            return PrefixQuery(field_name, prefix_terms[0], boost=boost)
        terms = self.analyzer.for_field(field_name).terms(raw)
        if not terms:
            return None
        if len(terms) == 1:
            return TermQuery(field_name, terms[0], boost=boost)
        # one raw token analyzed into several (e.g. "eto'o") → phrase
        phrase = PhraseQuery(field_name, terms)
        phrase.boost = boost
        return phrase
