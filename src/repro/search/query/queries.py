"""Query tree: term, phrase, prefix, boolean and match-all queries.

Each query knows how to score itself against an
:class:`~repro.search.index.inverted.InvertedIndex` given a
:class:`~repro.search.similarity.Similarity`; the searcher merely ranks
the resulting document→score map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Sequence

from repro.errors import QueryError
from repro.search.index.inverted import InvertedIndex
from repro.search.similarity import Similarity

__all__ = ["Query", "TermQuery", "PhraseQuery", "PrefixQuery",
           "MatchAllQuery", "Occur", "BooleanClause", "BooleanQuery"]

Scores = Dict[int, float]


def _count_postings(amount: int) -> None:
    """Tally postings scanned into the active metrics registry (the
    import is deferred — see repro.search.searcher._observability)."""
    from repro.core.observability import get_observability
    metrics = get_observability().metrics
    if metrics.enabled:
        metrics.counter("query_postings_scanned_total",
                        "postings entries read while scoring queries"
                        ).inc(amount)


class Query:
    """Base query node."""

    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        raise NotImplementedError


@dataclass
class TermQuery(Query):
    """Match one analyzed term in one field."""

    field_name: str
    term: str
    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        postings = index.postings(self.field_name, self.term)
        if postings is None:
            return {}
        _count_postings(len(postings))
        doc_count = index.doc_count
        average = index.average_field_length(self.field_name)
        scores: Scores = {}
        for posting in postings:
            base = similarity.score(
                posting.frequency, postings.doc_frequency, doc_count,
                index.field_length(self.field_name, posting.doc_id),
                average)
            index_boost = index.field_boost(self.field_name, posting.doc_id)
            scores[posting.doc_id] = base * self.boost * index_boost
        return scores

    def __str__(self) -> str:
        suffix = f"^{self.boost}" if self.boost != 1.0 else ""
        return f"{self.field_name}:{self.term}{suffix}"


@dataclass
class PhraseQuery(Query):
    """Match terms at consecutive positions (slop 0) or within ``slop``."""

    field_name: str
    terms: Sequence[str]
    slop: int = 0
    boost: float = 1.0

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError("phrase query needs at least one term")
        self.terms = list(self.terms)

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        if len(self.terms) == 1:
            return TermQuery(self.field_name, self.terms[0],
                             self.boost).score_docs(index, similarity)
        postings_lists = []
        for term in self.terms:
            postings = index.postings(self.field_name, term)
            if postings is None:
                return {}
            postings_lists.append(postings)
        _count_postings(sum(len(p) for p in postings_lists))
        candidates = set(p.doc_id for p in postings_lists[0])
        for postings in postings_lists[1:]:
            candidates &= set(p.doc_id for p in postings)
        doc_count = index.doc_count
        average = index.average_field_length(self.field_name)
        scores: Scores = {}
        for doc_id in candidates:
            phrase_freq = self._phrase_frequency(postings_lists, doc_id)
            if phrase_freq == 0:
                continue
            # idf of a phrase: sum of member idfs (Lucene's approach)
            idf_proxy_df = min(p.doc_frequency for p in postings_lists)
            base = similarity.score(
                phrase_freq, idf_proxy_df, doc_count,
                index.field_length(self.field_name, doc_id), average)
            index_boost = index.field_boost(self.field_name, doc_id)
            scores[doc_id] = base * self.boost * index_boost
        return scores

    def _phrase_frequency(self, postings_lists, doc_id: int) -> int:
        position_sets = []
        for postings in postings_lists:
            posting = postings.get(doc_id)
            if posting is None:
                return 0
            position_sets.append(set(posting.positions))
        count = 0
        for start in sorted(position_sets[0]):
            if self._match_from(position_sets, start):
                count += 1
        return count

    def _match_from(self, position_sets, start: int) -> bool:
        if self.slop == 0:
            return all(start + offset in positions
                       for offset, positions in enumerate(position_sets))
        # sloppy match: each next term must appear after the previous
        # one within the slop window; take the earliest valid position.
        expected = start
        for positions in position_sets[1:]:
            candidates = [pos for pos in positions
                          if expected < pos <= expected + 1 + self.slop]
            if not candidates:
                return False
            expected = min(candidates)
        return True

    def __str__(self) -> str:
        phrase = " ".join(self.terms)
        return f'{self.field_name}:"{phrase}"'


@dataclass
class PrefixQuery(Query):
    """Match every term starting with ``prefix`` (constant score)."""

    field_name: str
    prefix: str
    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        scores: Scores = {}
        for term in index.terms_with_prefix(self.field_name, self.prefix):
            postings = index.postings(self.field_name, term)
            if postings is None:
                continue
            _count_postings(len(postings))
            for posting in postings:
                index_boost = index.field_boost(self.field_name,
                                                posting.doc_id)
                score = self.boost * index_boost
                if score > scores.get(posting.doc_id, 0.0):
                    scores[posting.doc_id] = score
        return scores

    def __str__(self) -> str:
        return f"{self.field_name}:{self.prefix}*"


@dataclass
class MatchAllQuery(Query):
    """Match every document with a constant score."""

    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        return {doc_id: self.boost for doc_id in range(index.doc_count)}

    def __str__(self) -> str:
        return "*:*"


@dataclass
class DisMaxQuery(Query):
    """Disjunction-max: score is the best sub-query score per doc,
    plus ``tie_breaker`` times the others.

    The multi-field keyword interface uses this per query term so that
    a term matching the boosted ``event`` field is not penalized for
    missing the ten other fields (as a coordinated boolean would do).
    """

    queries: List[Query] = field(default_factory=list)
    tie_breaker: float = 0.0
    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        combined: Scores = {}
        totals: Scores = {}
        for query in self.queries:
            for doc_id, score in query.score_docs(index,
                                                  similarity).items():
                if score > combined.get(doc_id, 0.0):
                    combined[doc_id] = score
                totals[doc_id] = totals.get(doc_id, 0.0) + score
        if self.tie_breaker:
            for doc_id in combined:
                rest = totals[doc_id] - combined[doc_id]
                combined[doc_id] += self.tie_breaker * rest
        if self.boost != 1.0:
            combined = {doc: score * self.boost
                        for doc, score in combined.items()}
        return combined

    def __str__(self) -> str:
        inner = " | ".join(str(q) for q in self.queries)
        return f"dismax({inner})"


class Occur(Enum):
    """Boolean clause polarity."""

    MUST = "must"
    SHOULD = "should"
    MUST_NOT = "must_not"


@dataclass
class BooleanClause:
    query: Query
    occur: Occur = Occur.SHOULD


@dataclass
class BooleanQuery(Query):
    """Combination of sub-queries with Lucene boolean semantics.

    * MUST clauses all have to match; their scores add.
    * SHOULD clauses are optional; matches add score.  If there are no
      MUST clauses, at least one SHOULD clause has to match.
    * MUST_NOT clauses exclude documents.
    * The coordination factor multiplies score by the fraction of
      scoring (MUST/SHOULD) clauses matched.
    """

    clauses: List[BooleanClause] = field(default_factory=list)
    boost: float = 1.0

    def add(self, query: Query, occur: Occur = Occur.SHOULD
            ) -> "BooleanQuery":
        self.clauses.append(BooleanClause(query, occur))
        return self

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        musts = [c.query for c in self.clauses if c.occur is Occur.MUST]
        shoulds = [c.query for c in self.clauses if c.occur is Occur.SHOULD]
        nots = [c.query for c in self.clauses if c.occur is Occur.MUST_NOT]
        if not musts and not shoulds:
            return {}

        must_scores = [q.score_docs(index, similarity) for q in musts]
        should_scores = [q.score_docs(index, similarity) for q in shoulds]

        if musts:
            allowed = set(must_scores[0])
            for scores in must_scores[1:]:
                allowed &= set(scores)
        else:
            allowed = set()
            for scores in should_scores:
                allowed |= set(scores)

        for query in nots:
            allowed -= set(query.score_docs(index, similarity))

        total_clauses = len(musts) + len(shoulds)
        combined: Scores = {}
        for doc_id in allowed:
            score = 0.0
            matched = 0
            for scores in must_scores:
                score += scores[doc_id]
                matched += 1
            for scores in should_scores:
                contribution = scores.get(doc_id)
                if contribution is not None:
                    score += contribution
                    matched += 1
            coord = similarity.coord(matched, total_clauses)
            combined[doc_id] = score * coord * self.boost
        return combined

    def __str__(self) -> str:
        rendered = []
        marker = {Occur.MUST: "+", Occur.SHOULD: "", Occur.MUST_NOT: "-"}
        for clause in self.clauses:
            rendered.append(f"{marker[clause.occur]}({clause.query})")
        return " ".join(rendered)
