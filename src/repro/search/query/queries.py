"""Query tree: term, phrase, prefix, boolean and match-all queries.

Each query knows how to score itself against an
:class:`~repro.search.index.inverted.InvertedIndex` given a
:class:`~repro.search.similarity.Similarity`; the searcher merely ranks
the resulting document→score map.

Two scoring paths exist:

* :meth:`Query.score_docs` — the exhaustive path: materializes the
  full doc→score map.  This is the semantics oracle; ``explain()``
  and the pruned path are verified against it.
* :meth:`Query.scorer` — returns a :class:`Scorer` supporting exact
  *single-document* scoring plus a per-clause score upper bound, or
  ``None`` for query types without one (phrase, prefix, match-all,
  and the extras), which then always score exhaustively.  The
  MaxScore-style top-k driver (:mod:`repro.search.topk`) is built on
  scorers; every ``score_one`` replicates the exhaustive path's
  floating-point operations *in the same order*, so pruned top-k
  results are bit-identical to exhaustive ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import QueryError
from repro.search.index.inverted import InvertedIndex
from repro.search.similarity import Similarity

__all__ = ["Query", "TermQuery", "PhraseQuery", "PrefixQuery",
           "MatchAllQuery", "Occur", "BooleanClause", "BooleanQuery",
           "Scorer", "TermScorer", "DisMaxScorer", "BooleanScorer"]

Scores = Dict[int, float]


def _count_postings(amount: int) -> None:
    """Tally postings scanned into the active metrics registry (the
    import is deferred — see repro.search.searcher._observability)."""
    from repro.core.observability import get_observability
    metrics = get_observability().metrics
    if metrics.enabled:
        metrics.counter("query_postings_scanned_total",
                        "postings entries read while scoring queries"
                        ).inc(amount)


class Scorer:
    """Exact per-document scoring for one query node.

    ``score_one`` must return bit-for-bit the value the node's
    ``score_docs`` map holds for that doc (``None`` for non-matches);
    ``max_contribution`` bounds it from above over all documents.
    """

    __slots__ = ("scanned",)

    def __init__(self) -> None:
        #: postings entries read through ``score_one`` (leaf scorers
        #: only; aggregates sum their children)
        self.scanned = 0

    def max_contribution(self) -> float:
        raise NotImplementedError

    def doc_ids(self) -> List[int]:
        """Matching doc ids, ascending."""
        raise NotImplementedError

    def doc_id_set(self) -> Set[int]:
        raise NotImplementedError

    def score_one(self, doc_id: int) -> Optional[float]:
        raise NotImplementedError

    def postings_scanned(self) -> int:
        return self.scanned


class Query:
    """Base query node."""

    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        raise NotImplementedError

    def scorer(self, index: InvertedIndex,
               similarity: Similarity) -> Optional[Scorer]:
        """A per-doc scorer for the pruned top-k path, or ``None``
        when this query type only supports exhaustive scoring."""
        return None


@dataclass
class TermQuery(Query):
    """Match one analyzed term in one field."""

    field_name: str
    term: str
    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        postings = index.postings(self.field_name, self.term)
        if postings is None:
            return {}
        _count_postings(len(postings))
        doc_count = index.doc_count
        average = index.average_field_length(self.field_name)
        scores: Scores = {}
        for posting in postings:
            base = similarity.score(
                posting.frequency, postings.doc_frequency, doc_count,
                index.field_length(self.field_name, posting.doc_id),
                average)
            index_boost = index.field_boost(self.field_name, posting.doc_id)
            scores[posting.doc_id] = base * self.boost * index_boost
        return scores

    def scorer(self, index: InvertedIndex,
               similarity: Similarity) -> "TermScorer":
        return TermScorer(self, index, similarity)

    def __str__(self) -> str:
        suffix = f"^{self.boost}" if self.boost != 1.0 else ""
        return f"{self.field_name}:{self.term}{suffix}"


class TermScorer(Scorer):
    """Single-doc scoring for one (field, term) pair.

    ``score_one`` evaluates ``similarity.score(...) * boost *
    index_boost`` with exactly the arguments and operation order of
    :meth:`TermQuery.score_docs`, so values match bit for bit.

    Postings backed by skip blocks (segments, and the monolithic
    :class:`~repro.search.index.postings.PostingsList`) additionally
    expose the *block API*: :meth:`block_count` /
    :meth:`block_bound` / :meth:`score_block` let the top-k driver
    bound and score one whole skip block per step — batched
    arithmetic over typed columns instead of a per-posting dict walk,
    and a block whose bound falls below θ skips without decoding.
    """

    __slots__ = ("_query", "_index", "_similarity", "_postings",
                 "_doc_frequency", "_doc_count", "_average",
                 "_max_boost", "_block_bounds", "_batch_score",
                 "_field_maps")

    def __init__(self, query: TermQuery, index: InvertedIndex,
                 similarity: Similarity) -> None:
        super().__init__()
        self._query = query
        self._index = index
        self._similarity = similarity
        self._postings = index.postings(query.field_name, query.term)
        if self._postings is not None:
            self._doc_frequency = self._postings.doc_frequency
            self._average = index.average_field_length(query.field_name)
        else:
            # absent term: every scoring path short-circuits before
            # touching the statistics, so skip their lookups too
            self._doc_frequency = 0
            self._average = 0.0
        self._doc_count = index.doc_count
        self._max_boost: Optional[float] = None
        self._block_bounds: Dict[int, float] = {}
        self._batch_score = None
        self._field_maps = None

    def _similarity_closure(self):
        """The per-document scoring closure with term-constant work
        hoisted (built once per scorer; bit-identical to
        ``similarity.score``)."""
        sim_score = self._batch_score
        if sim_score is None:
            sim_score = self._similarity.batch_score(
                self._doc_frequency, self._doc_count, self._average)
            self._batch_score = sim_score
        return sim_score

    def _local_maps(self):
        """``(lengths, boosts)`` dicts keyed by the postings' local
        doc-id space, or ``False`` when the index backend does not
        expose them (resolved once per scorer)."""
        maps = self._field_maps
        if maps is None:
            getter = getattr(self._index, "local_field_maps", None)
            maps = (getter(self._query.field_name)
                    if getter is not None else False)
            self._field_maps = maps
        return maps

    def _max_field_boost(self) -> float:
        boost = self._max_boost
        if boost is None:
            boost = self._index.max_field_boost(self._query.field_name)
            self._max_boost = boost
        return boost

    def _memo_key(self):
        query = self._query
        return (self._similarity, query.field_name, query.term,
                query.boost)

    def max_contribution(self) -> float:
        if self._postings is None:
            return 0.0
        memo = getattr(self._index, "bound_memo", None)
        if memo is None:
            return self._compute_bound()
        key = self._memo_key()
        bound = memo.get(key)
        if bound is None:
            bound = self._compute_bound()
            memo[key] = bound
        return bound

    def _compute_bound(self) -> float:
        bound = self._similarity.max_score(
            self._postings.max_frequency, self._doc_frequency,
            self._doc_count)
        return bound * self._query.boost * self._max_field_boost()

    def doc_ids(self) -> Sequence[int]:
        return self._postings.doc_ids() if self._postings else []

    def doc_id_set(self) -> Set[int]:
        return set(self._postings.doc_ids()) if self._postings else set()

    def matching_count(self) -> int:
        """Number of matching documents, from statistics alone (no
        postings decode)."""
        return len(self._postings) if self._postings is not None else 0

    def score_one(self, doc_id: int) -> Optional[float]:
        postings = self._postings
        if postings is None:
            return None
        # frequency() avoids materializing a Posting (and, on segment
        # backends, ever decoding position lists) just to count
        # occurrences — same integer, so the score is bit-identical
        frequency = postings.frequency(doc_id)
        if frequency is None:
            return None
        return self.score_frequency(doc_id, frequency)

    def score_frequency(self, doc_id: int, frequency: int
                        ) -> Optional[float]:
        """Score a document whose within-document frequency the caller
        already holds (e.g. from a contributor map built off the typed
        frequency columns) — :meth:`score_one` minus the postings
        probe, with the identical float sequence."""
        self.scanned += 1
        sim_score = self._similarity_closure()
        maps = self._local_maps()
        if maps is not False:
            lengths, boosts = maps
            local_doc = doc_id - self._postings.base
            score = sim_score(frequency, lengths.get(local_doc, 0))
            return score * self._query.boost * boosts.get(local_doc, 1.0)
        field_name = self._query.field_name
        score = sim_score(
            frequency, self._index.field_length(field_name, doc_id))
        index_boost = self._index.field_boost(field_name, doc_id)
        return score * self._query.boost * index_boost

    def contributions(self):
        """``(global doc id, contribution)`` pairs in postings order,
        each contribution precomputed through the identical float
        sequence as :meth:`score_one` — similarity closure, then
        ``* query boost * index boost`` — with the per-term constants
        resolved once outside a single tight loop over the typed
        columns.  Returns ``None`` when the backing postings expose no
        frequency column (multi-segment façade) and the caller should
        fall back to per-doc probes.

        On backends whose scoring inputs are generation-frozen (the
        segment views), the pairs are memoized on the backend itself,
        so repeat queries over a hot term skip the recompute
        entirely."""
        postings = self._postings
        if postings is None:
            return ()
        freq_column = getattr(postings, "freqs", None)
        if freq_column is None:
            return None
        memo = getattr(self._index, "contrib_memo", None)
        if memo is None:
            return self._compute_contributions(freq_column())
        key = self._memo_key()
        pairs = memo.get(key)
        if pairs is None:
            pairs = self._compute_contributions(freq_column())
            memo[key] = pairs
        return pairs

    def _compute_contributions(self, freqs):
        postings = self._postings
        sim_score = self._similarity_closure()
        boost = self._query.boost
        doc_ids = postings.doc_ids()
        maps = self._local_maps()
        if maps is not False:
            lengths, boosts = maps
            length_of = lengths.get
            boost_of = boosts.get
            base = postings.base
            return [(doc_id,
                     sim_score(frequency, length_of(doc_id - base, 0))
                     * boost * boost_of(doc_id - base, 1.0))
                    for doc_id, frequency in zip(doc_ids, freqs)]
        field_name = self._query.field_name
        field_length = self._index.field_length
        field_boost = self._index.field_boost
        return [(doc_id,
                 sim_score(frequency, field_length(field_name, doc_id))
                 * boost * field_boost(field_name, doc_id))
                for doc_id, frequency in zip(doc_ids, freqs)]

    # -- block API (batched scoring / block-max pruning) --------------

    def block_count(self) -> Optional[int]:
        """Skip-block count of the underlying postings, or ``None``
        when they expose no block structure (multi-segment façade)."""
        postings = self._postings
        if postings is None:
            return 0
        counter = getattr(postings, "block_count", None)
        return counter() if counter is not None else None

    def block_bound(self, block: int) -> float:
        """Upper bound on this term's contribution for any document
        inside ``block`` — the per-block max-impact figure pushed
        through the same arithmetic as :meth:`max_contribution`, so it
        is sound for the same reason and strictly tighter wherever the
        block's max frequency undercuts the term's."""
        bound = self._block_bounds.get(block)
        if bound is None:
            raw = self._similarity.max_score(
                self._postings.block_max_frequency(block),
                self._doc_frequency, self._doc_count)
            bound = (raw * self._query.boost
                     * self._max_field_boost())
            self._block_bounds[block] = bound
        return bound

    def score_block(self, block: int) -> List[tuple]:
        """Score every document of one skip block in a single batched
        loop over the typed columns.  Returns ``(doc_id, score)``
        pairs in doc order; each score replicates :meth:`score_one`'s
        float sequence exactly — the hoisted similarity closure and
        the direct length/boost dict probes read the very same values
        through fewer Python frames — so batching never changes a
        result bit."""
        postings = self._postings
        docs, freqs = postings.block_columns(block)
        base = postings.base
        sim_score = self._similarity_closure()
        field_name = self._query.field_name
        boost = self._query.boost
        self.scanned += len(docs)
        out = []
        append = out.append
        maps = self._local_maps()
        if maps is not False:
            # the maps are keyed by the columns' own (local) doc-id
            # space, so per document the loop pays two dict probes
            # instead of two method calls that re-derive the local id
            lengths, boosts = maps
            length_of = lengths.get
            boost_of = boosts.get
            for local_doc, frequency in zip(docs, freqs):
                score = sim_score(frequency, length_of(local_doc, 0))
                append((local_doc + base,
                        score * boost * boost_of(local_doc, 1.0)))
            return out
        field_length = self._index.field_length
        field_boost = self._index.field_boost
        for local_doc, frequency in zip(docs, freqs):
            doc_id = local_doc + base
            score = sim_score(frequency, field_length(field_name, doc_id))
            append((doc_id,
                    score * boost * field_boost(field_name, doc_id)))
        return out


@dataclass
class PhraseQuery(Query):
    """Match terms at consecutive positions (slop 0) or within ``slop``."""

    field_name: str
    terms: Sequence[str]
    slop: int = 0
    boost: float = 1.0

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError("phrase query needs at least one term")
        self.terms = list(self.terms)

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        if len(self.terms) == 1:
            return TermQuery(self.field_name, self.terms[0],
                             self.boost).score_docs(index, similarity)
        postings_lists = []
        for term in self.terms:
            postings = index.postings(self.field_name, term)
            if postings is None:
                return {}
            postings_lists.append(postings)
        _count_postings(sum(len(p) for p in postings_lists))
        candidates = set(p.doc_id for p in postings_lists[0])
        for postings in postings_lists[1:]:
            candidates &= set(p.doc_id for p in postings)
        doc_count = index.doc_count
        average = index.average_field_length(self.field_name)
        scores: Scores = {}
        for doc_id in candidates:
            phrase_freq = self._phrase_frequency(postings_lists, doc_id)
            if phrase_freq == 0:
                continue
            # idf of a phrase: sum of member idfs (Lucene's approach)
            idf_proxy_df = min(p.doc_frequency for p in postings_lists)
            base = similarity.score(
                phrase_freq, idf_proxy_df, doc_count,
                index.field_length(self.field_name, doc_id), average)
            index_boost = index.field_boost(self.field_name, doc_id)
            scores[doc_id] = base * self.boost * index_boost
        return scores

    def _phrase_frequency(self, postings_lists, doc_id: int) -> int:
        position_sets = []
        for postings in postings_lists:
            posting = postings.get(doc_id)
            if posting is None:
                return 0
            position_sets.append(set(posting.positions))
        count = 0
        for start in sorted(position_sets[0]):
            if self._match_from(position_sets, start):
                count += 1
        return count

    def _match_from(self, position_sets, start: int) -> bool:
        if self.slop == 0:
            return all(start + offset in positions
                       for offset, positions in enumerate(position_sets))
        # sloppy match: each next term must appear after the previous
        # one within the slop window; take the earliest valid position.
        expected = start
        for positions in position_sets[1:]:
            candidates = [pos for pos in positions
                          if expected < pos <= expected + 1 + self.slop]
            if not candidates:
                return False
            expected = min(candidates)
        return True

    def __str__(self) -> str:
        phrase = " ".join(self.terms)
        return f'{self.field_name}:"{phrase}"'


@dataclass
class PrefixQuery(Query):
    """Match every term starting with ``prefix`` (constant score)."""

    field_name: str
    prefix: str
    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        scores: Scores = {}
        for term in index.terms_with_prefix(self.field_name, self.prefix):
            postings = index.postings(self.field_name, term)
            if postings is None:
                continue
            _count_postings(len(postings))
            for posting in postings:
                index_boost = index.field_boost(self.field_name,
                                                posting.doc_id)
                score = self.boost * index_boost
                if score > scores.get(posting.doc_id, 0.0):
                    scores[posting.doc_id] = score
        return scores

    def __str__(self) -> str:
        return f"{self.field_name}:{self.prefix}*"


@dataclass
class MatchAllQuery(Query):
    """Match every document with a constant score."""

    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        return {doc_id: self.boost for doc_id in range(index.doc_count)}

    def __str__(self) -> str:
        return "*:*"


@dataclass
class DisMaxQuery(Query):
    """Disjunction-max: score is the best sub-query score per doc,
    plus ``tie_breaker`` times the others.

    The multi-field keyword interface uses this per query term so that
    a term matching the boosted ``event`` field is not penalized for
    missing the ten other fields (as a coordinated boolean would do).
    """

    queries: List[Query] = field(default_factory=list)
    tie_breaker: float = 0.0
    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        combined: Scores = {}
        totals: Scores = {}
        for query in self.queries:
            for doc_id, score in query.score_docs(index,
                                                  similarity).items():
                if score > combined.get(doc_id, 0.0):
                    combined[doc_id] = score
                totals[doc_id] = totals.get(doc_id, 0.0) + score
        if self.tie_breaker:
            for doc_id in combined:
                rest = totals[doc_id] - combined[doc_id]
                combined[doc_id] += self.tie_breaker * rest
        if self.boost != 1.0:
            combined = {doc: score * self.boost
                        for doc, score in combined.items()}
        return combined

    def scorer(self, index: InvertedIndex,
               similarity: Similarity) -> Optional["DisMaxScorer"]:
        subs = [query.scorer(index, similarity) for query in self.queries]
        if not subs or any(sub is None for sub in subs):
            return None
        return DisMaxScorer(self, subs)

    def __str__(self) -> str:
        inner = " | ".join(str(q) for q in self.queries)
        return f"dismax({inner})"


class DisMaxScorer(Scorer):
    """Single-doc disjunction-max over sub-scorers.

    Replicates :meth:`DisMaxQuery.score_docs` per document: the best
    sub-score is found with the same ``>`` comparisons, the total is
    summed in sub-query order, and the tie-breaker/boost arithmetic
    runs in the same order — identical floats out.

    ``score_one`` consults a contributor map — doc id to the list of
    ``(sub position, contribution)`` pairs containing it, built
    lazily on first need (so a scorer retired or pruned before
    scoring never pays for it) from each sub's
    :meth:`TermScorer.contributions` batch, which precomputes the
    per-doc contribution over the typed columns with the exact float
    sequence of ``score_one``.  A miss then costs one dict probe and
    a hit is pure float max/sum work — no per-document sub-scorer
    calls at all; contributors apply in sub order exactly as before,
    so the result is bit-identical.  Because entries name positions
    rather than scorer objects, the merged map memoizes on
    generation-frozen backends and repeat queries skip the build —
    and its allocations — entirely.
    """

    __slots__ = ("_subs", "_tie_breaker", "_boost", "_doc_ids",
                 "_doc_set", "_contributors")

    def __init__(self, query: "DisMaxQuery", subs: List[Scorer]) -> None:
        super().__init__()
        self._subs = subs
        self._tie_breaker = query.tie_breaker
        self._boost = query.boost
        self._doc_ids: Optional[List[int]] = None
        self._doc_set: Optional[Set[int]] = None
        self._contributors: Optional[Dict[int, List[Scorer]]] = None

    def _contributor_map(self) -> Dict[int, list]:
        subs = self._subs
        # Entries hold sub *positions*, not scorer references, so on
        # backends with generation-frozen scoring inputs (the segment
        # views) the whole merged map — plus its sorted doc ids and
        # doc set — memoizes under the subs' signature and a repeat
        # query re-uses it without rebuilding (or re-allocating)
        # anything.
        memo = key = None
        if subs:
            memo = getattr(getattr(subs[0], "_index", None),
                           "contrib_memo", None)
            if memo is not None:
                try:
                    key = ("dismax",) + tuple(
                        sub._memo_key() for sub in subs)
                except AttributeError:
                    memo = None
                else:
                    cached = memo.get(key)
                    if cached is not None:
                        cmap, doc_ids, doc_set = cached
                        self._contributors = cmap
                        if self._doc_ids is None:
                            self._doc_ids = doc_ids
                        if self._doc_set is None:
                            self._doc_set = doc_set
                        return cmap
        cmap = {}
        for position, sub in enumerate(subs):
            pairs = getattr(sub, "contributions", lambda: None)()
            if pairs is None:
                # no typed frequency column behind this sub — store
                # it bare and probe per doc at scoring time (the map
                # is then query-local: probes need live scorers)
                memo = None
                pairs = ((doc_id, None) for doc_id in sub.doc_ids())
            for doc_id, contribution in pairs:
                entry = cmap.get(doc_id)
                if entry is None:
                    cmap[doc_id] = entry = []
                entry.append((position, contribution))
        if memo is not None:
            doc_ids = sorted(cmap)
            doc_set = set(doc_ids)
            memo[key] = (cmap, doc_ids, doc_set)
            if self._doc_ids is None:
                self._doc_ids = doc_ids
            if self._doc_set is None:
                self._doc_set = doc_set
        self._contributors = cmap
        return cmap

    def max_contribution(self) -> float:
        bounds = [sub.max_contribution() for sub in self._subs]
        if not bounds:
            return 0.0
        best, total = max(bounds), sum(bounds)
        tie = self._tie_breaker
        if tie <= 0.0:
            bound = best
        elif tie <= 1.0:
            bound = (1.0 - tie) * best + tie * total
        else:
            bound = tie * total
        return bound * self._boost

    def doc_ids(self) -> List[int]:
        ids = self._doc_ids
        if ids is None:
            ids = sorted(self.doc_id_set())
            self._doc_ids = ids
        return ids

    def doc_id_set(self) -> Set[int]:
        docs = self._doc_set
        if docs is None:
            cmap = self._contributors
            if cmap is None:
                cmap = self._contributor_map()
            docs = set(cmap)
            self._doc_set = docs
        return docs

    def score_one(self, doc_id: int) -> Optional[float]:
        # mirrors score_docs: the running max starts at 0.0 (the
        # dict-get default), so a doc only matches once some sub-score
        # exceeds 0.0 — and the total still sums every sub-score.
        # Sub-scorers that do not contain the doc would return None
        # and contributed nothing in the exhaustive path either, so
        # consulting only the contributors leaves the float sequence
        # unchanged.
        cmap = self._contributors
        if cmap is None:
            cmap = self._contributor_map()
        entries = cmap.get(doc_id)
        if entries is None:
            return None
        subs = self._subs
        best = 0.0
        matched = False
        total = 0.0
        for position, score in entries:
            if score is None:
                # bare contributor: probe it now (its own accounting)
                score = subs[position].score_one(doc_id)
                if score is None:
                    continue
            else:
                # one posting consulted, same count score_one charges
                subs[position].scanned += 1
            if score > best:
                best = score
                matched = True
            total += score
        if not matched:
            return None
        if self._tie_breaker:
            rest = total - best
            best += self._tie_breaker * rest
        if self._boost != 1.0:
            best *= self._boost
        return best

    def postings_scanned(self) -> int:
        return sum(sub.postings_scanned() for sub in self._subs)


class Occur(Enum):
    """Boolean clause polarity."""

    MUST = "must"
    SHOULD = "should"
    MUST_NOT = "must_not"


@dataclass
class BooleanClause:
    query: Query
    occur: Occur = Occur.SHOULD


@dataclass
class BooleanQuery(Query):
    """Combination of sub-queries with Lucene boolean semantics.

    * MUST clauses all have to match; their scores add.
    * SHOULD clauses are optional; matches add score.  If there are no
      MUST clauses, at least one SHOULD clause has to match.
    * MUST_NOT clauses exclude documents.
    * The coordination factor multiplies score by the fraction of
      scoring (MUST/SHOULD) clauses matched.
    """

    clauses: List[BooleanClause] = field(default_factory=list)
    boost: float = 1.0

    def add(self, query: Query, occur: Occur = Occur.SHOULD
            ) -> "BooleanQuery":
        self.clauses.append(BooleanClause(query, occur))
        return self

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        musts = [c.query for c in self.clauses if c.occur is Occur.MUST]
        shoulds = [c.query for c in self.clauses if c.occur is Occur.SHOULD]
        nots = [c.query for c in self.clauses if c.occur is Occur.MUST_NOT]
        if not musts and not shoulds:
            return {}

        must_scores = [q.score_docs(index, similarity) for q in musts]
        should_scores = [q.score_docs(index, similarity) for q in shoulds]

        if musts:
            allowed = set(must_scores[0])
            for scores in must_scores[1:]:
                allowed &= set(scores)
        else:
            allowed = set()
            for scores in should_scores:
                allowed |= set(scores)

        for query in nots:
            allowed -= set(query.score_docs(index, similarity))

        total_clauses = len(musts) + len(shoulds)
        combined: Scores = {}
        for doc_id in allowed:
            score = 0.0
            matched = 0
            for scores in must_scores:
                score += scores[doc_id]
                matched += 1
            for scores in should_scores:
                contribution = scores.get(doc_id)
                if contribution is not None:
                    score += contribution
                    matched += 1
            coord = similarity.coord(matched, total_clauses)
            combined[doc_id] = score * coord * self.boost
        return combined

    def scorer(self, index: InvertedIndex,
               similarity: Similarity) -> Optional["BooleanScorer"]:
        musts, shoulds, nots = [], [], []
        for clause in self.clauses:
            sub = clause.query.scorer(index, similarity)
            if sub is None:
                return None
            {Occur.MUST: musts, Occur.SHOULD: shoulds,
             Occur.MUST_NOT: nots}[clause.occur].append(sub)
        if not musts and not shoulds:
            return None
        return BooleanScorer(self, similarity, musts, shoulds, nots)

    def __str__(self) -> str:
        rendered = []
        marker = {Occur.MUST: "+", Occur.SHOULD: "", Occur.MUST_NOT: "-"}
        for clause in self.clauses:
            rendered.append(f"{marker[clause.occur]}({clause.query})")
        return " ".join(rendered)


class BooleanScorer(Scorer):
    """Single-doc boolean scoring with Lucene semantics.

    Replicates :meth:`BooleanQuery.score_docs` per document: MUST
    scores sum in clause order, then SHOULD contributions in clause
    order, then the coordination factor and boost — the same
    floating-point sequence as the exhaustive path.
    """

    __slots__ = ("musts", "shoulds", "nots", "_similarity",
                 "_total_clauses", "_boost", "_not_docs")

    def __init__(self, query: "BooleanQuery", similarity: Similarity,
                 musts: List[Scorer], shoulds: List[Scorer],
                 nots: List[Scorer]) -> None:
        super().__init__()
        self.musts = musts
        self.shoulds = shoulds
        self.nots = nots
        self._similarity = similarity
        self._total_clauses = len(musts) + len(shoulds)
        self._boost = query.boost
        self._not_docs: Optional[Set[int]] = None

    @property
    def boost(self) -> float:
        return self._boost

    def excluded_docs(self) -> Set[int]:
        """Union of the MUST_NOT clauses' matches (memoized)."""
        if self._not_docs is None:
            excluded: Set[int] = set()
            for sub in self.nots:
                excluded |= sub.doc_id_set()
            self._not_docs = excluded
        return self._not_docs

    def max_contribution(self) -> float:
        # coord <= 1, so the clause-bound sum times boost dominates
        total = sum(sub.max_contribution()
                    for sub in self.musts + self.shoulds)
        return total * self._boost

    def doc_ids(self) -> List[int]:
        return sorted(self.doc_id_set())

    def doc_id_set(self) -> Set[int]:
        if self.musts:
            # copy before intersecting in place: sub doc-id sets may
            # be memoized and shared across scorers
            matching = set(self.musts[0].doc_id_set())
            for sub in self.musts[1:]:
                matching &= sub.doc_id_set()
        else:
            matching = set()
            for sub in self.shoulds:
                matching |= sub.doc_id_set()
        return matching - self.excluded_docs()

    def score_one(self, doc_id: int) -> Optional[float]:
        if doc_id in self.excluded_docs():
            return None
        score = 0.0
        matched = 0
        for sub in self.musts:
            contribution = sub.score_one(doc_id)
            if contribution is None:
                return None
            score += contribution
            matched += 1
        for sub in self.shoulds:
            contribution = sub.score_one(doc_id)
            if contribution is not None:
                score += contribution
                matched += 1
        if not self.musts and matched == 0:
            return None
        coord = self._similarity.coord(matched, self._total_clauses)
        return score * coord * self._boost

    def postings_scanned(self) -> int:
        return sum(sub.postings_scanned()
                   for sub in self.musts + self.shoulds + self.nots)
