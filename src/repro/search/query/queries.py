"""Query tree: term, phrase, prefix, boolean and match-all queries.

Each query knows how to score itself against an
:class:`~repro.search.index.inverted.InvertedIndex` given a
:class:`~repro.search.similarity.Similarity`; the searcher merely ranks
the resulting document→score map.

Two scoring paths exist:

* :meth:`Query.score_docs` — the exhaustive path: materializes the
  full doc→score map.  This is the semantics oracle; ``explain()``
  and the pruned path are verified against it.
* :meth:`Query.scorer` — returns a :class:`Scorer` supporting exact
  *single-document* scoring plus a per-clause score upper bound, or
  ``None`` for query types without one (phrase, prefix, match-all,
  and the extras), which then always score exhaustively.  The
  MaxScore-style top-k driver (:mod:`repro.search.topk`) is built on
  scorers; every ``score_one`` replicates the exhaustive path's
  floating-point operations *in the same order*, so pruned top-k
  results are bit-identical to exhaustive ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import QueryError
from repro.search.index.inverted import InvertedIndex
from repro.search.similarity import Similarity

__all__ = ["Query", "TermQuery", "PhraseQuery", "PrefixQuery",
           "MatchAllQuery", "Occur", "BooleanClause", "BooleanQuery",
           "Scorer", "TermScorer", "DisMaxScorer", "BooleanScorer"]

Scores = Dict[int, float]


def _count_postings(amount: int) -> None:
    """Tally postings scanned into the active metrics registry (the
    import is deferred — see repro.search.searcher._observability)."""
    from repro.core.observability import get_observability
    metrics = get_observability().metrics
    if metrics.enabled:
        metrics.counter("query_postings_scanned_total",
                        "postings entries read while scoring queries"
                        ).inc(amount)


class Scorer:
    """Exact per-document scoring for one query node.

    ``score_one`` must return bit-for-bit the value the node's
    ``score_docs`` map holds for that doc (``None`` for non-matches);
    ``max_contribution`` bounds it from above over all documents.
    """

    __slots__ = ("scanned",)

    def __init__(self) -> None:
        #: postings entries read through ``score_one`` (leaf scorers
        #: only; aggregates sum their children)
        self.scanned = 0

    def max_contribution(self) -> float:
        raise NotImplementedError

    def doc_ids(self) -> List[int]:
        """Matching doc ids, ascending."""
        raise NotImplementedError

    def doc_id_set(self) -> Set[int]:
        raise NotImplementedError

    def score_one(self, doc_id: int) -> Optional[float]:
        raise NotImplementedError

    def postings_scanned(self) -> int:
        return self.scanned


class Query:
    """Base query node."""

    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        raise NotImplementedError

    def scorer(self, index: InvertedIndex,
               similarity: Similarity) -> Optional[Scorer]:
        """A per-doc scorer for the pruned top-k path, or ``None``
        when this query type only supports exhaustive scoring."""
        return None


@dataclass
class TermQuery(Query):
    """Match one analyzed term in one field."""

    field_name: str
    term: str
    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        postings = index.postings(self.field_name, self.term)
        if postings is None:
            return {}
        _count_postings(len(postings))
        doc_count = index.doc_count
        average = index.average_field_length(self.field_name)
        scores: Scores = {}
        for posting in postings:
            base = similarity.score(
                posting.frequency, postings.doc_frequency, doc_count,
                index.field_length(self.field_name, posting.doc_id),
                average)
            index_boost = index.field_boost(self.field_name, posting.doc_id)
            scores[posting.doc_id] = base * self.boost * index_boost
        return scores

    def scorer(self, index: InvertedIndex,
               similarity: Similarity) -> "TermScorer":
        return TermScorer(self, index, similarity)

    def __str__(self) -> str:
        suffix = f"^{self.boost}" if self.boost != 1.0 else ""
        return f"{self.field_name}:{self.term}{suffix}"


class TermScorer(Scorer):
    """Single-doc scoring for one (field, term) pair.

    ``score_one`` evaluates ``similarity.score(...) * boost *
    index_boost`` with exactly the arguments and operation order of
    :meth:`TermQuery.score_docs`, so values match bit for bit.
    """

    __slots__ = ("_query", "_index", "_similarity", "_postings",
                 "_doc_frequency", "_doc_count", "_average")

    def __init__(self, query: TermQuery, index: InvertedIndex,
                 similarity: Similarity) -> None:
        super().__init__()
        self._query = query
        self._index = index
        self._similarity = similarity
        self._postings = index.postings(query.field_name, query.term)
        self._doc_frequency = (self._postings.doc_frequency
                               if self._postings else 0)
        self._doc_count = index.doc_count
        self._average = index.average_field_length(query.field_name)

    def max_contribution(self) -> float:
        if self._postings is None:
            return 0.0
        bound = self._similarity.max_score(
            self._postings.max_frequency, self._doc_frequency,
            self._doc_count)
        return (bound * self._query.boost
                * self._index.max_field_boost(self._query.field_name))

    def doc_ids(self) -> List[int]:
        return self._postings.doc_ids() if self._postings else []

    def doc_id_set(self) -> Set[int]:
        return set(self._postings.doc_ids()) if self._postings else set()

    def score_one(self, doc_id: int) -> Optional[float]:
        if self._postings is None:
            return None
        # frequency() avoids materializing a Posting (and, on segment
        # backends, ever decoding position lists) just to count
        # occurrences — same integer, so the score is bit-identical
        frequency = self._postings.frequency(doc_id)
        if frequency is None:
            return None
        self.scanned += 1
        field_name = self._query.field_name
        base = self._similarity.score(
            frequency, self._doc_frequency, self._doc_count,
            self._index.field_length(field_name, doc_id), self._average)
        index_boost = self._index.field_boost(field_name, doc_id)
        return base * self._query.boost * index_boost


@dataclass
class PhraseQuery(Query):
    """Match terms at consecutive positions (slop 0) or within ``slop``."""

    field_name: str
    terms: Sequence[str]
    slop: int = 0
    boost: float = 1.0

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError("phrase query needs at least one term")
        self.terms = list(self.terms)

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        if len(self.terms) == 1:
            return TermQuery(self.field_name, self.terms[0],
                             self.boost).score_docs(index, similarity)
        postings_lists = []
        for term in self.terms:
            postings = index.postings(self.field_name, term)
            if postings is None:
                return {}
            postings_lists.append(postings)
        _count_postings(sum(len(p) for p in postings_lists))
        candidates = set(p.doc_id for p in postings_lists[0])
        for postings in postings_lists[1:]:
            candidates &= set(p.doc_id for p in postings)
        doc_count = index.doc_count
        average = index.average_field_length(self.field_name)
        scores: Scores = {}
        for doc_id in candidates:
            phrase_freq = self._phrase_frequency(postings_lists, doc_id)
            if phrase_freq == 0:
                continue
            # idf of a phrase: sum of member idfs (Lucene's approach)
            idf_proxy_df = min(p.doc_frequency for p in postings_lists)
            base = similarity.score(
                phrase_freq, idf_proxy_df, doc_count,
                index.field_length(self.field_name, doc_id), average)
            index_boost = index.field_boost(self.field_name, doc_id)
            scores[doc_id] = base * self.boost * index_boost
        return scores

    def _phrase_frequency(self, postings_lists, doc_id: int) -> int:
        position_sets = []
        for postings in postings_lists:
            posting = postings.get(doc_id)
            if posting is None:
                return 0
            position_sets.append(set(posting.positions))
        count = 0
        for start in sorted(position_sets[0]):
            if self._match_from(position_sets, start):
                count += 1
        return count

    def _match_from(self, position_sets, start: int) -> bool:
        if self.slop == 0:
            return all(start + offset in positions
                       for offset, positions in enumerate(position_sets))
        # sloppy match: each next term must appear after the previous
        # one within the slop window; take the earliest valid position.
        expected = start
        for positions in position_sets[1:]:
            candidates = [pos for pos in positions
                          if expected < pos <= expected + 1 + self.slop]
            if not candidates:
                return False
            expected = min(candidates)
        return True

    def __str__(self) -> str:
        phrase = " ".join(self.terms)
        return f'{self.field_name}:"{phrase}"'


@dataclass
class PrefixQuery(Query):
    """Match every term starting with ``prefix`` (constant score)."""

    field_name: str
    prefix: str
    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        scores: Scores = {}
        for term in index.terms_with_prefix(self.field_name, self.prefix):
            postings = index.postings(self.field_name, term)
            if postings is None:
                continue
            _count_postings(len(postings))
            for posting in postings:
                index_boost = index.field_boost(self.field_name,
                                                posting.doc_id)
                score = self.boost * index_boost
                if score > scores.get(posting.doc_id, 0.0):
                    scores[posting.doc_id] = score
        return scores

    def __str__(self) -> str:
        return f"{self.field_name}:{self.prefix}*"


@dataclass
class MatchAllQuery(Query):
    """Match every document with a constant score."""

    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        return {doc_id: self.boost for doc_id in range(index.doc_count)}

    def __str__(self) -> str:
        return "*:*"


@dataclass
class DisMaxQuery(Query):
    """Disjunction-max: score is the best sub-query score per doc,
    plus ``tie_breaker`` times the others.

    The multi-field keyword interface uses this per query term so that
    a term matching the boosted ``event`` field is not penalized for
    missing the ten other fields (as a coordinated boolean would do).
    """

    queries: List[Query] = field(default_factory=list)
    tie_breaker: float = 0.0
    boost: float = 1.0

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        combined: Scores = {}
        totals: Scores = {}
        for query in self.queries:
            for doc_id, score in query.score_docs(index,
                                                  similarity).items():
                if score > combined.get(doc_id, 0.0):
                    combined[doc_id] = score
                totals[doc_id] = totals.get(doc_id, 0.0) + score
        if self.tie_breaker:
            for doc_id in combined:
                rest = totals[doc_id] - combined[doc_id]
                combined[doc_id] += self.tie_breaker * rest
        if self.boost != 1.0:
            combined = {doc: score * self.boost
                        for doc, score in combined.items()}
        return combined

    def scorer(self, index: InvertedIndex,
               similarity: Similarity) -> Optional["DisMaxScorer"]:
        subs = [query.scorer(index, similarity) for query in self.queries]
        if not subs or any(sub is None for sub in subs):
            return None
        return DisMaxScorer(self, subs)

    def __str__(self) -> str:
        inner = " | ".join(str(q) for q in self.queries)
        return f"dismax({inner})"


class DisMaxScorer(Scorer):
    """Single-doc disjunction-max over sub-scorers.

    Replicates :meth:`DisMaxQuery.score_docs` per document: the best
    sub-score is found with the same ``>`` comparisons, the total is
    summed in sub-query order, and the tie-breaker/boost arithmetic
    runs in the same order — identical floats out.
    """

    __slots__ = ("_subs", "_tie_breaker", "_boost", "_contributors")

    def __init__(self, query: "DisMaxQuery", subs: List[Scorer]) -> None:
        super().__init__()
        self._subs = subs
        self._tie_breaker = query.tie_breaker
        self._boost = query.boost
        self._contributors: Optional[Dict[int, List[Scorer]]] = None

    def _contributor_map(self) -> Dict[int, List[Scorer]]:
        """doc id → the sub-scorers that contain it, in sub order.

        Built once per scorer: scoring a candidate then touches only
        the clauses that actually match it, instead of probing every
        field's postings for (mostly) misses.  Enumerating doc ids is
        far cheaper than the similarity math it avoids."""
        if self._contributors is None:
            contributors: Dict[int, List[Scorer]] = {}
            for sub in self._subs:
                for doc_id in sub.doc_ids():
                    contributors.setdefault(doc_id, []).append(sub)
            self._contributors = contributors
        return self._contributors

    def max_contribution(self) -> float:
        bounds = [sub.max_contribution() for sub in self._subs]
        if not bounds:
            return 0.0
        best, total = max(bounds), sum(bounds)
        tie = self._tie_breaker
        if tie <= 0.0:
            bound = best
        elif tie <= 1.0:
            bound = (1.0 - tie) * best + tie * total
        else:
            bound = tie * total
        return bound * self._boost

    def doc_ids(self) -> List[int]:
        return sorted(self._contributor_map())

    def doc_id_set(self) -> Set[int]:
        return set(self._contributor_map())

    def score_one(self, doc_id: int) -> Optional[float]:
        # mirrors score_docs: the running max starts at 0.0 (the
        # dict-get default), so a doc only matches once some sub-score
        # exceeds 0.0 — and the total still sums every sub-score.
        # Only the clauses containing the doc are consulted; the
        # skipped ones contributed nothing in the exhaustive path
        # either, so the float sequence is unchanged.
        subs = self._contributor_map().get(doc_id)
        if subs is None:
            return None
        best = 0.0
        matched = False
        total = 0.0
        for sub in subs:
            score = sub.score_one(doc_id)
            if score is None:
                continue
            if score > best:
                best = score
                matched = True
            total += score
        if not matched:
            return None
        if self._tie_breaker:
            rest = total - best
            best += self._tie_breaker * rest
        if self._boost != 1.0:
            best *= self._boost
        return best

    def postings_scanned(self) -> int:
        return sum(sub.postings_scanned() for sub in self._subs)


class Occur(Enum):
    """Boolean clause polarity."""

    MUST = "must"
    SHOULD = "should"
    MUST_NOT = "must_not"


@dataclass
class BooleanClause:
    query: Query
    occur: Occur = Occur.SHOULD


@dataclass
class BooleanQuery(Query):
    """Combination of sub-queries with Lucene boolean semantics.

    * MUST clauses all have to match; their scores add.
    * SHOULD clauses are optional; matches add score.  If there are no
      MUST clauses, at least one SHOULD clause has to match.
    * MUST_NOT clauses exclude documents.
    * The coordination factor multiplies score by the fraction of
      scoring (MUST/SHOULD) clauses matched.
    """

    clauses: List[BooleanClause] = field(default_factory=list)
    boost: float = 1.0

    def add(self, query: Query, occur: Occur = Occur.SHOULD
            ) -> "BooleanQuery":
        self.clauses.append(BooleanClause(query, occur))
        return self

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        musts = [c.query for c in self.clauses if c.occur is Occur.MUST]
        shoulds = [c.query for c in self.clauses if c.occur is Occur.SHOULD]
        nots = [c.query for c in self.clauses if c.occur is Occur.MUST_NOT]
        if not musts and not shoulds:
            return {}

        must_scores = [q.score_docs(index, similarity) for q in musts]
        should_scores = [q.score_docs(index, similarity) for q in shoulds]

        if musts:
            allowed = set(must_scores[0])
            for scores in must_scores[1:]:
                allowed &= set(scores)
        else:
            allowed = set()
            for scores in should_scores:
                allowed |= set(scores)

        for query in nots:
            allowed -= set(query.score_docs(index, similarity))

        total_clauses = len(musts) + len(shoulds)
        combined: Scores = {}
        for doc_id in allowed:
            score = 0.0
            matched = 0
            for scores in must_scores:
                score += scores[doc_id]
                matched += 1
            for scores in should_scores:
                contribution = scores.get(doc_id)
                if contribution is not None:
                    score += contribution
                    matched += 1
            coord = similarity.coord(matched, total_clauses)
            combined[doc_id] = score * coord * self.boost
        return combined

    def scorer(self, index: InvertedIndex,
               similarity: Similarity) -> Optional["BooleanScorer"]:
        musts, shoulds, nots = [], [], []
        for clause in self.clauses:
            sub = clause.query.scorer(index, similarity)
            if sub is None:
                return None
            {Occur.MUST: musts, Occur.SHOULD: shoulds,
             Occur.MUST_NOT: nots}[clause.occur].append(sub)
        if not musts and not shoulds:
            return None
        return BooleanScorer(self, similarity, musts, shoulds, nots)

    def __str__(self) -> str:
        rendered = []
        marker = {Occur.MUST: "+", Occur.SHOULD: "", Occur.MUST_NOT: "-"}
        for clause in self.clauses:
            rendered.append(f"{marker[clause.occur]}({clause.query})")
        return " ".join(rendered)


class BooleanScorer(Scorer):
    """Single-doc boolean scoring with Lucene semantics.

    Replicates :meth:`BooleanQuery.score_docs` per document: MUST
    scores sum in clause order, then SHOULD contributions in clause
    order, then the coordination factor and boost — the same
    floating-point sequence as the exhaustive path.
    """

    __slots__ = ("musts", "shoulds", "nots", "_similarity",
                 "_total_clauses", "_boost", "_not_docs")

    def __init__(self, query: "BooleanQuery", similarity: Similarity,
                 musts: List[Scorer], shoulds: List[Scorer],
                 nots: List[Scorer]) -> None:
        super().__init__()
        self.musts = musts
        self.shoulds = shoulds
        self.nots = nots
        self._similarity = similarity
        self._total_clauses = len(musts) + len(shoulds)
        self._boost = query.boost
        self._not_docs: Optional[Set[int]] = None

    @property
    def boost(self) -> float:
        return self._boost

    def excluded_docs(self) -> Set[int]:
        """Union of the MUST_NOT clauses' matches (memoized)."""
        if self._not_docs is None:
            excluded: Set[int] = set()
            for sub in self.nots:
                excluded |= sub.doc_id_set()
            self._not_docs = excluded
        return self._not_docs

    def max_contribution(self) -> float:
        # coord <= 1, so the clause-bound sum times boost dominates
        total = sum(sub.max_contribution()
                    for sub in self.musts + self.shoulds)
        return total * self._boost

    def doc_ids(self) -> List[int]:
        return sorted(self.doc_id_set())

    def doc_id_set(self) -> Set[int]:
        if self.musts:
            matching = self.musts[0].doc_id_set()
            for sub in self.musts[1:]:
                matching &= sub.doc_id_set()
        else:
            matching = set()
            for sub in self.shoulds:
                matching |= sub.doc_id_set()
        return matching - self.excluded_docs()

    def score_one(self, doc_id: int) -> Optional[float]:
        if doc_id in self.excluded_docs():
            return None
        score = 0.0
        matched = 0
        for sub in self.musts:
            contribution = sub.score_one(doc_id)
            if contribution is None:
                return None
            score += contribution
            matched += 1
        for sub in self.shoulds:
            contribution = sub.score_one(doc_id)
            if contribution is not None:
                score += contribution
                matched += 1
        if not self.musts and matched == 0:
            return None
        coord = self._similarity.coord(matched, self._total_clauses)
        return score * coord * self._boost

    def postings_scanned(self) -> int:
        return sum(sub.postings_scanned()
                   for sub in self.musts + self.shoulds + self.nots)
