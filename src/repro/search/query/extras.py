"""Additional query types: numeric ranges and fuzzy matching.

Not needed for the paper's headline tables, but part of what makes the
index a usable retrieval system: "goals after minute 80" needs a
range; misspelled player names ("mesi") need fuzzy matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import QueryError
from repro.search.index.inverted import InvertedIndex
from repro.search.query.queries import Query, Scores, TermQuery
from repro.search.similarity import Similarity

__all__ = ["RangeQuery", "FuzzyQuery", "edit_distance"]


@dataclass
class RangeQuery(Query):
    """Match documents whose field holds a numeric term within
    ``[low, high]`` (either bound may be None for open ranges).

    Scores are constant (``boost``), like Lucene's constant-score
    range queries.
    """

    field_name: str
    low: Optional[float] = None
    high: Optional[float] = None
    boost: float = 1.0

    def __post_init__(self) -> None:
        if self.low is None and self.high is None:
            raise QueryError("range query needs at least one bound")
        if self.low is not None and self.high is not None \
                and self.low > self.high:
            raise QueryError("range query bounds are inverted")

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        scores: Scores = {}
        for term in index.terms(self.field_name):
            try:
                value = float(term)
            except ValueError:
                continue
            if self.low is not None and value < self.low:
                continue
            if self.high is not None and value > self.high:
                continue
            postings = index.postings(self.field_name, term)
            if postings is None:
                continue
            for posting in postings:
                scores[posting.doc_id] = self.boost
        return scores

    def __str__(self) -> str:
        low = "*" if self.low is None else self.low
        high = "*" if self.high is None else self.high
        return f"{self.field_name}:[{low} TO {high}]"


def edit_distance(first: str, second: str, cutoff: int) -> int:
    """Damerau-Levenshtein distance, bailing out early above
    ``cutoff`` (returns ``cutoff + 1`` then)."""
    if abs(len(first) - len(second)) > cutoff:
        return cutoff + 1
    previous2: list = []
    previous = list(range(len(second) + 1))
    for i, char1 in enumerate(first, start=1):
        current = [i] + [0] * len(second)
        for j, char2 in enumerate(second, start=1):
            cost = 0 if char1 == char2 else 1
            current[j] = min(previous[j] + 1,        # deletion
                             current[j - 1] + 1,     # insertion
                             previous[j - 1] + cost)  # substitution
            if (i > 1 and j > 1 and char1 == second[j - 2]
                    and first[i - 2] == char2):
                current[j] = min(current[j],
                                 previous2[j - 2] + 1)  # transposition
        if min(current) > cutoff:
            return cutoff + 1
        previous2, previous = previous, current
    return previous[-1]


@dataclass
class FuzzyQuery(Query):
    """Match terms within ``max_edits`` of the query term.

    Expansion scans the field's term dictionary; each matched term
    scores like a TermQuery scaled by its closeness
    (``1 - edits/len``), and a document keeps its best expansion.
    """

    field_name: str
    term: str
    max_edits: int = 1
    boost: float = 1.0

    def __post_init__(self) -> None:
        if self.max_edits < 0:
            raise QueryError("max_edits must be non-negative")

    def score_docs(self, index: InvertedIndex,
                   similarity: Similarity) -> Scores:
        scores: Scores = {}
        for candidate in index.terms(self.field_name):
            edits = edit_distance(self.term, candidate, self.max_edits)
            if edits > self.max_edits:
                continue
            closeness = 1.0 - edits / max(len(self.term), 1)
            term_scores = TermQuery(
                self.field_name, candidate,
                boost=self.boost * max(closeness, 0.1),
            ).score_docs(index, similarity)
            for doc_id, score in term_scores.items():
                if score > scores.get(doc_id, 0.0):
                    scores[doc_id] = score
        return scores

    def __str__(self) -> str:
        return f"{self.field_name}:{self.term}~{self.max_edits}"
