"""Query trees and the query string parser."""

from repro.search.query.parser import QueryParser
from repro.search.query.queries import (BooleanClause, BooleanQuery,
                                        DisMaxQuery, MatchAllQuery, Occur,
                                        PhraseQuery, PrefixQuery, Query,
                                        TermQuery)

__all__ = [
    "Query",
    "TermQuery",
    "PhraseQuery",
    "PrefixQuery",
    "MatchAllQuery",
    "DisMaxQuery",
    "BooleanQuery",
    "BooleanClause",
    "Occur",
    "QueryParser",
]
