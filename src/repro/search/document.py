"""Documents and fields — the indexable unit.

Mirrors Lucene's model: a :class:`Document` is a bag of named
:class:`Field` values; each field controls whether it is indexed
(searchable), stored (retrievable) and how much it is boosted.  In the
semantic index one document represents one soccer event (§3.6.1,
Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Field", "Document"]


@dataclass
class Field:
    """One named value within a document.

    Attributes:
        name: the field name (e.g. ``"event"``, ``"narration"``).
        value: the raw text value.
        stored: keep the raw value retrievable from the index.
        indexed: make the value searchable.
        boost: index-time boost multiplied into this field's score
            contribution — how the paper stresses semantic fields over
            raw narration text (§3.6.2).
    """

    name: str
    value: str
    stored: bool = True
    indexed: bool = True
    boost: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("field name must be non-empty")
        if self.boost <= 0:
            raise ValueError("field boost must be positive")
        self.value = "" if self.value is None else str(self.value)


class Document:
    """An ordered multi-map of fields."""

    def __init__(self, fields: Optional[List[Field]] = None) -> None:
        self._fields: List[Field] = list(fields or [])

    def add(self, field_: Field) -> "Document":
        self._fields.append(field_)
        return self

    def add_text(self, name: str, value: str, *, stored: bool = True,
                 boost: float = 1.0) -> "Document":
        """Shorthand for the common indexed+stored text field."""
        return self.add(Field(name, value, stored=stored, boost=boost))

    def fields(self, name: Optional[str] = None) -> List[Field]:
        if name is None:
            return list(self._fields)
        return [f for f in self._fields if f.name == name]

    def get(self, name: str) -> Optional[str]:
        """First value of the named field, or None."""
        for field_ in self._fields:
            if field_.name == name:
                return field_.value
        return None

    def values(self, name: str) -> List[str]:
        return [f.value for f in self._fields if f.name == name]

    def field_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for field_ in self._fields:
            seen.setdefault(field_.name, None)
        return list(seen)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(self.field_names())
        return f"<Document [{names}]>"
