"""Token filters: lowercasing, stopwords, stemming, synonyms.

Filters transform a token list and compose inside an
:class:`~repro.search.analysis.analyzer.Analyzer`.  Dropping a token
keeps subsequent positions intact (position increments survive stop
removal) so phrase queries still work across removed stopwords.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.search.analysis.stemmer import PorterStemmer
from repro.search.analysis.tokenizer import Token

__all__ = [
    "TokenFilter",
    "LowercaseFilter",
    "StopFilter",
    "StemFilter",
    "SynonymFilter",
    "ASCIIFoldingFilter",
    "ENGLISH_STOPWORDS",
]

#: Lucene's classic English stopword set.
ENGLISH_STOPWORDS = frozenset("""
a an and are as at be but by for if in into is it no not of on or such
that the their then there these they this to was will with
""".split())


class TokenFilter:
    """Base class for token stream transformations."""

    def apply(self, tokens: List[Token]) -> List[Token]:
        raise NotImplementedError


class LowercaseFilter(TokenFilter):
    def apply(self, tokens: List[Token]) -> List[Token]:
        return [token.with_text(token.text.lower()) for token in tokens]


class StopFilter(TokenFilter):
    """Remove stopwords (position numbers of survivors are preserved)."""

    def __init__(self, stopwords: Iterable[str] = ENGLISH_STOPWORDS) -> None:
        self._stopwords: Set[str] = set(stopwords)

    def apply(self, tokens: List[Token]) -> List[Token]:
        return [token for token in tokens
                if token.text not in self._stopwords]


class StemFilter(TokenFilter):
    """Porter-stem every token."""

    def __init__(self, stemmer: PorterStemmer | None = None) -> None:
        self._stemmer = stemmer or PorterStemmer()

    def apply(self, tokens: List[Token]) -> List[Token]:
        return [token.with_text(self._stemmer.stem(token.text))
                for token in tokens]


class ASCIIFoldingFilter(TokenFilter):
    """Fold common accented characters to ASCII ("Özgür" → "ozgur").

    Narrations contain accented player names (Eto'o, Vidić, González);
    folding makes them findable from unaccented keyboards.
    """

    _TABLE = str.maketrans(
        "àáâãäåçèéêëìíîïñòóôõöøùúûüýÿčćđšžğışÀÁÂÃÄÅÇÈÉÊËÌÍÎÏÑÒÓÔÕÖØÙÚÛÜÝĞİŞ",
        "aaaaaaceeeeiiiinoooooouuuuyyccdszgisAAAAAACEEEEIIIINOOOOOOUUUUYGIS")

    def apply(self, tokens: List[Token]) -> List[Token]:
        return [token.with_text(token.text.translate(self._TABLE))
                for token in tokens]


class SynonymFilter(TokenFilter):
    """Inject synonyms at the same position as the original token.

    This is the index-expansion mechanism §7 sketches for multilingual
    and WordNet-style enrichment: extra tokens share the position of
    the source token, so both surface forms match at the same place.
    """

    def __init__(self, synonyms: Dict[str, Sequence[str]]) -> None:
        self._synonyms = {key: list(values)
                          for key, values in synonyms.items()}

    def apply(self, tokens: List[Token]) -> List[Token]:
        expanded: List[Token] = []
        for token in tokens:
            expanded.append(token)
            for synonym in self._synonyms.get(token.text, ()):
                expanded.append(token.with_text(synonym))
        return expanded
