"""The Porter stemming algorithm (Porter, 1980).

A faithful implementation of the original five-step algorithm, used by
the analyzer chain so that "scores", "scored" and "scoring" all index
and query as "score" — the behaviour behind the paper's observation
that the improved index answers both "goal" and "scores" (§4).
"""

from __future__ import annotations

from functools import lru_cache

__all__ = ["PorterStemmer", "stem"]

_VOWELS = set("aeiou")

#: Size of the shared stem cache.  Narrations re-use the same soccer
#: vocabulary thousands of times, so the working set is far smaller.
STEM_CACHE_SIZE = 65536


class PorterStemmer:
    """Stateless Porter stemmer; use :meth:`stem`."""

    # ------------------------------------------------------------------
    # measure and shape predicates, defined over the word b[0:k+1]
    # ------------------------------------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        char = word[i]
        if char in _VOWELS:
            return False
        if char == "y":
            if i == 0:
                return True
            return not PorterStemmer._is_consonant(word, i - 1)
        return True

    @staticmethod
    def _measure(stem_part: str) -> int:
        """The number of VC sequences (the 'm' of the paper)."""
        m = 0
        i = 0
        length = len(stem_part)
        # skip initial consonants
        while i < length and PorterStemmer._is_consonant(stem_part, i):
            i += 1
        while i < length:
            # inside a vowel run
            while i < length and not PorterStemmer._is_consonant(stem_part, i):
                i += 1
            if i >= length:
                break
            m += 1
            while i < length and PorterStemmer._is_consonant(stem_part, i):
                i += 1
        return m

    @staticmethod
    def _contains_vowel(stem_part: str) -> bool:
        return any(not PorterStemmer._is_consonant(stem_part, i)
                   for i in range(len(stem_part)))

    @staticmethod
    def _ends_double_consonant(word: str) -> bool:
        return (len(word) >= 2 and word[-1] == word[-2]
                and PorterStemmer._is_consonant(word, len(word) - 1))

    @staticmethod
    def _ends_cvc(word: str) -> bool:
        """consonant-vowel-consonant, last consonant not w, x or y."""
        if len(word) < 3:
            return False
        if not PorterStemmer._is_consonant(word, len(word) - 3):
            return False
        if PorterStemmer._is_consonant(word, len(word) - 2):
            return False
        if not PorterStemmer._is_consonant(word, len(word) - 1):
            return False
        return word[-1] not in "wxy"

    # ------------------------------------------------------------------
    # steps
    # ------------------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            if self._measure(word[:-3]) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) \
                    and not word.endswith(("l", "s", "z")):
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2 = [
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
        ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
        ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
        ("biliti", "ble"),
    ]

    _STEP3 = [
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    ]

    _STEP4 = [
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive",
        "ize",
    ]

    def _apply_rules(self, word: str, rules, min_measure: int) -> str:
        for suffix, replacement in rules:
            if word.endswith(suffix):
                stem_part = word[: len(word) - len(suffix)]
                if self._measure(stem_part) > min_measure - 1:
                    return stem_part + replacement
                return word
        return word

    def _step2(self, word: str) -> str:
        return self._apply_rules(word, self._STEP2, 1)

    def _step3(self, word: str) -> str:
        return self._apply_rules(word, self._STEP3, 1)

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4:
            if word.endswith(suffix):
                stem_part = word[: len(word) - len(suffix)]
                if suffix == "ion" and not stem_part.endswith(("s", "t")):
                    return word
                if self._measure(stem_part) > 1:
                    return stem_part
                return word
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem_part = word[:-1]
            m = self._measure(stem_part)
            if m > 1 or (m == 1 and not self._ends_cvc(stem_part)):
                return stem_part
        return word

    def _step5b(self, word: str) -> str:
        if (word.endswith("ll") and self._measure(word[:-1]) > 1):
            return word[:-1]
        return word

    # ------------------------------------------------------------------

    def stem(self, word: str) -> str:
        """Stem one lowercase word (memoized across all instances).

        The stemmer is stateless, so every plain :class:`PorterStemmer`
        shares one :func:`functools.lru_cache`; subclasses that change
        the algorithm bypass it.
        """
        if type(self) is PorterStemmer:
            return _cached_stem(word)
        return self.stem_uncached(word)

    def stem_uncached(self, word: str) -> str:
        """Run the five-step algorithm without consulting the cache."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    @staticmethod
    def cache_info():
        """hits/misses/maxsize/currsize of the shared stem cache."""
        return _cached_stem.cache_info()

    @staticmethod
    def cache_clear() -> None:
        """Empty the shared stem cache (test isolation helper)."""
        _cached_stem.cache_clear()


_DEFAULT = PorterStemmer()


@lru_cache(maxsize=STEM_CACHE_SIZE)
def _cached_stem(word: str) -> str:
    return _DEFAULT.stem_uncached(word)


def stem(word: str) -> str:
    """Stem with a shared default stemmer instance."""
    return _cached_stem(word)
