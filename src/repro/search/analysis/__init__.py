"""Text analysis: tokenizers, filters, stemming, analyzers."""

from repro.search.analysis.analyzer import (Analyzer, KeywordAnalyzer,
                                            SimpleAnalyzer,
                                            StandardAnalyzer,
                                            analyzer_with_synonyms)
from repro.search.analysis.filters import (ASCIIFoldingFilter,
                                           ENGLISH_STOPWORDS,
                                           LowercaseFilter, StemFilter,
                                           StopFilter, SynonymFilter,
                                           TokenFilter)
from repro.search.analysis.stemmer import PorterStemmer, stem
from repro.search.analysis.tokenizer import (KeywordTokenizer,
                                             RegexTokenizer, Token,
                                             Tokenizer,
                                             WhitespaceTokenizer)

__all__ = [
    "Analyzer",
    "StandardAnalyzer",
    "SimpleAnalyzer",
    "KeywordAnalyzer",
    "analyzer_with_synonyms",
    "TokenFilter",
    "LowercaseFilter",
    "StopFilter",
    "StemFilter",
    "SynonymFilter",
    "ASCIIFoldingFilter",
    "ENGLISH_STOPWORDS",
    "PorterStemmer",
    "stem",
    "Token",
    "Tokenizer",
    "RegexTokenizer",
    "WhitespaceTokenizer",
    "KeywordTokenizer",
]
