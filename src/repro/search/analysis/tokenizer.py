"""Tokenization: text → token stream.

A :class:`Token` carries its term text, ordinal position (for phrase
matching) and character offsets (for debugging / highlighting).  The
:class:`RegexTokenizer` splits on word characters, which matches
Lucene's StandardTokenizer closely enough for narration text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import List

__all__ = ["Token", "Tokenizer", "RegexTokenizer", "WhitespaceTokenizer",
           "KeywordTokenizer"]


@dataclass(frozen=True)
class Token:
    """One token emitted by a tokenizer or filter."""

    text: str
    position: int
    start: int
    end: int

    def with_text(self, text: str) -> "Token":
        return replace(self, text=text)


class Tokenizer:
    """Base class: splits raw text into tokens."""

    def tokenize(self, text: str) -> List[Token]:
        raise NotImplementedError


class RegexTokenizer(Tokenizer):
    """Split on a word pattern (default: unicode word chars + digits,
    keeping apostrophes inside words so "Eto'o" stays one token)."""

    def __init__(self, pattern: str = r"[\w']+") -> None:
        self._pattern = re.compile(pattern, re.UNICODE)

    def tokenize(self, text: str) -> List[Token]:
        tokens = []
        for position, match in enumerate(self._pattern.finditer(text)):
            tokens.append(Token(match.group(), position,
                                match.start(), match.end()))
        return tokens


class WhitespaceTokenizer(Tokenizer):
    """Split on runs of whitespace only."""

    _SPLIT = re.compile(r"\S+")

    def tokenize(self, text: str) -> List[Token]:
        return [Token(match.group(), position, match.start(), match.end())
                for position, match in enumerate(self._SPLIT.finditer(text))]


class KeywordTokenizer(Tokenizer):
    """Emit the entire input as a single token (exact-match fields)."""

    def tokenize(self, text: str) -> List[Token]:
        if not text:
            return []
        return [Token(text, 0, 0, len(text))]
