"""Analyzers: tokenizer + filter chains.

* :class:`StandardAnalyzer` — lowercase, ASCII-fold, stop, stem; the
  default for free-text narration fields.
* :class:`SimpleAnalyzer` — lowercase + fold only; for semantic fields
  (event types, player names) where stemming would distort names.
* :class:`KeywordAnalyzer` — whole value as one lowercase token; for
  exact-match identifier fields.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.search.analysis.filters import (ASCIIFoldingFilter,
                                           ENGLISH_STOPWORDS,
                                           LowercaseFilter, StemFilter,
                                           StopFilter, SynonymFilter,
                                           TokenFilter)
from repro.search.analysis.tokenizer import (KeywordTokenizer,
                                             RegexTokenizer, Token,
                                             Tokenizer)

__all__ = ["Analyzer", "StandardAnalyzer", "SimpleAnalyzer",
           "KeywordAnalyzer", "analyzer_with_synonyms"]


class Analyzer:
    """A tokenizer followed by an ordered filter chain."""

    def __init__(self, tokenizer: Tokenizer,
                 filters: Sequence[TokenFilter] = ()) -> None:
        self._tokenizer = tokenizer
        self._filters = list(filters)

    def analyze(self, text: str) -> List[Token]:
        """Run the full chain over ``text``."""
        tokens = self._tokenizer.tokenize(text)
        for filter_ in self._filters:
            tokens = filter_.apply(tokens)
        return tokens

    def terms(self, text: str) -> List[str]:
        """Just the term texts (convenience for query building)."""
        return [token.text for token in self.analyze(text)]

    def extended(self, extra: TokenFilter) -> "Analyzer":
        """A new analyzer with one more filter appended."""
        return Analyzer(self._tokenizer, [*self._filters, extra])


class StandardAnalyzer(Analyzer):
    """Lowercase, fold accents, drop stopwords, Porter-stem."""

    def __init__(self, stopwords: Iterable[str] = ENGLISH_STOPWORDS,
                 stem: bool = True) -> None:
        filters: List[TokenFilter] = [LowercaseFilter(),
                                      ASCIIFoldingFilter(),
                                      StopFilter(stopwords)]
        if stem:
            filters.append(StemFilter())
        super().__init__(RegexTokenizer(), filters)


class SimpleAnalyzer(Analyzer):
    """Lowercase + accent folding only (no stop removal, no stemming)."""

    def __init__(self) -> None:
        super().__init__(RegexTokenizer(),
                         [LowercaseFilter(), ASCIIFoldingFilter()])


class KeywordAnalyzer(Analyzer):
    """Whole-value single token, lowercased."""

    def __init__(self) -> None:
        super().__init__(KeywordTokenizer(), [LowercaseFilter()])


def analyzer_with_synonyms(base: Analyzer,
                           synonyms: dict) -> Analyzer:
    """Wrap ``base`` with a synonym-injection stage (§7 index
    enrichment).  Synonym keys must already be in post-chain form
    (lowercased/stemmed as the base analyzer would emit them)."""
    return base.extended(SynonymFilter(synonyms))
