"""IndexSearcher: executes query trees and ranks results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.search.document import Document
from repro.search.index.inverted import InvertedIndex
from repro.search.query.queries import Query
from repro.search.similarity import ClassicSimilarity, Similarity

__all__ = ["ScoredDoc", "TopDocs", "IndexSearcher"]


@dataclass(frozen=True)
class ScoredDoc:
    """One hit: internal doc id plus score."""

    doc_id: int
    score: float


@dataclass
class TopDocs:
    """Ranked result list."""

    total_hits: int
    scored: List[ScoredDoc]

    def __iter__(self):
        return iter(self.scored)

    def __len__(self) -> int:
        return len(self.scored)

    def doc_ids(self) -> List[int]:
        return [hit.doc_id for hit in self.scored]


class IndexSearcher:
    """Searches one inverted index with a pluggable similarity."""

    def __init__(self, index: InvertedIndex,
                 similarity: Optional[Similarity] = None) -> None:
        self.index = index
        self.similarity = similarity or ClassicSimilarity()

    def search(self, query: Query, limit: Optional[int] = None) -> TopDocs:
        """Run ``query``; return hits sorted by descending score.

        Ties break on ascending doc id, making rankings deterministic —
        important for reproducible evaluation numbers.
        """
        scores = query.score_docs(self.index, self.similarity)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        if limit is not None:
            ranked = ranked[:limit]
        return TopDocs(total_hits=len(scores),
                       scored=[ScoredDoc(doc_id, score)
                               for doc_id, score in ranked])

    def document(self, doc_id: int) -> Document:
        """Fetch stored fields of a hit."""
        return self.index.stored_document(doc_id)

    def explain(self, query: Query, doc_id: int) -> float:
        """Score of ``doc_id`` under ``query`` (0.0 when not matched)."""
        return query.score_docs(self.index, self.similarity).get(doc_id, 0.0)
