"""IndexSearcher: executes query trees and ranks results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.search.document import Document
from repro.search.index.inverted import InvertedIndex
from repro.search.query.queries import Query
from repro.search.similarity import ClassicSimilarity, Similarity

__all__ = ["ScoredDoc", "TopDocs", "IndexSearcher", "rank_docs"]


def _observability():
    # deferred: repro.core.retrieval imports this module while
    # repro.core is still initializing, so a top-level import of
    # repro.core.observability would hit a half-built package.
    from repro.core.observability import get_observability
    return get_observability()


@dataclass(frozen=True)
class ScoredDoc:
    """One hit: internal doc id plus score."""

    doc_id: int
    score: float


@dataclass
class TopDocs:
    """Ranked result list."""

    total_hits: int
    scored: List[ScoredDoc]

    def __iter__(self):
        return iter(self.scored)

    def __len__(self) -> int:
        return len(self.scored)

    def doc_ids(self) -> List[int]:
        return [hit.doc_id for hit in self.scored]


def rank_docs(scores: Dict[int, float],
              limit: Optional[int] = None) -> List[Tuple[int, float]]:
    """Rank a doc→score map: descending score, ties broken by
    ascending doc id.

    The tie-break is applied *before* any ``limit`` cut, so top-k
    result sets are stable across runs, worker counts, and the
    insertion order of the score map — equal-score documents can
    never swap in or out of the window.
    """
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    if limit is not None:
        ranked = ranked[:limit]
    return ranked


class IndexSearcher:
    """Searches one inverted index with a pluggable similarity."""

    def __init__(self, index: InvertedIndex,
                 similarity: Optional[Similarity] = None) -> None:
        self.index = index
        self.similarity = similarity or ClassicSimilarity()

    def search(self, query: Query, limit: Optional[int] = None) -> TopDocs:
        """Run ``query``; return hits sorted by descending score.

        Ties break on ascending doc id (see :func:`rank_docs`), making
        rankings deterministic — important for reproducible evaluation
        numbers.
        """
        obs = _observability()
        with obs.tracer.span("query.retrieve",
                             index=self.index.name) as span:
            scores = query.score_docs(self.index, self.similarity)
            if span is not None:
                span.attributes["candidates"] = len(scores)
        with obs.tracer.span("query.score", candidates=len(scores)):
            ranked = rank_docs(scores, limit)
        if obs.metrics.enabled:
            obs.metrics.counter("query_candidates_scored_total",
                                "documents scored across all queries"
                                ).inc(len(scores))
        return TopDocs(total_hits=len(scores),
                       scored=[ScoredDoc(doc_id, score)
                               for doc_id, score in ranked])

    def document(self, doc_id: int) -> Document:
        """Fetch stored fields of a hit."""
        return self.index.stored_document(doc_id)

    def explain(self, query: Query, doc_id: int) -> float:
        """Score of ``doc_id`` under ``query`` (0.0 when not matched)."""
        return query.score_docs(self.index, self.similarity).get(doc_id, 0.0)
