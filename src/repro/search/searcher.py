"""IndexSearcher: executes query trees and ranks results.

Query serving runs through three layers, fastest first:

1. **result cache** — a thread-safe LRU keyed on (index name, index
   generation, canonical query string, limit).  The generation
   component makes invalidation implicit: any index mutation bumps
   the counter, so stale entries simply stop being addressable and
   age out of the LRU.
2. **pruned top-k** — when the query supports per-clause score upper
   bounds (:meth:`Query.scorer`) and a ``limit`` is given, the
   MaxScore driver (:mod:`repro.search.topk`) skips documents that
   cannot enter the top k.  Results are bit-identical to exhaustive
   scoring (same docs, order, floats).
3. **exhaustive scoring** — the oracle path; also serves unlimited
   searches and query types without scorers.  Exposed directly as
   :meth:`IndexSearcher.search_exhaustive` for parity testing.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.search.document import Document
from repro.search.index.inverted import InvertedIndex
from repro.search.index.writer import CacheInfo
from repro.search.query.queries import Query
from repro.search.similarity import ClassicSimilarity, Similarity
from repro.search.topk import run_top_k

__all__ = ["ScoredDoc", "TopDocs", "QueryResultCache", "IndexSearcher",
           "rank_docs"]


def _observability():
    # deferred: repro.core.retrieval imports this module while
    # repro.core is still initializing, so a top-level import of
    # repro.core.observability would hit a half-built package.
    from repro.core.observability import get_observability
    return get_observability()


@dataclass(frozen=True)
class ScoredDoc:
    """One hit: internal doc id plus score."""

    doc_id: int
    score: float


@dataclass
class TopDocs:
    """Ranked result list."""

    total_hits: int
    scored: List[ScoredDoc]
    #: True when early termination skipped scoring some documents
    pruned: bool = False
    #: True when served from the query result cache
    cached: bool = False
    #: the index generation the whole query was evaluated against —
    #: on a segmented index this is one pinned manifest generation,
    #: which the concurrency stress suite asserts on
    generation: Optional[int] = None

    def __iter__(self):
        return iter(self.scored)

    def __len__(self) -> int:
        return len(self.scored)

    def doc_ids(self) -> List[int]:
        return [hit.doc_id for hit in self.scored]


def rank_docs(scores: Dict[int, float],
              limit: Optional[int] = None) -> List[Tuple[int, float]]:
    """Rank a doc→score map: descending score, ties broken by
    ascending doc id.

    The tie-break is applied *before* any ``limit`` cut, so top-k
    result sets are stable across runs, worker counts, and the
    insertion order of the score map — equal-score documents can
    never swap in or out of the window.

    When ``limit`` is given and smaller than the map, a bounded heap
    selects the window in O(n log k) instead of sorting all n scores;
    ``heapq.nsmallest`` is defined to equal ``sorted(...)[:k]``, so
    the output is identical to the full sort.
    """
    def key(item):
        return (-item[1], item[0])

    if limit is not None and 0 <= limit < len(scores):
        ranked = heapq.nsmallest(limit, scores.items(), key=key)
    else:
        ranked = sorted(scores.items(), key=key)
        if limit is not None:
            ranked = ranked[:limit]
    return ranked


class _CacheShard:
    """One lock-striped slice of the result cache: its own LRU dict,
    lock and exact hit/miss tallies."""

    __slots__ = ("entries", "lock", "capacity", "hits", "misses")

    def __init__(self, capacity: int) -> None:
        self.entries: "OrderedDict[tuple, TopDocs]" = OrderedDict()
        self.lock = threading.Lock()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0


class QueryResultCache:
    """Thread-safe lock-striped LRU for ranked results.

    Keys are ``(index name, index generation, canonical query string,
    limit)``.  Because the generation changes on every index mutation
    (:attr:`InvertedIndex.generation`), entries written against an
    older snapshot can never be returned for the current one — no
    explicit invalidation hooks needed, and the property holds per
    shard because a key always hashes to the same shard.

    Striping replaces the former single lock: a key is pinned to one
    of ``shards`` slices by hash, so concurrent lookups of different
    keys contend only 1/N of the time.  Each shard is its own exact
    LRU over ``maxsize / shards`` entries (total capacity unchanged);
    recency is therefore per-shard, which preserves every hit/miss
    outcome of a single-threaded trace except for which entry a full
    cache evicts.  Hit/miss counts stay exact: each lookup increments
    exactly one shard's tally under that shard's lock, and
    :meth:`cache_info` sums the tallies — no double counting, and at
    quiescence the totals equal the single-lock implementation's.
    """

    def __init__(self, maxsize: int = 256, shards: int = 8) -> None:
        self.maxsize = maxsize
        if maxsize > 0:
            shards = max(1, min(shards, maxsize))
        else:
            shards = 1
        # spread capacity so the per-shard sum is exactly maxsize
        base, extra = divmod(max(maxsize, 0), shards)
        self._shards = tuple(
            _CacheShard(base + (1 if number < extra else 0))
            for number in range(shards))

    def _shard(self, key: tuple) -> _CacheShard:
        return self._shards[hash(key) % len(self._shards)]

    def get(self, key: tuple) -> Optional[TopDocs]:
        shard = self._shard(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                shard.misses += 1
                return None
            shard.entries.move_to_end(key)
            shard.hits += 1
            return entry

    def put(self, key: tuple, value: TopDocs) -> None:
        if self.maxsize <= 0:
            return
        shard = self._shard(key)
        with shard.lock:
            shard.entries[key] = value
            shard.entries.move_to_end(key)
            while len(shard.entries) > shard.capacity:
                shard.entries.popitem(last=False)

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()

    def cache_info(self) -> CacheInfo:
        hits = misses = size = 0
        for shard in self._shards:
            with shard.lock:
                hits += shard.hits
                misses += shard.misses
                size += len(shard.entries)
        return CacheInfo(hits, misses, self.maxsize, size)

    def approx_size(self) -> int:
        """Lock-free entry count for hot-path gauges: each ``len`` is
        atomic, the sum may interleave with writers by at most the
        in-flight puts."""
        return sum(len(shard.entries) for shard in self._shards)

    def __len__(self) -> int:
        size = 0
        for shard in self._shards:
            with shard.lock:
                size += len(shard.entries)
        return size


class _InFlight:
    """One in-progress uncached search that identical concurrent
    queries (same cache key, hence same pinned generation) wait on
    instead of recomputing."""

    __slots__ = ("event", "result")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[TopDocs] = None


class IndexSearcher:
    """Searches one inverted index with a pluggable similarity.

    Every query evaluates against one **pinned snapshot** of the
    index: on a :class:`~repro.search.index.segments.SegmentedIndex`
    the whole search — cache-key generation, postings reads, scoring —
    runs inside ``index.pinned()``, so a concurrent ``refresh`` can
    neither mix two manifest generations inside one query nor cache a
    new-generation result under an old-generation key.  Plain
    in-memory indexes have no ``pinned`` and are used directly.
    """

    def __init__(self, index: InvertedIndex,
                 similarity: Optional[Similarity] = None,
                 cache_size: int = 256,
                 cache_shards: int = 8) -> None:
        self.index = index
        self.similarity = similarity or ClassicSimilarity()
        self.cache = QueryResultCache(maxsize=cache_size,
                                      shards=cache_shards)
        # single-flight: cache key -> the computation in progress
        self._inflight: Dict[tuple, "_InFlight"] = {}
        self._inflight_lock = threading.Lock()
        # hot-path instrument handles, resolved once per registry
        self._instrument_registry = None
        self._instruments: Optional[tuple] = None

    # ------------------------------------------------------------------

    @contextmanager
    def _pinned_index(self) -> Iterator:
        """The index frozen for one whole query: a pinned segment set
        when the index supports it, the index itself otherwise."""
        pin = getattr(self.index, "pinned", None)
        if pin is None:
            yield self.index
            return
        with pin() as snapshot:
            yield snapshot

    def _cache_key(self, query: Query, limit: Optional[int],
                   index=None) -> tuple:
        # repr() of the dataclass query trees is a canonical string:
        # it covers every field (terms, boosts, occurs, tie breakers)
        # and is stable across processes, unlike hash().
        index = index if index is not None else self.index
        return (index.name, index.generation, repr(query), limit)

    def _cache_instruments(self, obs):
        """Counter/gauge handles for the per-query cache metrics,
        resolved through the registry once per installed registry
        instead of per search (the registry lookup takes a lock —
        measurable on the cache-hit path)."""
        if self._instrument_registry is not obs.metrics:
            self._instrument_registry = obs.metrics
            self._instruments = (
                obs.metrics.counter("query_cache_hits_total",
                                    "query result cache traffic"),
                obs.metrics.counter("query_cache_misses_total",
                                    "query result cache traffic"),
                obs.metrics.counter(
                    "query_cache_coalesced_total",
                    "identical in-flight queries served by "
                    "single-flight coalescing"),
                obs.metrics.gauge("query_cache_size",
                                  "entries in the query result cache"),
            )
        return self._instruments

    def _replay_spans(self, obs, index, top: TopDocs) -> None:
        # keep the span shape of a live query so traces stay
        # uniform: parse/retrieve/score children always exist
        with obs.tracer.span("query.retrieve",
                             index=index.name) as span:
            if span is not None:
                span.attributes["candidates"] = top.total_hits
                span.attributes["cached"] = True
        with obs.tracer.span("query.score",
                             candidates=top.total_hits):
            pass

    def search(self, query: Query, limit: Optional[int] = None) -> TopDocs:
        """Run ``query``; return hits sorted by descending score.

        Ties break on ascending doc id (see :func:`rank_docs`), making
        rankings deterministic — important for reproducible evaluation
        numbers.  Served from the result cache when possible, and via
        the pruned top-k path when ``limit`` is set and the query
        supports it; both return exactly what exhaustive scoring
        would (see :meth:`search_exhaustive`).

        Concurrent identical queries are **coalesced**: the first
        cache miss for a key computes, every later caller arriving
        before it finishes waits for that result instead of scoring
        the index again (single-flight).  The cache key includes the
        pinned generation, so coalescing can never hand a caller a
        result from a different snapshot than its own miss would have
        produced.
        """
        obs = _observability()
        with self._pinned_index() as index:
            key = self._cache_key(query, limit, index)
            cached_top = self.cache.get(key)
            metered = obs.metrics.enabled
            if metered:
                hits, misses, coalesced, size_gauge = \
                    self._cache_instruments(obs)
                (hits if cached_top is not None else misses).inc()
                size_gauge.set(self.cache.approx_size())
            if cached_top is not None:
                self._replay_spans(obs, index, cached_top)
                # shallow copy so the flag doesn't retroactively mark
                # the miss-path object that produced the entry
                return replace(cached_top, cached=True)

            with self._inflight_lock:
                flight = self._inflight.get(key)
                leader = flight is None
                if leader:
                    flight = self._inflight[key] = _InFlight()

            if not leader:
                # some other thread is already computing exactly this
                # (key, generation) — wait for its result; waiting
                # holds our pin, which never blocks a refresh, only
                # the deferred mmap close
                flight.event.wait()
                top = flight.result
                if top is not None:
                    if metered:
                        coalesced.inc()
                    self._replay_spans(obs, index, top)
                    return replace(top, cached=True)
                # the leader failed; compute alone

            try:
                top = self._search_uncached(index, query, limit, obs)
                self.cache.put(key, top)
                if leader:
                    flight.result = top
                return top
            finally:
                if leader:
                    with self._inflight_lock:
                        self._inflight.pop(key, None)
                    flight.event.set()

    def _search_uncached(self, index, query: Query,
                         limit: Optional[int], obs) -> TopDocs:
        with obs.tracer.span("query.retrieve",
                             index=index.name) as span:
            result = run_top_k(index, self.similarity, query, limit)
            if result is not None:
                ranked = result.ranked
                total_hits = result.total_hits
                candidates = result.candidates_scored
                pruned = result.pruned
                if obs.metrics.enabled:
                    obs.metrics.counter(
                        "query_postings_scanned_total",
                        "postings entries read while scoring queries"
                    ).inc(result.postings_scanned)
                    if result.segments_searched or result.segments_pruned:
                        obs.metrics.counter(
                            "query_segments_searched_total",
                            "segments scanned by scatter-gather top-k"
                        ).inc(result.segments_searched)
                        obs.metrics.counter(
                            "query_segments_pruned_total",
                            "segments skipped whole by score bounds"
                        ).inc(result.segments_pruned)
                    if result.blocks_scored or result.blocks_pruned:
                        obs.metrics.counter(
                            "query_blocks_scored_total",
                            "skip blocks scored through the batched "
                            "block path"
                        ).inc(result.blocks_scored)
                        obs.metrics.counter(
                            "query_blocks_pruned_total",
                            "skip blocks skipped whole by block-max "
                            "bounds"
                        ).inc(result.blocks_pruned)
            else:
                scores = query.score_docs(index, self.similarity)
                candidates = total_hits = len(scores)
                pruned = False
            if span is not None:
                span.attributes["candidates"] = candidates
                span.attributes["pruned"] = pruned
        with obs.tracer.span("query.score", candidates=candidates):
            if result is None:
                ranked = rank_docs(scores, limit)
        if obs.metrics.enabled:
            obs.metrics.counter("query_candidates_scored_total",
                                "documents scored across all queries"
                                ).inc(candidates)
            if pruned:
                obs.metrics.counter("query_pruned_total",
                                    "queries served by the pruned "
                                    "top-k path").inc()
        return TopDocs(total_hits=total_hits,
                       scored=[ScoredDoc(doc_id, score)
                               for doc_id, score in ranked],
                       pruned=pruned,
                       generation=index.generation)

    def search_exhaustive(self, query: Query,
                          limit: Optional[int] = None) -> TopDocs:
        """The oracle: full scoring, no cache, no pruning.  The pruned
        :meth:`search` path is verified bit-identical against this."""
        with self._pinned_index() as index:
            scores = query.score_docs(index, self.similarity)
            ranked = sorted(scores.items(),
                            key=lambda item: (-item[1], item[0]))
            if limit is not None:
                ranked = ranked[:limit]
            return TopDocs(total_hits=len(scores),
                           scored=[ScoredDoc(doc_id, score)
                                   for doc_id, score in ranked],
                           generation=index.generation)

    def document(self, doc_id: int) -> Document:
        """Fetch stored fields of a hit."""
        return self.index.stored_document(doc_id)

    def explain(self, query: Query, doc_id: int) -> float:
        """Score of ``doc_id`` under ``query`` (0.0 when not matched).

        Uses the single-document scorer path when available — O(query
        terms) instead of re-scoring the whole index — and falls back
        to the exhaustive map for query types without scorers."""
        with self._pinned_index() as index:
            scorer = query.scorer(index, self.similarity)
            if scorer is not None:
                score = scorer.score_one(doc_id)
                return 0.0 if score is None else score
            return query.score_docs(index,
                                    self.similarity).get(doc_id, 0.0)
