"""Inverted index: postings, writer, persistence, segments."""

from repro.search.index.directory import (INDEX_FORMATS, index_path,
                                          list_indexes, load_index,
                                          save_index, segment_dir_path)
from repro.search.index.inverted import InvertedIndex
from repro.search.index.postings import Posting, PostingsList
from repro.search.index.segment import (SegmentReader,
                                        merge_segment_files,
                                        write_segment)
from repro.search.index.segments import (DEFAULT_MERGE_FACTOR,
                                         SEGMENT_DIR_SUFFIX,
                                         IndexDirectory, Manifest,
                                         SegmentedIndex, SegmentInfo)
from repro.search.index.writer import IndexWriter, PerFieldAnalyzer

__all__ = [
    "InvertedIndex",
    "Posting",
    "PostingsList",
    "IndexWriter",
    "PerFieldAnalyzer",
    "save_index",
    "load_index",
    "list_indexes",
    "index_path",
    "segment_dir_path",
    "INDEX_FORMATS",
    "SegmentReader",
    "write_segment",
    "merge_segment_files",
    "IndexDirectory",
    "SegmentedIndex",
    "SegmentInfo",
    "Manifest",
    "SEGMENT_DIR_SUFFIX",
    "DEFAULT_MERGE_FACTOR",
]
