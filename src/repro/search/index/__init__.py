"""Inverted index: postings, writer, persistence."""

from repro.search.index.directory import (INDEX_FORMATS, index_path,
                                          list_indexes, load_index,
                                          save_index)
from repro.search.index.inverted import InvertedIndex
from repro.search.index.postings import Posting, PostingsList
from repro.search.index.writer import IndexWriter, PerFieldAnalyzer

__all__ = [
    "InvertedIndex",
    "Posting",
    "PostingsList",
    "IndexWriter",
    "PerFieldAnalyzer",
    "save_index",
    "load_index",
    "list_indexes",
    "index_path",
    "INDEX_FORMATS",
]
