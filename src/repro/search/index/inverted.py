"""The inverted index structure.

Per field, a term dictionary maps each term to a
:class:`~repro.search.index.postings.PostingsList`; alongside it the
index keeps per-document field lengths (for length normalization),
index-time field boosts, and the stored document values.  This is the
"single special inverted index structure" that gives the paper its
query-time scalability (§1, §3.6).

Two serving-side mechanisms live here:

* a **generation counter** (:attr:`InvertedIndex.generation`) bumped
  on every mutation — documents added, terms indexed, values stored,
  indexes merged.  Query-side caches (the searcher's result cache,
  the memoized per-field average lengths) key on it, so any write
  invalidates them without explicit notification.
* **lazy field postings** — the binary index format registers a
  per-field thunk instead of decoding every postings block at load
  time; the first read of a field materializes it (see
  :mod:`repro.search.index.codec`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import IndexError_
from repro.search.document import Document, Field
from repro.search.index.postings import Posting, PostingsList

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """In-memory inverted index over multi-field documents."""

    def __init__(self, name: str = "index") -> None:
        self.name = name
        # field -> term -> postings
        self._terms: Dict[str, Dict[str, PostingsList]] = {}
        # field -> doc_id -> token count
        self._lengths: Dict[str, Dict[int, int]] = {}
        # field -> doc_id -> index-time boost
        self._boosts: Dict[str, Dict[int, float]] = {}
        # doc_id -> field name -> stored values
        self._stored: List[Dict[str, List[str]]] = []
        # every field seen at write time (indexed or stored), so
        # field_names() never has to rescan the stored documents
        self._field_names: Set[str] = set()
        # bumped on every mutation; caches key on it
        self._generation = 0
        # field -> (generation, average length) memo
        self._avg_length_cache: Dict[str, Tuple[int, float]] = {}
        # field -> highest index-time boost seen (>= 1.0), for the
        # top-k score upper bounds
        self._max_boosts: Dict[str, float] = {}
        # field -> thunk decoding that field's postings on first read
        self._pending_fields: Dict[str, Callable[[],
                                                 Dict[str, PostingsList]]] = {}

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def new_doc_id(self) -> int:
        self._stored.append({})
        self._generation += 1
        return len(self._stored) - 1

    def index_terms(self, doc_id: int, field_name: str,
                    terms_with_positions: List[Tuple[str, int]],
                    boost: float = 1.0) -> None:
        """Add analyzed terms of one document field."""
        if not 0 <= doc_id < len(self._stored):
            raise IndexError_(f"unknown doc_id {doc_id}")
        if self._pending_fields:
            self._ensure_field(field_name)
        self._field_names.add(field_name)
        self._generation += 1
        field_terms = self._terms.setdefault(field_name, {})
        for term, position in terms_with_positions:
            postings = field_terms.get(term)
            if postings is None:
                postings = PostingsList()
                field_terms[term] = postings
            postings.add_occurrence(doc_id, position)
        lengths = self._lengths.setdefault(field_name, {})
        lengths[doc_id] = lengths.get(doc_id, 0) + len(terms_with_positions)
        if boost != 1.0:
            boosts = self._boosts.setdefault(field_name, {})
            boosts[doc_id] = boosts.get(doc_id, 1.0) * boost
            self._note_boost(field_name, boosts[doc_id])

    def store_value(self, doc_id: int, field_name: str, value: str) -> None:
        self._field_names.add(field_name)
        self._generation += 1
        self._stored[doc_id].setdefault(field_name, []).append(value)

    def _note_boost(self, field_name: str, boost: float) -> None:
        if boost > self._max_boosts.get(field_name, 1.0):
            self._max_boosts[field_name] = boost

    # ------------------------------------------------------------------
    # lazy postings (binary format support)
    # ------------------------------------------------------------------

    def _ensure_field(self, field_name: str) -> None:
        """Materialize a lazily-loaded field's postings."""
        loader = self._pending_fields.pop(field_name, None)
        if loader is not None:
            self._terms[field_name] = loader()

    def _ensure_all_fields(self) -> None:
        for field_name in list(self._pending_fields):
            self._ensure_field(field_name)

    def _attach_lazy_field(
            self, field_name: str,
            loader: Callable[[], Dict[str, PostingsList]]) -> None:
        """Register a thunk that decodes ``field_name``'s postings on
        first access (used by the binary codec's lazy loading)."""
        self._pending_fields[field_name] = loader
        self._field_names.add(field_name)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    @property
    def doc_count(self) -> int:
        return len(self._stored)

    @property
    def generation(self) -> int:
        """Mutation counter: changes whenever the index changes.
        Caches key on (index name, generation)."""
        return self._generation

    def field_names(self) -> List[str]:
        return sorted(self._field_names)

    def postings(self, field_name: str, term: str) -> Optional[PostingsList]:
        if self._pending_fields:
            self._ensure_field(field_name)
        return self._terms.get(field_name, {}).get(term)

    def doc_frequency(self, field_name: str, term: str) -> int:
        postings = self.postings(field_name, term)
        return postings.doc_frequency if postings else 0

    def terms(self, field_name: str) -> Iterator[str]:
        """All terms of a field, sorted (the term dictionary)."""
        if self._pending_fields:
            self._ensure_field(field_name)
        return iter(sorted(self._terms.get(field_name, {})))

    def terms_with_prefix(self, field_name: str, prefix: str
                          ) -> Iterator[str]:
        for term in self.terms(field_name):
            if term.startswith(prefix):
                yield term

    def field_length(self, field_name: str, doc_id: int) -> int:
        return self._lengths.get(field_name, {}).get(doc_id, 0)

    def field_boost(self, field_name: str, doc_id: int) -> float:
        return self._boosts.get(field_name, {}).get(doc_id, 1.0)

    def local_field_maps(self, field_name: str):
        """``(lengths, boosts)`` dicts behind :meth:`field_length` /
        :meth:`field_boost`, keyed by the same doc-id space as this
        index's postings columns — the batched block scorer probes
        them directly instead of paying two method calls per
        document.  Defaults (0 / 1.0) apply to missing keys exactly
        as in the per-doc methods."""
        return (self._lengths.get(field_name, {}),
                self._boosts.get(field_name, {}))

    def max_field_boost(self, field_name: str) -> float:
        """Upper bound on :meth:`field_boost` over all documents
        (maintained incrementally; never below 1.0)."""
        return self._max_boosts.get(field_name, 1.0)

    def average_field_length(self, field_name: str) -> float:
        """Mean token count of a field, memoized per generation —
        queries read this once per term, so the sum over every
        document must not be recomputed each time."""
        cached = self._avg_length_cache.get(field_name)
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        lengths = self._lengths.get(field_name)
        value = (sum(lengths.values()) / len(lengths)) if lengths else 0.0
        self._avg_length_cache[field_name] = (self._generation, value)
        return value

    def docs_with_field(self, field_name: str) -> int:
        return len(self._lengths.get(field_name, {}))

    def stored_document(self, doc_id: int) -> Document:
        """Rebuild a (stored-fields-only) document."""
        try:
            raw = self._stored[doc_id]
        except IndexError:
            raise IndexError_(f"unknown doc_id {doc_id}") from None
        document = Document()
        for name, values in raw.items():
            for value in values:
                document.add(Field(name, value))
        return document

    def stored_value(self, doc_id: int, field_name: str) -> Optional[str]:
        values = self._stored[doc_id].get(field_name)
        return values[0] if values else None

    def unique_term_count(self, field_name: str | None = None) -> int:
        if field_name is not None:
            if self._pending_fields:
                self._ensure_field(field_name)
            return len(self._terms.get(field_name, {}))
        self._ensure_all_fields()
        return sum(len(terms) for terms in self._terms.values())

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------

    def merge(self, other: "InvertedIndex") -> int:
        """Append every document of ``other`` to this index.

        Doc ids of the incoming index are offset by the current doc
        count; postings, lengths, boosts and stored fields all carry
        over.  This is the incremental-update path: build a small
        index for a new match offline and merge it in, instead of
        re-indexing the world (the §3.5/§7 flexibility argument).

        Returns the doc-id offset applied to ``other``'s documents.
        """
        offset = self.doc_count
        self._generation += 1
        other._ensure_all_fields()
        self._stored.extend(
            {name: list(values) for name, values in doc.items()}
            for doc in other._stored)
        for field_name, terms in other._terms.items():
            if self._pending_fields:
                self._ensure_field(field_name)
            target_terms = self._terms.setdefault(field_name, {})
            for term, postings in terms.items():
                target = target_terms.get(term)
                if target is None:
                    target = PostingsList()
                    target_terms[term] = target
                for posting in postings:
                    for position in posting.positions:
                        target.add_occurrence(posting.doc_id + offset,
                                              position)
        for field_name, lengths in other._lengths.items():
            target_lengths = self._lengths.setdefault(field_name, {})
            for doc_id, count in lengths.items():
                target_lengths[doc_id + offset] = count
        for field_name, boosts in other._boosts.items():
            target_boosts = self._boosts.setdefault(field_name, {})
            for doc_id, boost in boosts.items():
                target_boosts[doc_id + offset] = boost
                self._note_boost(field_name, boost)
        self._field_names |= other._field_names
        return offset

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        self._ensure_all_fields()
        return {
            "name": self.name,
            "terms": {
                field_name: {term: postings.to_json()
                             for term, postings in terms.items()}
                for field_name, terms in self._terms.items()
            },
            "lengths": {
                field_name: {str(doc): count
                             for doc, count in lengths.items()}
                for field_name, lengths in self._lengths.items()
            },
            "boosts": {
                field_name: {str(doc): boost
                             for doc, boost in boosts.items()}
                for field_name, boosts in self._boosts.items()
            },
            "stored": self._stored,
        }

    @classmethod
    def from_json(cls, data: dict) -> "InvertedIndex":
        index = cls(name=data.get("name", "index"))
        index._terms = {
            field_name: {term: PostingsList.from_json(entries)
                         for term, entries in terms.items()}
            for field_name, terms in data.get("terms", {}).items()
        }
        index._lengths = {
            field_name: {int(doc): count for doc, count in lengths.items()}
            for field_name, lengths in data.get("lengths", {}).items()
        }
        index._boosts = {
            field_name: {int(doc): boost for doc, boost in boosts.items()}
            for field_name, boosts in data.get("boosts", {}).items()
        }
        index._stored = [
            {name: list(values) for name, values in doc.items()}
            for doc in data.get("stored", [])
        ]
        index._field_names = set(index._terms) | {
            name for doc in index._stored for name in doc}
        for field_name, boosts in index._boosts.items():
            for boost in boosts.values():
                index._note_boost(field_name, boost)
        return index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<InvertedIndex {self.name!r}: {self.doc_count} docs, "
                f"{self.unique_term_count()} terms>")
