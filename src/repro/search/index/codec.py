"""Compact binary index format (``.ridx``).

Layout (little-endian)::

    magic   "RIDX"                      4 bytes
    version u8                          currently 1
    hlen    u32                         header length in bytes
    header  JSON, utf-8                 hlen bytes
    blocks  one postings block per field

The JSON header carries everything that is cheap to keep as JSON —
index name, per-field document lengths, index-time boosts, the stored
fields — plus a table of ``(field, offset, length)`` entries locating
each field's postings block inside ``blocks``.  The postings blocks
hold the bulk of the data in delta+varint form::

    block   := term_count, term*
    term    := len(utf8), utf8 bytes, doc_freq, doc*
    doc     := zigzag delta(doc_id), freq, zigzag delta(position)*

All integers are LEB128 varints; doc ids and positions are
delta-encoded against their predecessor (zigzag, so out-of-order
inputs still round-trip).  On a realistic index this is several times
smaller than the JSON form, and decoding is deferred: ``read_index``
parses only the header and registers a lazy loader per field, so
loading is O(header) and a query touching two fields decodes exactly
two blocks.
"""

from __future__ import annotations

import io
import json
import struct
from pathlib import Path
from typing import Dict, Union

from repro.errors import IndexError_
from repro.search.index.inverted import InvertedIndex
from repro.search.index.postings import Posting, PostingsList

__all__ = ["MAGIC", "VERSION", "BINARY_SUFFIX",
           "write_index", "read_index", "decode_uvarints"]

MAGIC = b"RIDX"
VERSION = 1
BINARY_SUFFIX = ".ridx"

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# varint primitives
# ----------------------------------------------------------------------

def _write_uvarint(out: io.BytesIO, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_uvarint(data: bytes, pos: int) -> tuple:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def decode_uvarints(data, pos: int, end: int) -> list:
    """Decode every LEB128 varint in ``data[pos:end]`` in one pass.

    This is the bulk counterpart of :func:`_read_uvarint`: one tight
    loop over the byte range with no per-integer function call or
    tuple allocation, several times faster on real postings blocks
    (``benchmarks/test_postings_decode.py`` measures it).  The caller
    is responsible for ``end`` landing on a varint boundary — the
    segment term dictionary records exact byte lengths, so it always
    does.  Malformed requests raise ``ValueError`` in both shapes: a
    ``[pos, end)`` range that does not fit the buffer (overrun) and a
    buffer that ends mid-varint (truncation) — never a bare
    ``IndexError`` from running off the end of ``data``.
    """
    size = len(data)
    if not 0 <= pos <= end <= size:
        raise ValueError(
            f"varint byte range [{pos}, {end}) does not fit the "
            f"{size}-byte buffer")
    values: list = []
    append = values.append
    result = 0
    shift = 0
    while pos < end:
        byte = data[pos]
        pos += 1
        if byte & 0x80:
            result |= (byte & 0x7F) << shift
            shift += 7
        elif shift:
            append(result | (byte << shift))
            result = 0
            shift = 0
        else:
            append(byte)
    if shift:
        raise ValueError("byte range ends inside a varint")
    return values


def _zigzag(value: int) -> int:
    # Python ints are arbitrary-precision, so the C-style
    # ``(value << 1) ^ (value >> 63)`` sign trick is wrong here: for
    # non-negative values >= 2**63 the arithmetic shift yields a
    # non-zero mask and the encoding stops round-tripping.  Branch on
    # the sign instead — no width assumption.
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------

def _encode_field_block(terms: Dict[str, PostingsList]) -> bytes:
    out = io.BytesIO()
    _write_uvarint(out, len(terms))
    for term in sorted(terms):
        raw = term.encode("utf-8")
        _write_uvarint(out, len(raw))
        out.write(raw)
        postings = terms[term]
        _write_uvarint(out, len(postings))
        previous_doc = 0
        for posting in postings:
            _write_uvarint(out, _zigzag(posting.doc_id - previous_doc))
            previous_doc = posting.doc_id
            _write_uvarint(out, len(posting.positions))
            previous_position = 0
            for position in posting.positions:
                _write_uvarint(out,
                               _zigzag(position - previous_position))
                previous_position = position
    return out.getvalue()


def _decode_field_block(data: bytes) -> Dict[str, PostingsList]:
    terms: Dict[str, PostingsList] = {}
    term_count, pos = _read_uvarint(data, 0)
    for _ in range(term_count):
        length, pos = _read_uvarint(data, pos)
        term = data[pos:pos + length].decode("utf-8")
        pos += length
        doc_freq, pos = _read_uvarint(data, pos)
        postings = PostingsList()
        doc_id = 0
        for _ in range(doc_freq):
            delta, pos = _read_uvarint(data, pos)
            doc_id += _unzigzag(delta)
            frequency, pos = _read_uvarint(data, pos)
            position = 0
            positions = []
            for _ in range(frequency):
                position_delta, pos = _read_uvarint(data, pos)
                position += _unzigzag(position_delta)
                positions.append(position)
            postings._append(Posting(doc_id, positions))
        terms[term] = postings
    return terms


# ----------------------------------------------------------------------
# whole-index IO
# ----------------------------------------------------------------------

def write_index(index: InvertedIndex, path: PathLike) -> Path:
    """Serialize ``index`` to ``path`` in the binary format."""
    index._ensure_all_fields()
    blocks = []
    field_table = []
    offset = 0
    for field_name in sorted(index._terms):
        block = _encode_field_block(index._terms[field_name])
        field_table.append({"name": field_name, "offset": offset,
                            "length": len(block)})
        blocks.append(block)
        offset += len(block)
    header = {
        "name": index.name,
        "lengths": {field_name: {str(doc): count
                                 for doc, count in lengths.items()}
                    for field_name, lengths in index._lengths.items()},
        "boosts": {field_name: {str(doc): boost
                                for doc, boost in boosts.items()}
                   for field_name, boosts in index._boosts.items()},
        "stored": index._stored,
        "fields": field_table,
    }
    raw_header = json.dumps(header, ensure_ascii=False).encode("utf-8")
    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<B", VERSION))
        handle.write(struct.pack("<I", len(raw_header)))
        handle.write(raw_header)
        for block in blocks:
            handle.write(block)
    return path


def read_index(path: PathLike, lazy: bool = True) -> InvertedIndex:
    """Deserialize an index written by :func:`write_index`.

    With ``lazy`` (the default) only the header is decoded now; each
    field's postings block is decoded on the field's first read via
    :meth:`InvertedIndex._attach_lazy_field`.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        data = handle.read()
    if data[:4] != MAGIC:
        raise IndexError_(f"{path} is not a binary index "
                          f"(bad magic {data[:4]!r})")
    version = data[4]
    if version != VERSION:
        raise IndexError_(f"unsupported binary index version {version} "
                          f"in {path} (supported: {VERSION})")
    (header_length,) = struct.unpack_from("<I", data, 5)
    header_start = 9
    blocks_start = header_start + header_length
    header = json.loads(
        data[header_start:blocks_start].decode("utf-8"))

    index = InvertedIndex(name=header.get("name", "index"))
    index._lengths = {
        field_name: {int(doc): count for doc, count in lengths.items()}
        for field_name, lengths in header.get("lengths", {}).items()}
    index._boosts = {
        field_name: {int(doc): boost for doc, boost in boosts.items()}
        for field_name, boosts in header.get("boosts", {}).items()}
    index._stored = [
        {name: list(values) for name, values in doc.items()}
        for doc in header.get("stored", [])]
    index._field_names = {
        name for doc in index._stored for name in doc}
    for field_name, boosts in index._boosts.items():
        for boost in boosts.values():
            index._note_boost(field_name, boost)

    def make_loader(start: int, end: int):
        def loader() -> Dict[str, PostingsList]:
            return _decode_field_block(data[start:end])
        return loader

    for entry in header.get("fields", []):
        start = blocks_start + entry["offset"]
        end = start + entry["length"]
        if lazy:
            index._attach_lazy_field(entry["name"], make_loader(start, end))
        else:
            index._terms[entry["name"]] = _decode_field_block(
                data[start:end])
            index._field_names.add(entry["name"])
    return index
